//! Workspace facade for the PowerPruning reproduction.
//!
//! Re-exports the four crates so examples and integration tests can use
//! one import root:
//!
//! * [`gatesim`] — gate-level netlists, timed simulation, STA.
//! * [`nn`] — quantization-aware NN training with restricted value sets.
//! * [`systolic`] — weight-stationary systolic array simulator.
//! * [`powerpruning`] — the paper's characterization/selection/retrain/
//!   voltage-scaling flow.
//! * [`charstore`] — the persistent content-addressed characterization
//!   artifact store behind the pipeline's warm starts.
//! * [`charserve`] — the long-running characterization service over
//!   that store (HTTP daemon, worker pool, single-flight dedup).
//! * [`obs`] — unified observability: the process-global metrics
//!   registry, span tracing and the leveled logger.
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory.

pub use charserve;
pub use charstore;
pub use gatesim;
pub use nn;
pub use obs;
pub use powerpruning;
pub use systolic;
