//! Hardware-only characterization walk-through (no training).
//!
//! Reproduces the *mechanics* behind the paper's Figs. 2, 3 and 5 on a
//! synthetic transition workload: per-weight power, per-weight delay
//! profiles with the DTA×STA composition, and a structural Verilog dump
//! of the characterized MAC for external cross-checking.
//!
//! Run with: `cargo run --example characterize_mac --release`

use gatesim::export::to_verilog;
use powerpruning::chars::{
    characterize_power, characterize_timing, MacHardware, PowerConfig, PsumBinning, TimingConfig,
};
use systolic::stats::TransitionStats;

fn main() {
    let hw = MacHardware::paper_default();
    println!("Characterizing: {}", hw.mac().netlist());

    // A synthetic but realistic workload: activations mostly make small
    // moves (the bright diagonal of the paper's Fig. 4a), partial sums
    // wander across the 22-bit range.
    let mut stats = TransitionStats::new();
    for a in 0..255u8 {
        stats.record_activation(a, a.saturating_add(1), 30);
        stats.record_activation(a.saturating_add(1), a, 30);
        stats.record_activation(a, a ^ 0x0f, 2);
    }
    let psums: Vec<(i32, i32)> = (0..5000)
        .map(|i| {
            let x = (i as i64 * 2654435761) % (1 << 22) - (1 << 21);
            let y = (i as i64 * 40503 + 977) % (1 << 22) - (1 << 21);
            (x as i32, y as i32)
        })
        .collect();
    let binning = PsumBinning::from_samples(&psums, 50, 22, 7);

    // --- Fig. 2 mechanics: power per weight value. ---
    let profile = characterize_power(
        &hw,
        &stats,
        &binning,
        &PowerConfig {
            samples_per_weight: 600,
            ..PowerConfig::default()
        },
    );
    let series = profile.series();
    let mut sorted = series.clone();
    sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!("\nCheapest weight values (µW):");
    for (code, p) in sorted.iter().take(8) {
        println!("  {code:>5}: {p:>7.1}");
    }
    println!("Most expensive weight values (µW):");
    for (code, p) in sorted.iter().rev().take(8) {
        println!("  {code:>5}: {p:>7.1}");
    }

    // --- Fig. 3 mechanics: delay profiles of two weights. ---
    let timing = characterize_timing(
        &hw,
        &TimingConfig {
            exhaustive: false,
            samples: 4000,
            ..TimingConfig::default()
        },
    );
    for code in [-105i32, 64] {
        let t = timing.timing(code);
        println!(
            "\nWeight {code}: max composed MAC delay {:.0} ps (adder psum floor {:.0} ps)",
            t.max_delay_ps, timing.psum_floor_ps
        );
        // Compact histogram: 20 buckets over the observed range.
        let max_bucket = t.histogram.iter().rposition(|&c| c > 0).unwrap_or(0).max(1);
        let width = max_bucket.div_ceil(20);
        print!("  delay histogram: ");
        for chunk in t.histogram[..=max_bucket].chunks(width) {
            let total: u64 = chunk.iter().sum();
            let glyph = match total {
                0 => '.',
                1..=99 => '_',
                100..=999 => 'o',
                _ => '#',
            };
            print!("{glyph}");
        }
        println!("  (0..{max_bucket} ps)");
    }

    // --- Structural export for external EDA cross-checks. ---
    let verilog = to_verilog(hw.mult_netlist());
    println!(
        "\nStructural Verilog of the multiplier: {} lines (module {})",
        verilog.lines().count(),
        hw.mult_netlist().name()
    );
}
