//! Interactive-style exploration of the power-threshold tradeoff.
//!
//! The paper's Fig. 8 asks: how few weight values can a network live
//! with before accuracy collapses? This example trains one network and
//! walks the threshold ladder, printing the accuracy/power frontier so
//! a deployment engineer can pick an operating point.
//!
//! Run with: `cargo run --example threshold_explorer --release`

use powerpruning::pipeline::{NetworkKind, Pipeline, PipelineConfig, Scale};

fn main() {
    let pipeline = Pipeline::new(PipelineConfig::for_scale(Scale::Micro));
    let series = pipeline.power_threshold_sweep(NetworkKind::ResNet20);

    println!("{series}");

    // Frontier summary: best power at <2% accuracy loss.
    let baseline_acc = series.points.first().map(|p| p.4).unwrap_or(0.0);
    let ok: Vec<_> = series
        .points
        .iter()
        .filter(|p| p.4 >= baseline_acc - 0.02)
        .collect();
    if let Some(best) = ok
        .iter()
        .min_by(|a, b| (a.2 + a.3).partial_cmp(&(b.2 + b.3)).expect("finite"))
    {
        println!(
            "Recommended operating point: {} weight values, {:.2} mW total, {:.1}% accuracy",
            best.1,
            best.2 + best.3,
            100.0 * best.4
        );
    }
}
