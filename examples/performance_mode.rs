//! Performance mode: spend the timing slack on clock frequency instead
//! of supply voltage.
//!
//! The paper (§II, §V) notes the selected weight/activation sets leave
//! two options: lower VDD at the same clock (Table I), or keep VDD and
//! raise the clock. This example runs the characterization + selection
//! front-end once and prints both conversions side by side.
//!
//! Run with: `cargo run --example performance_mode --release`
//! (set `POWERPRUNING_SCALE=micro` for a quick smoke run)

use powerpruning::pipeline::{NetworkKind, Pipeline, PipelineConfig, Scale};
use powerpruning::select::delay::{select_by_delay, DelaySelectionConfig};
use powerpruning::select::power::{select_by_power, threshold_for_count};
use powerpruning::voltage::{FrequencyBoost, VoltageModel, VoltageScaling};

fn main() {
    let scale = match std::env::var("POWERPRUNING_SCALE").as_deref() {
        Ok("micro") => Scale::Micro,
        Ok("full") => Scale::Full,
        _ => Scale::Mini,
    };
    let pipeline = Pipeline::new(PipelineConfig::for_scale(scale));

    // Characterize power on a trained workload, select a weight set.
    let mut prepared = pipeline.prepare(NetworkKind::LeNet5);
    let captures = pipeline.capture(&mut prepared);
    let chars = pipeline.characterize(&captures);
    let threshold = threshold_for_count(
        &chars.power_profile,
        48.min(chars.power_profile.codes().len()),
    );
    let power_sel = select_by_power(&chars.power_profile, threshold);

    // Timing: how much slack does a moderately aggressive selection buy?
    let probe = pipeline.characterize_timing(f64::MAX);
    let base_max = probe.max_delay_ps().max(probe.psum_floor_ps);
    let base_rounded = (base_max / 5.0).ceil() * 5.0;
    let target = (base_rounded - 15.0).max(probe.psum_floor_ps);
    let timing = pipeline.characterize_timing(target - 5.0);
    let sel = select_by_delay(
        &timing,
        &power_sel.weights,
        256,
        &DelaySelectionConfig {
            threshold_ps: target,
            ..DelaySelectionConfig::default()
        },
    );

    println!(
        "Max MAC delay: {base_max:.0} ps -> {target:.0} ps with {} weight and {} activation values\n",
        sel.weight_count(),
        sel.activation_count()
    );

    // Option A: voltage scaling at the original clock.
    let vm = VoltageModel::finfet15();
    let vs = VoltageScaling::from_delays(&vm, base_rounded, target);
    println!("Option A — lower VDD, same clock:");
    println!(
        "  VDD {} (dynamic x{:.2}, leakage x{:.2})",
        vs.label(),
        vs.dynamic_factor,
        vs.leakage_factor
    );

    // Option B: same VDD, faster clock.
    let clock = pipeline.array().config().clock_ps;
    let boost = FrequencyBoost::from_delays(clock, base_rounded, target);
    println!("Option B — same VDD, faster clock:");
    println!(
        "  {:.2} GHz -> {:.2} GHz ({:.1}% more throughput)",
        1000.0 / boost.original_clock_ps,
        boost.boosted_freq_ghz(),
        100.0 * (boost.speedup() - 1.0)
    );
}
