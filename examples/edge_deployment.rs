//! Edge-deployment scenario: the full PowerPruning flow on one network.
//!
//! Models the paper's motivating use case (power-constrained edge
//! inference, e.g. plant-disease detection or wearable diagnostics):
//! train a small CNN, characterize the accelerator, select cheap weight
//! and fast weight/activation values, retrain, and report the power
//! budget before and after — the LeNet-5 row of Table I.
//!
//! Run with: `cargo run --example edge_deployment --release`
//! (set `POWERPRUNING_SCALE=micro` for a quick smoke run)

use powerpruning::pipeline::{NetworkKind, Pipeline, PipelineConfig, Scale};
use powerpruning::report::table1_header;

fn main() {
    let scale = match std::env::var("POWERPRUNING_SCALE").as_deref() {
        Ok("micro") => Scale::Micro,
        Ok("full") => Scale::Full,
        _ => Scale::Mini,
    };
    println!("Running the full PowerPruning flow at {scale:?} scale...\n");

    let pipeline = Pipeline::new(PipelineConfig::for_scale(scale));
    let row = pipeline.run_table1_row(NetworkKind::LeNet5);

    println!("{}", table1_header());
    println!("{row}");
    println!();
    println!(
        "Edge budget: {:.1} mW -> {:.1} mW on the Optimized accelerator ({:.1}% saved),",
        row.opt_orig_mw,
        row.opt_prop_mw,
        row.opt_reduction_pct()
    );
    println!(
        "with accuracy {:.1}% -> {:.1}% and VDD scaled to {}.",
        100.0 * row.acc_orig,
        100.0 * row.acc_prop,
        row.vdd_label
    );
}
