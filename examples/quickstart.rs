//! Quickstart: the PowerPruning idea in one minute.
//!
//! Builds the paper's 8-bit MAC unit, shows that different weight
//! values really do cost different amounts of energy and sensitize
//! paths of different lengths, then restricts a small network to cheap
//! weight values and retrains it.
//!
//! Run with: `cargo run --example quickstart --release`

use gatesim::circuits::MacCircuit;
use gatesim::{CellLibrary, Simulator, Sta};
use nn::data::SyntheticSpec;
use nn::models;
use nn::quant::ValueSet;
use nn::train::{evaluate, train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- 1. A MAC unit is just gates; weights steer its switching. ---
    let lib = CellLibrary::nangate15_like();
    let mac = MacCircuit::new(8, 8, 22);
    println!("MAC unit: {}", mac.netlist());
    println!(
        "Critical path (STA): {:.1} ps",
        Sta::new(mac.netlist(), &lib).critical_path_ps()
    );

    let mut sim = Simulator::new(mac.netlist(), &lib);
    for weight in [0i64, 2, 64, -105] {
        let mut energy = 0.0;
        let acts = [10u64, 200, 37, 255, 0, 129, 64, 90];
        let psums = [0i64, 4000, -250, 90_000, -60_000, 37, 1000, -1];
        sim.settle(&mac.encode(weight, acts[0], psums[0]));
        for i in 1..acts.len() {
            energy += sim
                .transition(&mac.encode(weight, acts[i], psums[i]))
                .energy_fj;
        }
        println!("  weight {weight:>5}: {energy:>7.1} fJ over 7 transitions");
    }

    // --- 2. Restrict a network to cheap weight values and retrain. ---
    let train_data = SyntheticSpec::cifar10_like(8, 300, 1).generate();
    let test_data = SyntheticSpec::cifar10_like(8, 100, 2).generate();
    let mut rng = StdRng::seed_from_u64(0);
    let mut net = models::tiny_cnn("quickstart", 3, 8, 10, &mut rng);
    net.quantize = true;

    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let _ = train(&mut net, &train_data, &cfg, &mut rng);
    let acc_free = evaluate(&mut net, &test_data, 64);

    // Powers of two (shift-like multiplications) are the classic cheap
    // weights; PowerPruning derives the real set from characterization.
    let cheap: Vec<i32> = vec![
        -96, -80, -72, -64, -48, -40, -36, -32, -24, -20, -18, -16, -12, -10, -9, -8, -6, -5, -4,
        -3, -2, -1, 0, 1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 16, 18, 20, 24, 32, 36, 40, 48, 64, 72, 80,
        96,
    ];
    net.set_weight_restriction(Some(ValueSet::new(cheap.iter().copied())));
    let retrain_cfg = TrainConfig {
        epochs: 4,
        lr: 0.02,
        ..TrainConfig::default()
    };
    let _ = train(&mut net, &train_data, &retrain_cfg, &mut rng);
    let acc_restricted = evaluate(&mut net, &test_data, 64);

    println!(
        "\nAccuracy with all 255 weight values:  {:.1}%",
        100.0 * acc_free
    );
    println!(
        "Accuracy with {} cheap weight values: {:.1}%",
        cheap.len(),
        100.0 * acc_restricted
    );
    println!(
        "(PowerPruning selects the cheap set from gate-level power data instead of guessing.)"
    );
}
