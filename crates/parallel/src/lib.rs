//! Deterministic scoped-thread work splitting.
//!
//! Several hot loops in this workspace (per-weight power and timing
//! characterization in `powerpruning`, the GEMM kernels in `nn`) used to
//! copy-paste the same `available_parallelism` + `chunks_mut` +
//! `thread::scope` pattern. This crate centralizes it with one
//! guarantee: **results are a function of the row index only**, never of
//! the chunk geometry, so any thread count produces identical output.
//!
//! The unit of work is a *row*: `row_len` consecutive elements of the
//! mutable slice. The worker closure receives the *global* row index and
//! the row slice; per-thread scratch state (a simulator, reusable
//! buffers) is created once per worker thread by `init` and reused
//! across that thread's rows.
//!
//! # Examples
//!
//! ```
//! let mut squares = vec![0u64; 10];
//! parallel::par_rows_mut(&mut squares, 1, || (), |(), i, row| {
//!     row[0] = (i * i) as u64;
//! });
//! assert_eq!(squares[7], 49);
//! ```

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The number of worker threads used by default: the machine's available
/// parallelism (1 if it cannot be determined).
#[must_use]
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `data` into rows of `row_len` elements and processes every row
/// with `work`, using up to [`max_threads`] scoped threads.
///
/// `init` creates per-thread scratch state; `work(state, row_index,
/// row)` receives the global row index, so its output must not depend on
/// which thread executes it.
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `data.len()`.
pub fn par_rows_mut<T, S, I, W>(data: &mut [T], row_len: usize, init: I, work: W)
where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize, &mut [T]) + Sync,
{
    par_rows_mut_with_threads(max_threads(), data, row_len, init, work);
}

/// [`par_rows_mut`] with an explicit thread count — the seam the
/// determinism tests use to prove results are chunk-geometry-free.
///
/// # Panics
///
/// Panics if `row_len` is zero or does not divide `data.len()`.
pub fn par_rows_mut_with_threads<T, S, I, W>(
    threads: usize,
    data: &mut [T],
    row_len: usize,
    init: I,
    work: W,
) where
    T: Send,
    I: Fn() -> S + Sync,
    W: Fn(&mut S, usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "data length {} is not a multiple of row_len {row_len}",
        data.len()
    );
    static JOBS: std::sync::LazyLock<obs::metrics::Counter> =
        std::sync::LazyLock::new(|| obs::metrics::counter("parallel_jobs_total"));
    JOBS.inc();
    let rows = data.len() / row_len;
    let threads = threads.max(1).min(rows.max(1));
    if threads <= 1 {
        let mut state = init();
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            work(&mut state, i, row);
        }
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in data.chunks_mut(rows_per * row_len).enumerate() {
            let init = &init;
            let work = &work;
            scope.spawn(move || {
                let mut state = init();
                for (off, row) in chunk.chunks_mut(row_len).enumerate() {
                    work(&mut state, chunk_idx * rows_per + off, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_visited_once() {
        let mut hits = vec![u32::MAX; 97];
        par_rows_mut(
            &mut hits,
            1,
            || (),
            |(), i, row| {
                row[0] = i as u32;
            },
        );
        for (i, &h) in hits.iter().enumerate() {
            assert_eq!(h, i as u32);
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let run = |threads: usize| {
            let mut out = vec![0u64; 41];
            par_rows_mut_with_threads(
                threads,
                &mut out,
                1,
                || 0u64,
                |state, i, row| {
                    // State depends on visit order within a thread; the
                    // row result must only use the row index.
                    *state += 1;
                    row[0] = (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(7);
                },
            );
            out
        };
        let one = run(1);
        for threads in [2, 3, 5, 8, 64] {
            assert_eq!(run(threads), one, "thread count {threads} changed results");
        }
    }

    #[test]
    fn multi_element_rows_stay_contiguous() {
        let mut data = vec![0usize; 6 * 4];
        par_rows_mut(
            &mut data,
            4,
            || (),
            |(), i, row| {
                assert_eq!(row.len(), 4);
                row.fill(i);
            },
        );
        for (i, chunk) in data.chunks(4).enumerate() {
            assert!(chunk.iter().all(|&v| v == i));
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut data: Vec<u8> = Vec::new();
        par_rows_mut(&mut data, 3, || (), |(), _, _| panic!("no rows expected"));
    }

    #[test]
    #[should_panic(expected = "multiple of row_len")]
    fn rejects_ragged_rows() {
        let mut data = vec![0u8; 7];
        par_rows_mut(&mut data, 3, || (), |(), _, _| {});
    }
}
