//! A mio/`polling`-style readiness shim over raw Linux epoll.
//!
//! The workspace builds offline, so this is the in-tree stand-in for an
//! async I/O dependency: just enough of a readiness API for a
//! single-threaded reactor — a [`Poller`] wrapping one `epoll` instance,
//! level-triggered [`Event`]s keyed by caller-chosen tokens, and a
//! [`Waker`] (an `eventfd`) so other threads can interrupt a blocked
//! [`Poller::wait`]. The syscalls come in through plain `extern "C"`
//! declarations against the libc that `std` already links; no new
//! dependency, no FFI crate.
//!
//! Level-triggered was chosen deliberately: the reactor re-arms
//! interest explicitly per connection state, and level semantics make
//! "bytes remained buffered after a short read" impossible to lose —
//! the fd simply reports readable again on the next wait.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// The subset of libc this shim needs. `std` links libc on every Linux
// target, so these resolve without any build-system work.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// `struct epoll_event`. x86_64 declares it packed (the kernel ABI);
/// other architectures use natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct epoll_event` with natural alignment (non-x86_64).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// The readiness interest to register a file descriptor with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = EPOLLRDHUP;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or the peer closed its write half).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// Error or hangup condition — the owner should read (draining any
    /// final bytes) and then close.
    pub closed: bool,
}

/// A level-triggered epoll instance.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_create1` error.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), std::ptr::from_mut);
        // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (e.g. `EEXIST` for a double add).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Changes the interest (and token) of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error (e.g. `ENOENT` if never added).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Removes `fd` from the instance. Removal is also implicit when
    /// the fd is closed, so the reactor calls this best-effort.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` error.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a [`Waker`] fires. Ready events are appended to
    /// `events` (cleared first). `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_wait` error. `EINTR` is retried internally.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100 µs timeout is a 1 ms sleep, not a spin.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; 64];
        let n = loop {
            // SAFETY: `raw` outlives the call and maxevents matches it.
            let ret =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            events.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Poller and closed once.
        unsafe {
            close(self.epfd);
        }
    }
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread.
///
/// Internally an `eventfd` registered on the poller under a
/// caller-chosen token: [`Waker::wake`] writes a count, the poller
/// reports the token readable, and the reactor calls [`Waker::drain`]
/// to reset it.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

// The fd is just an integer handle; eventfd reads/writes are atomic.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates the eventfd and registers it on `poller` under `token`.
    ///
    /// # Errors
    ///
    /// Returns the `eventfd` or `epoll_ctl` error.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // SAFETY: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        if let Err(e) = poller.add(fd, token, Interest::READABLE) {
            // SAFETY: fd was just created and is not otherwise owned.
            unsafe {
                close(fd);
            }
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Signals the poller. Nonblocking and safe from any thread; an
    /// already-pending wake coalesces (eventfd adds the counters).
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value; EAGAIN (the
        // counter is saturated — a wake is already pending) is fine.
        unsafe {
            write(self.fd, std::ptr::addr_of!(one).cast(), 8);
        }
    }

    /// Resets the pending-wake counter. The reactor calls this when the
    /// waker's token shows up readable.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer.
        unsafe {
            read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Waker and closed once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// TCP readiness end to end: a listener reports readable when a
    /// connection is pending, the accepted stream reports readable when
    /// bytes arrive, and a writable registration fires immediately on a
    /// fresh socket.
    #[test]
    fn tcp_readiness_round_trip() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .add(listener.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero-ish timeout returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 1));

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "listener not readable after connect: {events:?}"
        );

        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        poller.add(stream.as_raw_fd(), 2, Interest::BOTH).unwrap();
        // A fresh socket is writable immediately.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.writable));

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        // Narrow interest to readable and wait for the payload.
        poller
            .modify(stream.as_raw_fd(), 2, Interest::READABLE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 2 && e.readable));
        let mut buf = [0u8; 4];
        let mut stream = stream;
        stream.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Peer close surfaces as readable + closed (EPOLLRDHUP).
        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 2)
            .expect("no event after peer close");
        assert!(ev.readable && ev.closed, "peer close not reported: {ev:?}");

        poller.delete(stream.as_raw_fd()).unwrap();
    }

    /// A waker interrupts a poller blocked with no ready fds, wakes are
    /// coalesced, and `drain` resets the readiness.
    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 99).unwrap());

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
            w.wake(); // coalesces with the first
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        // Drained: the next wait times out quietly.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 99));
        t.join().unwrap();
    }

    /// Double registration errors instead of silently rebinding.
    #[test]
    fn double_add_is_an_error() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller
            .add(listener.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        assert!(poller
            .add(listener.as_raw_fd(), 2, Interest::READABLE)
            .is_err());
    }
}
