//! Offline stand-in for the parts of the `rand` crate this workspace
//! uses.
//!
//! The build environment has no network access, so the real `rand`
//! cannot be vendored. This crate reimplements the small API surface the
//! workspace depends on — [`rngs::StdRng`], [`SeedableRng`], the [`Rng`]
//! extension trait and [`seq::SliceRandom`] — on top of the xoshiro256++
//! generator with SplitMix64 seeding. The streams are high quality and
//! deterministic, but they are **not** the streams of the real
//! `rand::rngs::StdRng`; every consumer in this workspace only relies on
//! determinism and statistical quality, never on specific draws.

#![warn(missing_docs)]

/// Core pseudo-random number source: an infinite stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state with SplitMix64 (the construction recommended by
    /// the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion.
            let mut x = seed ^ 0xbu64;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Snapshot of the full internal xoshiro256++ state.
        ///
        /// Together with [`StdRng::from_state`] this lets callers
        /// persist a generator's exact stream position (e.g. in a
        /// cache artifact) and later resume it bit-identically.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`], resuming the stream at exactly that
        /// position.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from their full value range (or,
/// for floats, from `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded draw via 128-bit widening multiply.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods on any [`RngCore`] — mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers — mirrors `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher-Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(0..10);
            assert!(v < 10);
            let w: i64 = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            let _: u64 = a.random();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
