//! Minimal offline stand-in for the Criterion benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be vendored. This crate implements just enough of its API for
//! the workspace's `benches/` to compile and produce useful wall-clock
//! numbers: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are medians over `sample_size` timed runs after one
//! warm-up run — far simpler than real Criterion, but deterministic in
//! shape and good enough to compare kernels on one machine.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Identifier of one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.id, &mut |b| f(b, input));
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { elapsed_ns: 0 };
        // Warm-up run.
        f(&mut bencher);
        let mut samples: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed_ns = 0;
            f(&mut bencher);
            samples.push(bencher.elapsed_ns);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!("{}/{id}: median {} per run", self.name, format_ns(median));
    }
}

/// Times closures for one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one execution of `f` (real Criterion runs many iterations
    /// per sample; one is enough for the coarse workloads benched here).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        let out = f();
        self.elapsed_ns += start.elapsed().as_nanos();
        drop(out);
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a benchmark binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut runs = 0;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| 1 + 1);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 4); // warm-up + 3 samples
    }
}
