//! Minimal offline stand-in for the `proptest` property-testing API.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be vendored. This crate implements the subset the workspace's
//! property tests use: the [`proptest!`] macro over `arg in strategy`
//! bindings, integer/float range strategies, `prop::collection::vec` /
//! `prop::collection::btree_set`, [`ProptestConfig::with_cases`] and the
//! `prop_assert*` macros. There is no shrinking — a failing case panics
//! with the sampled inputs in the message instead.

#![warn(missing_docs)]

use std::fmt::Debug;

/// Deterministic generator driving the samplers (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// A generator seeded for one property function.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { x: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64 + 1;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Collection strategies — mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from `size`.
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Sets of roughly `size` distinct elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng).max(1);
            let mut set = BTreeSet::new();
            // Element domains can be smaller than the target size, so
            // bound the attempts instead of insisting on the size.
            for _ in 0..target * 4 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            assert!(!set.is_empty(), "btree_set strategy produced no elements");
            set
        }
    }
}

/// Execution configuration — mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) makes the gate-level properties slow;
        // 48 cases keep the suite brisk while still sweeping the space.
        ProptestConfig { cases: 48 }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    // FNV-1a over the property name: stable across runs, distinct
    // per property.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::__seed_for(stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg.clone();)*
                        $body
                    }));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs:",
                            stringify!($name),
                        );
                        $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)*
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 0i64..10, y in -5i32..=5) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn collections_hold(
            v in prop::collection::vec(0u8..=255, 1..8),
            s in prop::collection::btree_set(-3i32..=3, 1..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() < 5);
        }
    }

    #[test]
    fn config_cases_respected() {
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
