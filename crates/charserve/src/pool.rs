//! The bounded worker pool characterization misses are scheduled onto.
//!
//! A fixed number of named worker threads drain a shared job queue;
//! the pool size bounds how many expensive characterizations run
//! concurrently (requests beyond it queue), while single-flight
//! deduplication upstream bounds how many are *submitted* per key.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker-thread pool.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
}

impl WorkerPool {
    /// Spawns `size` workers (clamped to at least 1).
    #[must_use]
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("charserve-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            size,
        }
    }

    /// The number of worker threads.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// Fails if the pool has been shut down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), String> {
        let tx = self.tx.lock().expect("pool sender poisoned");
        match tx.as_ref() {
            Some(tx) => tx
                .send(Box::new(job))
                .map_err(|_| "worker pool is gone".to_string()),
            None => Err("worker pool is shut down".to_string()),
        }
    }

    /// Stops accepting jobs, drains the queue and joins every worker.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        drop(self.tx.lock().expect("pool sender poisoned").take());
        let workers: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("pool workers poisoned")
            .drain(..)
            .collect();
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only while popping, never while running.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // all senders gone: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_across_bounded_workers() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 20);
        assert!(pool.submit(|| ()).is_err(), "accepted a job after shutdown");
    }

    #[test]
    fn zero_requested_workers_still_runs() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
