//! The charserve daemon: a typed router over the nonblocking reactor,
//! plus the hit / single-flight / worker-pool serving policy.
//!
//! Transport and policy are split across three layers:
//!
//! * [`crate::reactor`] owns every socket — epoll readiness, keep-alive
//!   and pipelining, header/idle deadlines, and the connection-count
//!   admission gate (`429` + `Retry-After` beyond
//!   [`ServeConfig::max_connections`]).
//! * [`crate::router`] maps `(method, path)` to typed handlers
//!   `fn(&Arc<Ctx>, &Request, &Deferred) -> Reply` — handlers compute
//!   values, never touch sockets, and unit-test as bare function calls.
//! * This module is the policy: the serving order for
//!   `POST /characterize`, the second admission gate
//!   ([`ServeConfig::max_pending`] bounds *pending computations*, not
//!   connections), and the `/stats`–`/metrics` accounting.
//!
//! Serving policy for `POST /characterize`, in order:
//!
//! 1. **Store hit** — a [`powerpruning::cache::RequestManifest`] stored
//!    under the request key answers immediately, without touching a
//!    pipeline (zero training epochs, zero simulated transitions).
//! 2. **Backpressure** — a request that would *lead* a new computation
//!    while [`ServeConfig::max_pending`] flights are already open gets
//!    `429` + `Retry-After`. Joining an open flight is always free — a
//!    duplicate costs nothing and is never throttled.
//! 3. **Single-flight** — the request joins the flight for its key: the
//!    first requester (leader) schedules the computation onto the
//!    bounded worker pool; every concurrent duplicate registers a
//!    completion callback on the same flight and shares the one result.
//!    The handler returns [`Reply::Later`]; the reactor parks the
//!    connection (no thread waits) until the flight's callback delivers
//!    the rendered response through the connection's [`Deferred`].
//! 4. **Compute** — the worker builds a pipeline over the **shared**
//!    cache ([`powerpruning::Pipeline::with_shared_cache`]) and serves
//!    the request through the exact lookup → compute → store path the
//!    standalone pipeline uses, so per-stage artifacts warmed by other
//!    tools (e.g. `charstore warm`) are honored and newly computed ones
//!    are visible to them.

use crate::http::{self, Request};
use crate::json::{self, JsonValue};
use crate::pool::WorkerPool;
use crate::reactor::{Reactor, ReactorConfig, Service, RETRY_AFTER_SECS};
use crate::router::{error_body, Deferred, Reply, Router};
use crate::singleflight::{FlightBoard, Joined};
use charstore::Digest128;
use httpwire::Response;
use powerpruning::cache::CharacterizationRun;
use powerpruning::{CharCache, NetworkKind, Pipeline, PipelineConfig, Scale};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock};
use std::time::Duration;

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7878`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads for characterization misses.
    pub workers: usize,
    /// Root of the shared artifact store.
    pub store_dir: PathBuf,
    /// Live-connection cap; arrivals beyond it answer `429` and close.
    pub max_connections: usize,
    /// Pending-computation cap: a `POST /characterize` that would lead
    /// a **new** flight while this many are open answers `429` +
    /// `Retry-After`. Joining an open flight is never throttled.
    pub max_pending: usize,
    /// Deadline for a partially-received request to finish arriving
    /// (the slowloris bound; expiry answers `408`).
    pub header_timeout: Duration,
    /// How long an idle keep-alive connection may sit between requests
    /// before the daemon closes it.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            store_dir: PathBuf::from(powerpruning::cache::DEFAULT_CACHE_DIR),
            max_connections: 256,
            max_pending: 32,
            header_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Request-level counters exposed by `GET /stats`.
#[derive(Debug, Default)]
struct Stats {
    /// `POST /characterize` requests accepted.
    requests: AtomicU64,
    /// Requests answered straight from a stored manifest.
    hits: AtomicU64,
    /// Requests that led a computation (one per unique missing key).
    misses: AtomicU64,
    /// Requests that waited on another request's computation.
    deduped: AtomicU64,
    /// `GET /object/…` requests answered with container bytes — the
    /// remote tier's hits, as seen from the serving side.
    object_hits: AtomicU64,
    /// `GET /object/…` requests answered `404`.
    object_misses: AtomicU64,
    /// `PUT /object/…` ingests accepted (validated and stored).
    object_publishes: AtomicU64,
    /// Connections turned away at the door (`429`, over
    /// [`ServeConfig::max_connections`]).
    rejected: AtomicU64,
    /// Characterize requests refused for pending-work backpressure
    /// (`429`, over [`ServeConfig::max_pending`]).
    throttled: AtomicU64,
}

/// Registry mirrors of the per-instance [`Stats`] counters, plus the
/// request latency histogram behind `charserve_request_seconds` on
/// `GET /metrics`. [`Stats`] stays authoritative for `/stats` — it is
/// per-daemon (tests run several daemons in one process and assert
/// exact values) — while the registry aggregates process-wide for the
/// Prometheus endpoint.
struct ServeMetrics {
    requests: obs::metrics::Counter,
    request_hits: obs::metrics::Counter,
    request_misses: obs::metrics::Counter,
    request_deduped: obs::metrics::Counter,
    object_hits: obs::metrics::Counter,
    object_misses: obs::metrics::Counter,
    object_publishes: obs::metrics::Counter,
    rejected: obs::metrics::Counter,
    throttled: obs::metrics::Counter,
    /// Wall time per handled request, parse to response, any route.
    request_seconds: obs::metrics::Histogram,
}

static METRICS: LazyLock<ServeMetrics> = LazyLock::new(|| ServeMetrics {
    requests: obs::metrics::counter("charserve_requests_total"),
    request_hits: obs::metrics::counter("charserve_request_hits_total"),
    request_misses: obs::metrics::counter("charserve_request_misses_total"),
    request_deduped: obs::metrics::counter("charserve_request_deduped_total"),
    object_hits: obs::metrics::counter("charserve_object_hits_total"),
    object_misses: obs::metrics::counter("charserve_object_misses_total"),
    object_publishes: obs::metrics::counter("charserve_object_publishes_total"),
    rejected: obs::metrics::counter("charserve_rejected_total"),
    throttled: obs::metrics::counter("charserve_throttled_total"),
    request_seconds: obs::metrics::histogram(
        "charserve_request_seconds",
        obs::metrics::LATENCY_SECONDS,
    ),
});

/// The daemon's shared context — everything a route handler can reach.
struct Ctx {
    cache: Arc<CharCache>,
    flights: FlightBoard<CharacterizationRun>,
    pool: WorkerPool,
    stats: Stats,
    shutdown: AtomicBool,
    addr: SocketAddr,
    store_dir: String,
    max_pending: usize,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("addr", &self.addr)
            .field("store_dir", &self.store_dir)
            .finish_non_exhaustive()
    }
}

/// The daemon. [`Server::bind`] opens the listener (so the chosen port
/// is known immediately); [`Server::serve`] blocks until a
/// `POST /shutdown` arrives.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    ctx: Arc<Ctx>,
    reactor: ReactorConfig,
}

impl Server {
    /// Opens the store and binds the listener.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the store or binding.
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        // Eager registration: an idle daemon's `GET /metrics` must
        // already expose the full counter set at zero, including the
        // simulator counters no request has touched yet. The store's
        // own metrics register when `CharCache::open` builds it.
        LazyLock::force(&METRICS);
        gatesim::register_metrics();
        let cache = Arc::new(CharCache::open(&cfg.store_dir)?);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        obs::info!(
            "charserve",
            "listening on {}, {} workers, store {}, {} connections / {} pending max",
            addr,
            cfg.workers,
            cfg.store_dir.display(),
            cfg.max_connections,
            cfg.max_pending
        );
        Ok(Server {
            listener,
            ctx: Arc::new(Ctx {
                cache,
                flights: FlightBoard::new(),
                pool: WorkerPool::new(cfg.workers),
                stats: Stats::default(),
                shutdown: AtomicBool::new(false),
                addr,
                store_dir: cfg.store_dir.display().to_string(),
                max_pending: cfg.max_pending,
            }),
            reactor: ReactorConfig {
                max_connections: cfg.max_connections,
                header_timeout: cfg.header_timeout,
                idle_timeout: cfg.idle_timeout,
            },
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Runs the reactor until shutdown. The drain order guarantees a
    /// waiter that spent minutes on a computation never gets its
    /// connection cut by process exit: the reactor keeps suspended
    /// connections alive until their flights deliver, and the worker
    /// pool (still running underneath it) is joined only after the
    /// reactor has returned.
    ///
    /// # Errors
    ///
    /// Returns any `epoll_wait` error from the event loop itself
    /// (per-connection errors are answered with 4xx/5xx or dropped and
    /// never stop the daemon).
    pub fn serve(self) -> io::Result<()> {
        let service = Arc::new(ServeService {
            ctx: Arc::clone(&self.ctx),
            router: build_router(),
        });
        Reactor::new(self.listener, service, self.reactor)?.run()?;
        obs::info!("charserve", "shutdown: draining worker pool");
        self.ctx.pool.shutdown();
        Ok(())
    }
}

/// The glue between the transport and the routes: the reactor calls
/// these per-request hooks, the router picks the handler.
struct ServeService {
    ctx: Arc<Ctx>,
    router: Router<Arc<Ctx>>,
}

impl Service for ServeService {
    fn body_limit(&self, head: &http::Head) -> usize {
        http::body_limit(head)
    }

    fn handle(&self, request: &Request, deferred: &Deferred) -> Reply {
        self.router.dispatch(&self.ctx, request, deferred)
    }

    fn shutdown_requested(&self) -> bool {
        self.ctx.shutdown.load(Ordering::Acquire)
    }

    fn on_rejected(&self) {
        self.ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
        METRICS.rejected.inc();
    }

    fn on_request_done(&self, elapsed: Duration) {
        METRICS.request_seconds.observe_duration(elapsed);
    }
}

fn build_router() -> Router<Arc<Ctx>> {
    Router::new()
        .route("GET", "/healthz", handle_healthz)
        .route("GET", "/stats", handle_stats)
        .route("GET", "/metrics", handle_metrics)
        .route("GET", "/trace", handle_trace)
        .route("POST", "/characterize", handle_characterize)
        .route("POST", "/shutdown", handle_shutdown)
        .route_prefix("GET", "/object/", handle_object_get)
        .route_prefix("PUT", "/object/", handle_object_put)
}

fn handle_healthz(ctx: &Arc<Ctx>, _request: &Request, _deferred: &Deferred) -> Reply {
    Reply::Now(Response::json(
        200,
        format!(
            "{{\"status\": \"ok\", \"store\": \"{}\", \"workers\": {}}}\n",
            json::escape(&ctx.store_dir),
            ctx.pool.size()
        ),
    ))
}

fn handle_stats(ctx: &Arc<Ctx>, _request: &Request, _deferred: &Deferred) -> Reply {
    Reply::Now(Response::json(200, render_stats(ctx)))
}

fn handle_metrics(_ctx: &Arc<Ctx>, _request: &Request, _deferred: &Deferred) -> Reply {
    Reply::Now(Response::bytes(
        200,
        "text/plain; version=0.0.4",
        obs::metrics::render_prometheus().into_bytes(),
    ))
}

fn handle_trace(_ctx: &Arc<Ctx>, _request: &Request, _deferred: &Deferred) -> Reply {
    Reply::Now(Response::bytes(
        200,
        "application/json",
        obs::trace::trace_json().into_bytes(),
    ))
}

fn handle_shutdown(ctx: &Arc<Ctx>, _request: &Request, _deferred: &Deferred) -> Reply {
    // The reactor polls the flag right after this response is queued —
    // no accept-loop poke needed, the event that delivered this request
    // already woke it.
    ctx.shutdown.store(true, Ordering::Release);
    Reply::Now(Response::json(200, "{\"status\": \"shutting down\"}\n"))
}

fn render_stats(ctx: &Ctx) -> String {
    let s = &ctx.stats;
    let store = ctx.cache.store().counters();
    format!(
        concat!(
            "{{\n",
            "  \"service\": \"charserve\",\n",
            "  \"requests\": {},\n",
            "  \"request_hits\": {},\n",
            "  \"request_misses\": {},\n",
            "  \"request_deduped\": {},\n",
            "  \"object_hits\": {},\n",
            "  \"object_misses\": {},\n",
            "  \"object_publishes\": {},\n",
            "  \"rejected\": {},\n",
            "  \"throttled\": {},\n",
            "  \"retrain_hits\": {},\n",
            "  \"retrain_misses\": {},\n",
            "  \"inflight\": {},\n",
            "  \"workers\": {},\n",
            "  \"store\": {{\"mem_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"puts\": {}}}\n",
            "}}\n"
        ),
        s.requests.load(Ordering::Relaxed),
        s.hits.load(Ordering::Relaxed),
        s.misses.load(Ordering::Relaxed),
        s.deduped.load(Ordering::Relaxed),
        s.object_hits.load(Ordering::Relaxed),
        s.object_misses.load(Ordering::Relaxed),
        s.object_publishes.load(Ordering::Relaxed),
        s.rejected.load(Ordering::Relaxed),
        s.throttled.load(Ordering::Relaxed),
        obs::metrics::counter_value("charcache_retrain_hits_total").unwrap_or(0),
        obs::metrics::counter_value("charcache_retrain_misses_total").unwrap_or(0),
        ctx.flights.inflight(),
        ctx.pool.size(),
        store.mem_hits,
        store.disk_hits,
        store.misses,
        store.puts,
    )
}

/// Parses the `<32-hex-key>` tail of an `/object/` path.
fn object_key(path: &str) -> Option<Digest128> {
    path.strip_prefix("/object/").and_then(Digest128::from_hex)
}

/// `GET /object/<key>`: the raw checksummed container bytes. The bytes
/// are served as stored, **without** a server-side decode — the
/// whole-file checksum travels inside the container and the client
/// re-validates it, so a corrupt stored object degrades to a miss at
/// the requesting worker instead of costing this daemon a decode per
/// serve.
fn handle_object_get(ctx: &Arc<Ctx>, request: &Request, _deferred: &Deferred) -> Reply {
    let Some(key) = object_key(&request.path) else {
        return Reply::Now(Response::json(
            400,
            error_body("object path must be /object/<32-hex-key>"),
        ));
    };
    Reply::Now(match ctx.cache.store().get_encoded(key) {
        Some(bytes) => {
            ctx.stats.object_hits.fetch_add(1, Ordering::Relaxed);
            METRICS.object_hits.inc();
            Response::bytes(200, "application/octet-stream", bytes)
        }
        None => {
            ctx.stats.object_misses.fetch_add(1, Ordering::Relaxed);
            METRICS.object_misses.inc();
            Response::json(404, error_body(&format!("no object {key}")))
        }
    })
}

/// `PUT /object/<key>`: validates the container (every checksum, every
/// bound) and ingests it through the store's atomic put path. A corrupt
/// or oversized payload is a client error — it can never poison the
/// store.
fn handle_object_put(ctx: &Arc<Ctx>, request: &Request, _deferred: &Deferred) -> Reply {
    let Some(key) = object_key(&request.path) else {
        return Reply::Now(Response::json(
            400,
            error_body("object path must be /object/<32-hex-key>"),
        ));
    };
    // `put_encoded` validates every checksum before the atomic ingest
    // and stores the received bytes as-is — no re-encode of a buffer
    // already in hand. A failed validation is the client's fault.
    Reply::Now(match ctx.cache.store().put_encoded(key, &request.body) {
        Ok(()) => {
            ctx.stats.object_publishes.fetch_add(1, Ordering::Relaxed);
            METRICS.object_publishes.inc();
            Response::json(200, "{\"status\": \"stored\"}\n")
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            Response::json(400, error_body(&format!("corrupt object payload: {e}")))
        }
        Err(e) => Response::json(500, error_body(&format!("object store failed: {e}"))),
    })
}

/// Parses the request body into a pipeline configuration and network.
/// An empty body means "Micro LeNet-5 at the default seed".
fn parse_characterize(body: &str) -> Result<(PipelineConfig, NetworkKind), String> {
    let parsed = if body.trim().is_empty() {
        JsonValue::Object(Vec::new())
    } else {
        json::parse(body)?
    };
    let scale = match parsed.get("scale").and_then(JsonValue::as_str) {
        None => Scale::Micro,
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "micro" => Scale::Micro,
            "mini" => Scale::Mini,
            "full" => Scale::Full,
            other => return Err(format!("unknown scale `{other}` (micro | mini | full)")),
        },
    };
    let kind = match parsed.get("network").and_then(JsonValue::as_str) {
        None => NetworkKind::LeNet5,
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "lenet5" => NetworkKind::LeNet5,
            "resnet20" => NetworkKind::ResNet20,
            "resnet50" => NetworkKind::ResNet50,
            "efficientnet" | "efficientnetlite" => NetworkKind::EfficientNetLite,
            other => {
                return Err(format!(
                    "unknown network `{other}` (lenet5 | resnet20 | resnet50 | efficientnet)"
                ))
            }
        },
    };
    let mut cfg = PipelineConfig::for_scale(scale);
    if let Some(seed) = parsed.get("seed") {
        cfg.seed = seed
            .as_u64()
            .ok_or_else(|| "seed must be a non-negative integer up to 2^53".to_string())?;
    }
    Ok((cfg, kind))
}

fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Micro => "micro",
        Scale::Mini => "mini",
        Scale::Full => "full",
    }
}

fn network_token(kind: NetworkKind) -> &'static str {
    match kind {
        NetworkKind::LeNet5 => "lenet5",
        NetworkKind::ResNet20 => "resnet20",
        NetworkKind::ResNet50 => "resnet50",
        NetworkKind::EfficientNetLite => "efficientnet",
    }
}

fn render_run(
    cfg: &PipelineConfig,
    kind: NetworkKind,
    run: &CharacterizationRun,
    deduped: bool,
) -> String {
    let m = &run.manifest;
    format!(
        concat!(
            "{{\n",
            "  \"request_key\": \"{}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"network\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"store_hit\": {},\n",
            "  \"deduped\": {},\n",
            "  \"accuracy\": {:.6},\n",
            "  \"captures\": {},\n",
            "  \"power_codes\": {},\n",
            "  \"training_epochs\": {},\n",
            "  \"sim_transitions\": {},\n",
            "  \"artifacts\": {{\"training\": \"{}\", \"capture\": \"{}\", ",
            "\"characterization\": \"{}\", \"timing\": \"{}\"}}\n",
            "}}\n"
        ),
        run.request_key,
        scale_token(cfg.scale),
        network_token(kind),
        cfg.seed,
        run.manifest_hit,
        deduped,
        m.accuracy,
        m.captures,
        m.power_codes,
        run.training_epochs,
        run.sim_transitions,
        m.training,
        m.capture,
        m.characterization,
        m.timing,
    )
}

fn handle_characterize(ctx: &Arc<Ctx>, request: &Request, deferred: &Deferred) -> Reply {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return Reply::Now(Response::json(
            400,
            error_body("characterize body is not UTF-8"),
        ));
    };
    let (cfg, kind) = match parse_characterize(body) {
        Ok(parsed) => parsed,
        Err(e) => return Reply::Now(Response::json(400, error_body(&e))),
    };
    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
    METRICS.requests.inc();
    let key = powerpruning::cache::request_key(&cfg, kind);

    // 1. Store hit: a stored manifest answers without any pipeline.
    if let Some(manifest) = ctx.cache.lookup_manifest(key) {
        ctx.stats.hits.fetch_add(1, Ordering::Relaxed);
        METRICS.request_hits.inc();
        let run = CharacterizationRun {
            request_key: key,
            manifest,
            manifest_hit: true,
            training_epochs: 0,
            sim_transitions: 0,
        };
        return Reply::Now(Response::json(200, render_run(&cfg, kind, &run, false)));
    }

    // 2. Backpressure: leading a NEW computation is subject to the
    //    pending-work cap; joining an open flight costs nothing and is
    //    always admitted. Only the reactor thread creates flights, so
    //    the contains/join pair cannot race with another admitter.
    if !ctx.flights.contains(key) && ctx.flights.inflight() >= ctx.max_pending {
        ctx.stats.throttled.fetch_add(1, Ordering::Relaxed);
        METRICS.throttled.inc();
        return Reply::Now(Response::too_many_requests(
            RETRY_AFTER_SECS,
            error_body("server is at its pending-computation limit, try again shortly"),
        ));
    }

    // 3. Single-flight: register this connection's delivery on the
    //    flight for the key, leading it if absent. The callback runs on
    //    whichever pool thread completes the flight; the reactor keeps
    //    the connection parked until the delivery lands.
    let delivery = deferred.clone();
    let role = ctx.flights.join(key, move |value, deduped| {
        delivery.deliver(match value.as_ref() {
            Ok(run) => Response::json(200, render_run(&cfg, kind, run, deduped)),
            Err(e) => {
                obs::error!("charserve", "characterization for key {key} failed: {e}");
                Response::json(500, error_body(e))
            }
        });
    });
    match role {
        Joined::Leader => {
            ctx.stats.misses.fetch_add(1, Ordering::Relaxed);
            METRICS.request_misses.inc();
            // The worker re-runs the same code path the standalone
            // pipeline uses; stage-level warm artifacts still hit.
            // The request's trace re-enters scope on the pool thread,
            // so the pipeline's stage spans and the store's remote
            // fetches stay under the one trace the client saw.
            let job_ctx = Arc::clone(ctx);
            let job_trace = obs::current_trace();
            let submitted = ctx.pool.submit(move || {
                let job = || {
                    let cache = Arc::clone(&job_ctx.cache);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        Pipeline::with_shared_cache(cfg, cache).characterization_request(kind)
                    }))
                    .map_err(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "worker panicked".to_string());
                        format!("characterization failed: {msg}")
                    });
                    job_ctx.flights.complete(key, result);
                };
                match job_trace {
                    Some(trace) => obs::with_trace(trace, job),
                    None => job(),
                }
            });
            if let Err(e) = submitted {
                ctx.flights.complete(key, Err(e));
            }
        }
        Joined::Waiter => {
            ctx.stats.deduped.fetch_add(1, Ordering::Relaxed);
            METRICS.request_deduped.inc();
        }
    }
    Reply::Later
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use charstore::{container, digest_bytes, RemoteTier, Section};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn u64_field(v: &JsonValue, name: &str) -> u64 {
        v.get(name)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing numeric field `{name}` in {v:?}"))
    }

    fn boot_with(
        tweak: impl FnOnce(&mut ServeConfig),
    ) -> (PathBuf, String, std::thread::JoinHandle<()>) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "charserve-server-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            store_dir: dir.clone(),
            ..ServeConfig::default()
        };
        tweak(&mut cfg);
        let server = Server::bind(&cfg).expect("bind charserve");
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.serve().expect("serve"));
        (dir, addr, daemon)
    }

    fn boot() -> (PathBuf, String, std::thread::JoinHandle<()>) {
        boot_with(|_| ())
    }

    /// The satellite regression: a client killed mid-request must be
    /// logged-and-dropped by the reactor — the daemon keeps accepting
    /// and `/healthz` still answers.
    #[test]
    fn mid_request_disconnects_do_not_stop_the_daemon() {
        let (dir, addr, daemon) = boot();
        let client = Client::new(&addr);

        // Killed mid-body: the declared 64 bytes never arrive.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"POST /characterize HTTP/1.1\r\nContent-Length: 64\r\n\r\nhalf")
            .unwrap();
        s.flush().unwrap();
        drop(s);
        // Killed mid-request-line.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /healthz HTT").unwrap();
        drop(s);
        // Killed mid-headers.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"PUT /object/00 HTTP/1.1\r\nContent-Len")
            .unwrap();
        drop(s);

        client
            .healthz()
            .expect("daemon stopped answering after mid-request disconnects");

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// `GET /metrics` serves the process-wide registry in Prometheus
    /// text form (request, store-tier and simulator families all
    /// registered at bind), and a client-sent `X-Trace-Id` is adopted:
    /// echoed on the response and stamped on the recorded spans.
    #[test]
    fn metrics_endpoint_serves_registry_and_traces_are_adopted() {
        let (dir, addr, daemon) = boot();
        let client = Client::new(&addr);

        let metrics = client.metrics().expect("GET /metrics");
        for family in [
            "# TYPE charserve_requests_total counter",
            "# TYPE charserve_request_seconds histogram",
            "# TYPE charserve_rejected_total counter",
            "# TYPE charserve_throttled_total counter",
            "charstore_remote_hits_total",
            "charstore_mem_hits_total",
            "gatesim_sim_transitions_total",
        ] {
            assert!(
                metrics.contains(family),
                "missing `{family}` in:\n{metrics}"
            );
        }

        // Hand-rolled request so we control the X-Trace-Id header. The
        // explicit `Connection: close` makes read_to_string terminate.
        let trace = obs::TraceId::generate();
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!("GET /healthz HTTP/1.1\r\nX-Trace-Id: {trace}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
        s.flush().unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(
            raw.contains(&format!("X-Trace-Id: {trace}")),
            "adopted trace not echoed on the response:\n{raw}"
        );
        let (spans, _) = obs::trace::snapshot();
        assert!(
            spans
                .iter()
                .any(|s| s.trace == trace.0 && s.name == "http_request"),
            "no http_request span recorded under trace {trace}"
        );

        // The trace dump endpoint returns chrome://tracing JSON.
        let dump = client.trace_dump().expect("GET /trace");
        assert!(dump.starts_with("{"), "not a JSON object: {dump}");
        assert!(dump.contains("\"traceEvents\""));

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Object endpoints: publish/fetch round-trips bit-identical bytes,
    /// misses are 404s, corrupt payloads and bad keys are client
    /// errors, oversized declarations are 413s — and `/stats` accounts
    /// for all of it.
    #[test]
    fn object_endpoints_serve_validate_and_count() {
        let (dir, addr, daemon) = boot();
        let client = Client::new(&addr);
        let tier = RemoteTier::new(&addr);
        let key = digest_bytes("server-test", b"obj");

        // Miss before anything is stored.
        assert_eq!(tier.fetch(key).unwrap(), None);

        // Publish a valid container; fetch returns the exact bytes.
        let sections = vec![
            Section::new(3, vec![7u8; 128]),
            Section::new(9, vec![1, 2, 3]),
        ];
        let encoded = container::encode(&sections);
        tier.publish(key, &encoded).unwrap();
        assert_eq!(tier.fetch(key).unwrap(), Some(encoded.clone()));

        // A corrupt payload is rejected (400) and never stored.
        let key2 = digest_bytes("server-test", b"obj2");
        let mut bad = encoded.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(tier.publish(key2, &bad).is_err());
        assert_eq!(tier.fetch(key2).unwrap(), None);

        // A non-hex key is a 400.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /object/nothex HTTP/1.1\r\n\r\n").unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 400);

        // An oversized declared body is a 413 — rejected before any
        // allocation, even on the object route's generous limit.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!(
                "PUT /object/{key} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                http::MAX_OBJECT_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 413);
        // …while the same declaration on a JSON route also 413s at the
        // much lower JSON cap.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!(
                "POST /characterize HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                http::MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 413);

        let stats = json::parse(&client.stats().unwrap()).unwrap();
        assert_eq!(u64_field(&stats, "object_hits"), 1);
        assert_eq!(u64_field(&stats, "object_misses"), 2);
        assert_eq!(u64_field(&stats, "object_publishes"), 1);

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Pipelined requests on one keep-alive connection answer in
    /// request order, and each response can be read back individually.
    #[test]
    fn keep_alive_pipelining_answers_in_order() {
        let (dir, addr, daemon) = boot();
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              GET /nope HTTP/1.1\r\n\r\n\
              GET /stats HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        s.flush().unwrap();
        let (status, body) = http::read_response(&s).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\": \"ok\""), "not healthz: {body}");
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 404);
        let (status, body) = http::read_response(&s).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"service\": \"charserve\""),
            "not stats: {body}"
        );
        drop(s);

        let client = Client::new(&addr);
        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// With the pending-computation cap at zero, a cold characterize is
    /// throttled with `429` + `Retry-After` while cheap endpoints keep
    /// answering — and `/stats` accounts for the refusal.
    #[test]
    fn cold_characterize_is_throttled_at_the_pending_cap() {
        let (dir, addr, daemon) = boot_with(|cfg| cfg.max_pending = 0);
        let client = Client::new(&addr);

        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            b"POST /characterize HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        s.flush().unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 429 "),
            "expected a 429 throttle:\n{raw}"
        );
        assert!(
            raw.contains(&format!("Retry-After: {RETRY_AFTER_SECS}")),
            "throttle response must advertise Retry-After:\n{raw}"
        );

        client.healthz().expect("healthz under throttle");
        let stats = json::parse(&client.stats().unwrap()).unwrap();
        assert_eq!(u64_field(&stats, "requests"), 1);
        assert_eq!(u64_field(&stats, "throttled"), 1);
        assert_eq!(u64_field(&stats, "request_misses"), 0);

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Connections beyond `max_connections` are turned away with `429`
    /// while admitted connections keep being served.
    #[test]
    fn excess_connections_are_rejected_with_429() {
        let (dir, addr, daemon) = boot_with(|cfg| cfg.max_connections = 1);

        // Fill the one slot with a live keep-alive connection.
        let mut held = TcpStream::connect(&addr).unwrap();
        held.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        let (status, _) = http::read_response(&held).unwrap();
        assert_eq!(status, 200);

        // The next arrival is told to back off…
        let mut over = TcpStream::connect(&addr).unwrap();
        let mut raw = String::new();
        over.read_to_string(&mut raw).unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 429 "),
            "expected a 429 rejection:\n{raw}"
        );

        // …while the admitted connection still answers, and counts it.
        held.write_all(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = http::read_response(&held).unwrap();
        assert_eq!(status, 200);
        let stats = json::parse(&body).unwrap();
        assert_eq!(u64_field(&stats, "rejected"), 1);
        drop(held);

        // The freed slot admits the shutdown request (allow a beat for
        // the reactor to observe the close).
        let client = Client::new(&addr);
        let mut last = Err("never tried".to_string());
        for _ in 0..50 {
            last = client.shutdown();
            if last.is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        last.expect("shutdown after slot freed");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }
}
