//! The charserve daemon: accept loop, request routing, and the
//! hit / single-flight / worker-pool serving policy.
//!
//! Serving policy for `POST /characterize`, in order:
//!
//! 1. **Store hit** — a [`powerpruning::cache::RequestManifest`] stored
//!    under the request key answers immediately, without touching a
//!    pipeline (zero training epochs, zero simulated transitions).
//! 2. **Single-flight** — otherwise the request joins the flight for
//!    its key: the first requester (leader) schedules the computation
//!    onto the bounded worker pool; every concurrent duplicate waits on
//!    the same flight and shares the one result.
//! 3. **Compute** — the worker builds a pipeline over the **shared**
//!    cache ([`powerpruning::Pipeline::with_shared_cache`]) and serves
//!    the request through the exact lookup → compute → store path the
//!    standalone pipeline uses, so per-stage artifacts warmed by other
//!    tools (e.g. `charstore warm`) are honored and newly computed ones
//!    are visible to them.

use crate::http::{self, Request};
use crate::json::{self, JsonValue};
use crate::pool::WorkerPool;
use crate::singleflight::{Joined, SingleFlight};
use charstore::Digest128;
use powerpruning::cache::CharacterizationRun;
use powerpruning::{CharCache, NetworkKind, Pipeline, PipelineConfig, Scale};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock};
use std::time::Instant;

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:7878`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads for characterization misses.
    pub workers: usize,
    /// Root of the shared artifact store.
    pub store_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            store_dir: PathBuf::from(powerpruning::cache::DEFAULT_CACHE_DIR),
        }
    }
}

/// Request-level counters exposed by `GET /stats`.
#[derive(Debug, Default)]
struct Stats {
    /// `POST /characterize` requests accepted.
    requests: AtomicU64,
    /// Requests answered straight from a stored manifest.
    hits: AtomicU64,
    /// Requests that led a computation (one per unique missing key).
    misses: AtomicU64,
    /// Requests that waited on another request's computation.
    deduped: AtomicU64,
    /// `GET /object/…` requests answered with container bytes — the
    /// remote tier's hits, as seen from the serving side.
    object_hits: AtomicU64,
    /// `GET /object/…` requests answered `404`.
    object_misses: AtomicU64,
    /// `PUT /object/…` ingests accepted (validated and stored).
    object_publishes: AtomicU64,
}

/// Registry mirrors of the per-instance [`Stats`] counters, plus the
/// request latency histogram behind `charserve_request_seconds` on
/// `GET /metrics`. [`Stats`] stays authoritative for `/stats` — it is
/// per-daemon (tests run several daemons in one process and assert
/// exact values) — while the registry aggregates process-wide for the
/// Prometheus endpoint.
struct ServeMetrics {
    requests: obs::metrics::Counter,
    request_hits: obs::metrics::Counter,
    request_misses: obs::metrics::Counter,
    request_deduped: obs::metrics::Counter,
    object_hits: obs::metrics::Counter,
    object_misses: obs::metrics::Counter,
    object_publishes: obs::metrics::Counter,
    /// Wall time per handled request, parse to response, any route.
    request_seconds: obs::metrics::Histogram,
}

static METRICS: LazyLock<ServeMetrics> = LazyLock::new(|| ServeMetrics {
    requests: obs::metrics::counter("charserve_requests_total"),
    request_hits: obs::metrics::counter("charserve_request_hits_total"),
    request_misses: obs::metrics::counter("charserve_request_misses_total"),
    request_deduped: obs::metrics::counter("charserve_request_deduped_total"),
    object_hits: obs::metrics::counter("charserve_object_hits_total"),
    object_misses: obs::metrics::counter("charserve_object_misses_total"),
    object_publishes: obs::metrics::counter("charserve_object_publishes_total"),
    request_seconds: obs::metrics::histogram(
        "charserve_request_seconds",
        obs::metrics::LATENCY_SECONDS,
    ),
});

struct Shared {
    cache: Arc<CharCache>,
    flights: SingleFlight<CharacterizationRun>,
    pool: WorkerPool,
    stats: Stats,
    shutdown: AtomicBool,
    addr: SocketAddr,
    store_dir: String,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("addr", &self.addr)
            .field("store_dir", &self.store_dir)
            .finish_non_exhaustive()
    }
}

/// The daemon. [`Server::bind`] opens the listener (so the chosen port
/// is known immediately); [`Server::serve`] blocks until a
/// `POST /shutdown` arrives.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Opens the store and binds the listener.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the store or binding.
    pub fn bind(cfg: &ServeConfig) -> io::Result<Server> {
        // Eager registration: an idle daemon's `GET /metrics` must
        // already expose the full counter set at zero, including the
        // simulator counters no request has touched yet. The store's
        // own metrics register when `CharCache::open` builds it.
        LazyLock::force(&METRICS);
        gatesim::register_metrics();
        let cache = Arc::new(CharCache::open(&cfg.store_dir)?);
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        obs::info!(
            "charserve",
            "listening on {}, {} workers, store {}",
            listener.local_addr()?,
            cfg.workers,
            cfg.store_dir.display()
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cache,
                flights: SingleFlight::new(),
                pool: WorkerPool::new(cfg.workers),
                stats: Stats::default(),
                shutdown: AtomicBool::new(false),
                addr,
                store_dir: cfg.store_dir.display().to_string(),
            }),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Never — the address was resolved at bind time.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until shutdown, then drains and joins the
    /// worker pool **and every live connection thread** — a response in
    /// flight at shutdown is still written before `serve` returns, so a
    /// waiter that spent minutes on a computation never gets its
    /// connection cut by process exit. Each connection is handled on
    /// its own thread; the expensive work happens on the bounded pool,
    /// so connection threads only parse, wait and write.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the accept loop itself (per-connection
    /// errors are answered with 4xx/5xx and do not stop the daemon).
    pub fn serve(self) -> io::Result<()> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Reap finished handler threads so the daemon's bookkeeping
            // stays proportional to live connections, not total served.
            connections.retain(|h| !h.is_finished());
            let Ok(stream) = stream else { continue };
            // Bound the request-reading phase so a half-open connection
            // can never pin a handler thread (and the shutdown join)
            // forever. Responses are written after the (unbounded)
            // computation completes; only the *read* is on the clock.
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
            let shared = Arc::clone(&self.shared);
            if let Ok(handle) = std::thread::Builder::new()
                .name("charserve-conn".to_string())
                .spawn(move || handle_connection(&shared, stream))
            {
                connections.push(handle);
            }
        }
        obs::info!(
            "charserve",
            "shutdown: draining pool and {} live connections",
            connections.iter().filter(|h| !h.is_finished()).count()
        );
        self.shared.pool.shutdown();
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let _ = http::write_response(stream, status, reason, body);
}

fn error_body(msg: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", json::escape(msg))
}

/// The body limit for a routed request head: object ingest accepts
/// full container payloads, every JSON endpoint keeps the tight cap.
fn body_limit(head: &http::Head) -> usize {
    if head.method == "PUT" && head.path.starts_with("/object/") {
        http::MAX_OBJECT_BYTES
    } else {
        http::MAX_BODY_BYTES
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let started = Instant::now();
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    // Two-phase read: the head alone decides the route (and with it the
    // body limit), so no buffer is ever sized from client input before
    // the route's cap has vetted the declared length.
    let parsed = (|| -> io::Result<(Request, Option<String>)> {
        let mut reader = BufReader::new(&stream);
        let head = http::read_head(&mut reader)?;
        let limit = body_limit(&head);
        let body = http::read_body(&mut reader, head.content_length, limit)?;
        let trace_id = head.trace_id;
        Ok((
            Request {
                method: head.method,
                path: head.path,
                body,
            },
            trace_id,
        ))
    })();
    let (request, client_trace) = match parsed {
        Ok(parsed) => parsed,
        // A client that went away (or stalled past the read timeout)
        // is routine churn, not a request: log it and keep the accept
        // loop's world clean — no response to a dead socket, no error
        // escaping the connection thread.
        Err(e) if http::is_disconnect(&e) => {
            obs::info!("charserve", "client {peer} disconnected mid-request: {e}");
            return;
        }
        Err(e) if http::is_too_large(&e) => {
            respond(
                &mut stream,
                413,
                "Payload Too Large",
                &error_body(&e.to_string()),
            );
            return;
        }
        Err(e) => {
            respond(&mut stream, 400, "Bad Request", &error_body(&e.to_string()));
            return;
        }
    };
    // Adopt the client's trace when it sent a valid one, otherwise mint
    // a fresh ID. Everything below — log lines, recorded spans, and the
    // store's remote-tier fetches from upstream daemons — carries it,
    // so one request is one joinable trace across processes.
    let trace = client_trace
        .as_deref()
        .and_then(obs::TraceId::parse)
        .unwrap_or_else(obs::TraceId::generate);
    obs::with_trace(trace, || {
        let mut span = obs::span("http_request");
        span.field("method", &request.method);
        span.field("path", &request.path);
        span.field("peer", &peer);
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                let body = format!(
                    "{{\"status\": \"ok\", \"store\": \"{}\", \"workers\": {}}}\n",
                    json::escape(&shared.store_dir),
                    shared.pool.size()
                );
                respond(&mut stream, 200, "OK", &body);
            }
            ("GET", "/stats") => {
                respond(&mut stream, 200, "OK", &render_stats(shared));
            }
            ("GET", "/metrics") => {
                let _ = http::write_response_bytes(
                    &mut stream,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    obs::metrics::render_prometheus().as_bytes(),
                );
            }
            ("GET", "/trace") => {
                let _ = http::write_response_bytes(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    obs::trace::trace_json().as_bytes(),
                );
            }
            ("POST", "/characterize") => handle_characterize(shared, &mut stream, &request),
            ("GET", path) if path.starts_with("/object/") => {
                handle_object_get(shared, &mut stream, path);
            }
            ("PUT", path) if path.starts_with("/object/") => {
                handle_object_put(shared, &mut stream, path, &request.body);
            }
            ("POST", "/shutdown") => {
                respond(&mut stream, 200, "OK", "{\"status\": \"shutting down\"}\n");
                shared.shutdown.store(true, Ordering::Release);
                // The accept loop is blocked in accept(); poke it so it
                // observes the flag. The dummy connection is then dropped
                // by the loop's shutdown check before being handled.
                let _ = TcpStream::connect(shared.addr);
            }
            (_, path) => {
                respond(
                    &mut stream,
                    404,
                    "Not Found",
                    &error_body(&format!("no such endpoint {path}")),
                );
            }
        }
        METRICS.request_seconds.observe_duration(started.elapsed());
        obs::debug!(
            "charserve",
            "{} {} from {peer} handled in {:.1}ms",
            request.method,
            request.path,
            started.elapsed().as_secs_f64() * 1e3
        );
    });
}

fn render_stats(shared: &Shared) -> String {
    let s = &shared.stats;
    let store = shared.cache.store().counters();
    format!(
        concat!(
            "{{\n",
            "  \"service\": \"charserve\",\n",
            "  \"requests\": {},\n",
            "  \"request_hits\": {},\n",
            "  \"request_misses\": {},\n",
            "  \"request_deduped\": {},\n",
            "  \"object_hits\": {},\n",
            "  \"object_misses\": {},\n",
            "  \"object_publishes\": {},\n",
            "  \"retrain_hits\": {},\n",
            "  \"retrain_misses\": {},\n",
            "  \"inflight\": {},\n",
            "  \"workers\": {},\n",
            "  \"store\": {{\"mem_hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"puts\": {}}}\n",
            "}}\n"
        ),
        s.requests.load(Ordering::Relaxed),
        s.hits.load(Ordering::Relaxed),
        s.misses.load(Ordering::Relaxed),
        s.deduped.load(Ordering::Relaxed),
        s.object_hits.load(Ordering::Relaxed),
        s.object_misses.load(Ordering::Relaxed),
        s.object_publishes.load(Ordering::Relaxed),
        obs::metrics::counter_value("charcache_retrain_hits_total").unwrap_or(0),
        obs::metrics::counter_value("charcache_retrain_misses_total").unwrap_or(0),
        shared.flights.inflight(),
        shared.pool.size(),
        store.mem_hits,
        store.disk_hits,
        store.misses,
        store.puts,
    )
}

/// Parses the `<32-hex-key>` tail of an `/object/` path.
fn object_key(path: &str) -> Option<Digest128> {
    path.strip_prefix("/object/").and_then(Digest128::from_hex)
}

/// `GET /object/<key>`: streams the raw checksummed container bytes.
/// The bytes are served as stored, **without** a server-side decode —
/// the whole-file checksum travels inside the container and the client
/// re-validates it, so a corrupt stored object degrades to a miss at
/// the requesting worker instead of costing this daemon a decode per
/// serve.
fn handle_object_get(shared: &Arc<Shared>, stream: &mut TcpStream, path: &str) {
    let Some(key) = object_key(path) else {
        respond(
            stream,
            400,
            "Bad Request",
            &error_body("object path must be /object/<32-hex-key>"),
        );
        return;
    };
    match shared.cache.store().get_encoded(key) {
        Some(bytes) => {
            shared.stats.object_hits.fetch_add(1, Ordering::Relaxed);
            METRICS.object_hits.inc();
            let _ =
                http::write_response_bytes(stream, 200, "OK", "application/octet-stream", &bytes);
        }
        None => {
            shared.stats.object_misses.fetch_add(1, Ordering::Relaxed);
            METRICS.object_misses.inc();
            respond(
                stream,
                404,
                "Not Found",
                &error_body(&format!("no object {key}")),
            );
        }
    }
}

/// `PUT /object/<key>`: validates the container (every checksum, every
/// bound) and ingests it through the store's atomic put path. A corrupt
/// or oversized payload is a client error — it can never poison the
/// store.
fn handle_object_put(shared: &Arc<Shared>, stream: &mut TcpStream, path: &str, body: &[u8]) {
    let Some(key) = object_key(path) else {
        respond(
            stream,
            400,
            "Bad Request",
            &error_body("object path must be /object/<32-hex-key>"),
        );
        return;
    };
    // `put_encoded` validates every checksum before the atomic ingest
    // and stores the received bytes as-is — no re-encode of a buffer
    // already in hand. A failed validation is the client's fault.
    match shared.cache.store().put_encoded(key, body) {
        Ok(()) => {
            shared
                .stats
                .object_publishes
                .fetch_add(1, Ordering::Relaxed);
            METRICS.object_publishes.inc();
            respond(stream, 200, "OK", "{\"status\": \"stored\"}\n");
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            respond(
                stream,
                400,
                "Bad Request",
                &error_body(&format!("corrupt object payload: {e}")),
            );
        }
        Err(e) => {
            respond(
                stream,
                500,
                "Internal Server Error",
                &error_body(&format!("object store failed: {e}")),
            );
        }
    }
}

/// Parses the request body into a pipeline configuration and network.
/// An empty body means "Micro LeNet-5 at the default seed".
fn parse_characterize(body: &str) -> Result<(PipelineConfig, NetworkKind), String> {
    let parsed = if body.trim().is_empty() {
        JsonValue::Object(Vec::new())
    } else {
        json::parse(body)?
    };
    let scale = match parsed.get("scale").and_then(JsonValue::as_str) {
        None => Scale::Micro,
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "micro" => Scale::Micro,
            "mini" => Scale::Mini,
            "full" => Scale::Full,
            other => return Err(format!("unknown scale `{other}` (micro | mini | full)")),
        },
    };
    let kind = match parsed.get("network").and_then(JsonValue::as_str) {
        None => NetworkKind::LeNet5,
        Some(s) => match s.to_ascii_lowercase().as_str() {
            "lenet5" => NetworkKind::LeNet5,
            "resnet20" => NetworkKind::ResNet20,
            "resnet50" => NetworkKind::ResNet50,
            "efficientnet" | "efficientnetlite" => NetworkKind::EfficientNetLite,
            other => {
                return Err(format!(
                    "unknown network `{other}` (lenet5 | resnet20 | resnet50 | efficientnet)"
                ))
            }
        },
    };
    let mut cfg = PipelineConfig::for_scale(scale);
    if let Some(seed) = parsed.get("seed") {
        cfg.seed = seed
            .as_u64()
            .ok_or_else(|| "seed must be a non-negative integer up to 2^53".to_string())?;
    }
    Ok((cfg, kind))
}

fn scale_token(scale: Scale) -> &'static str {
    match scale {
        Scale::Micro => "micro",
        Scale::Mini => "mini",
        Scale::Full => "full",
    }
}

fn network_token(kind: NetworkKind) -> &'static str {
    match kind {
        NetworkKind::LeNet5 => "lenet5",
        NetworkKind::ResNet20 => "resnet20",
        NetworkKind::ResNet50 => "resnet50",
        NetworkKind::EfficientNetLite => "efficientnet",
    }
}

fn render_run(
    cfg: &PipelineConfig,
    kind: NetworkKind,
    run: &CharacterizationRun,
    deduped: bool,
) -> String {
    let m = &run.manifest;
    format!(
        concat!(
            "{{\n",
            "  \"request_key\": \"{}\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"network\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"store_hit\": {},\n",
            "  \"deduped\": {},\n",
            "  \"accuracy\": {:.6},\n",
            "  \"captures\": {},\n",
            "  \"power_codes\": {},\n",
            "  \"training_epochs\": {},\n",
            "  \"sim_transitions\": {},\n",
            "  \"artifacts\": {{\"training\": \"{}\", \"capture\": \"{}\", ",
            "\"characterization\": \"{}\", \"timing\": \"{}\"}}\n",
            "}}\n"
        ),
        run.request_key,
        scale_token(cfg.scale),
        network_token(kind),
        cfg.seed,
        run.manifest_hit,
        deduped,
        m.accuracy,
        m.captures,
        m.power_codes,
        run.training_epochs,
        run.sim_transitions,
        m.training,
        m.capture,
        m.characterization,
        m.timing,
    )
}

fn handle_characterize(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        respond(
            stream,
            400,
            "Bad Request",
            &error_body("characterize body is not UTF-8"),
        );
        return;
    };
    let (cfg, kind) = match parse_characterize(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            respond(stream, 400, "Bad Request", &error_body(&e));
            return;
        }
    };
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    METRICS.requests.inc();
    let key = powerpruning::cache::request_key(&cfg, kind);

    // 1. Store hit: a stored manifest answers without any pipeline.
    if let Some(manifest) = shared.cache.lookup_manifest(key) {
        shared.stats.hits.fetch_add(1, Ordering::Relaxed);
        METRICS.request_hits.inc();
        let run = CharacterizationRun {
            request_key: key,
            manifest,
            manifest_hit: true,
            training_epochs: 0,
            sim_transitions: 0,
        };
        respond(stream, 200, "OK", &render_run(&cfg, kind, &run, false));
        return;
    }

    // 2. Single-flight: lead the computation or wait on the one in
    //    progress for this key.
    let (flight, deduped) = match shared.flights.join(key) {
        Joined::Leader(flight) => {
            shared.stats.misses.fetch_add(1, Ordering::Relaxed);
            METRICS.request_misses.inc();
            // The worker re-runs the same code path the standalone
            // pipeline uses; stage-level warm artifacts still hit.
            // The request's trace re-enters scope on the pool thread,
            // so the pipeline's stage spans and the store's remote
            // fetches stay under the one trace the client saw.
            let job_shared = Arc::clone(shared);
            let job_flight = Arc::clone(&flight);
            let job_trace = obs::current_trace();
            let submitted = shared.pool.submit(move || {
                let job = || {
                    let cache = Arc::clone(&job_shared.cache);
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        Pipeline::with_shared_cache(cfg, cache).characterization_request(kind)
                    }))
                    .map_err(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "worker panicked".to_string());
                        format!("characterization failed: {msg}")
                    });
                    job_shared.flights.complete(key, &job_flight, result);
                };
                match job_trace {
                    Some(trace) => obs::with_trace(trace, job),
                    None => job(),
                }
            });
            if let Err(e) = submitted {
                shared.flights.complete(key, &flight, Err(e));
            }
            (flight, false)
        }
        Joined::Waiter(flight) => {
            shared.stats.deduped.fetch_add(1, Ordering::Relaxed);
            METRICS.request_deduped.inc();
            (flight, true)
        }
    };

    match flight.wait().as_ref() {
        Ok(run) => respond(stream, 200, "OK", &render_run(&cfg, kind, run, deduped)),
        Err(e) => {
            obs::error!("charserve", "characterization for key {key} failed: {e}");
            respond(stream, 500, "Internal Server Error", &error_body(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use charstore::{container, digest_bytes, RemoteTier, Section};
    use std::io::Write;

    fn u64_field(v: &JsonValue, name: &str) -> u64 {
        v.get(name)
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing numeric field `{name}` in {v:?}"))
    }

    fn boot() -> (PathBuf, String, std::thread::JoinHandle<()>) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "charserve-server-test-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            store_dir: dir.clone(),
        })
        .expect("bind charserve");
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.serve().expect("serve"));
        (dir, addr, daemon)
    }

    /// The satellite regression: a client killed mid-request must be
    /// logged-and-dropped by its connection thread — the daemon keeps
    /// accepting and `/healthz` still answers.
    #[test]
    fn mid_request_disconnects_do_not_stop_the_daemon() {
        let (dir, addr, daemon) = boot();
        let client = Client::new(&addr);

        // Killed mid-body: the declared 64 bytes never arrive.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"POST /characterize HTTP/1.1\r\nContent-Length: 64\r\n\r\nhalf")
            .unwrap();
        s.flush().unwrap();
        drop(s);
        // Killed mid-request-line.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /healthz HTT").unwrap();
        drop(s);
        // Killed mid-headers.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"PUT /object/00 HTTP/1.1\r\nContent-Len")
            .unwrap();
        drop(s);

        client
            .healthz()
            .expect("daemon stopped answering after mid-request disconnects");

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// `GET /metrics` serves the process-wide registry in Prometheus
    /// text form (request, store-tier and simulator families all
    /// registered at bind), and a client-sent `X-Trace-Id` is adopted:
    /// echoed on the response and stamped on the recorded spans.
    #[test]
    fn metrics_endpoint_serves_registry_and_traces_are_adopted() {
        let (dir, addr, daemon) = boot();
        let client = Client::new(&addr);

        let metrics = client.metrics().expect("GET /metrics");
        for family in [
            "# TYPE charserve_requests_total counter",
            "# TYPE charserve_request_seconds histogram",
            "charstore_remote_hits_total",
            "charstore_mem_hits_total",
            "gatesim_sim_transitions_total",
        ] {
            assert!(
                metrics.contains(family),
                "missing `{family}` in:\n{metrics}"
            );
        }

        // Hand-rolled request so we control the X-Trace-Id header.
        let trace = obs::TraceId::generate();
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(format!("GET /healthz HTTP/1.1\r\nX-Trace-Id: {trace}\r\n\r\n").as_bytes())
            .unwrap();
        s.flush().unwrap();
        let mut raw = String::new();
        std::io::Read::read_to_string(&mut s, &mut raw).unwrap();
        assert!(
            raw.contains(&format!("X-Trace-Id: {trace}")),
            "adopted trace not echoed on the response:\n{raw}"
        );
        let (spans, _) = obs::trace::snapshot();
        assert!(
            spans
                .iter()
                .any(|s| s.trace == trace.0 && s.name == "http_request"),
            "no http_request span recorded under trace {trace}"
        );

        // The trace dump endpoint returns chrome://tracing JSON.
        let dump = client.trace_dump().expect("GET /trace");
        assert!(dump.starts_with("{"), "not a JSON object: {dump}");
        assert!(dump.contains("\"traceEvents\""));

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Object endpoints: publish/fetch round-trips bit-identical bytes,
    /// misses are 404s, corrupt payloads and bad keys are client
    /// errors, oversized declarations are 413s — and `/stats` accounts
    /// for all of it.
    #[test]
    fn object_endpoints_serve_validate_and_count() {
        let (dir, addr, daemon) = boot();
        let client = Client::new(&addr);
        let tier = RemoteTier::new(&addr);
        let key = digest_bytes("server-test", b"obj");

        // Miss before anything is stored.
        assert_eq!(tier.fetch(key).unwrap(), None);

        // Publish a valid container; fetch returns the exact bytes.
        let sections = vec![
            Section::new(3, vec![7u8; 128]),
            Section::new(9, vec![1, 2, 3]),
        ];
        let encoded = container::encode(&sections);
        tier.publish(key, &encoded).unwrap();
        assert_eq!(tier.fetch(key).unwrap(), Some(encoded.clone()));

        // A corrupt payload is rejected (400) and never stored.
        let key2 = digest_bytes("server-test", b"obj2");
        let mut bad = encoded.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(tier.publish(key2, &bad).is_err());
        assert_eq!(tier.fetch(key2).unwrap(), None);

        // A non-hex key is a 400.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /object/nothex HTTP/1.1\r\n\r\n").unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 400);

        // An oversized declared body is a 413 — rejected before any
        // allocation, even on the object route's generous limit.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!(
                "PUT /object/{key} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                http::MAX_OBJECT_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 413);
        // …while the same declaration on a JSON route also 413s at the
        // much lower JSON cap.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(
            format!(
                "POST /characterize HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                http::MAX_BODY_BYTES + 1
            )
            .as_bytes(),
        )
        .unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 413);

        let stats = json::parse(&client.stats().unwrap()).unwrap();
        assert_eq!(u64_field(&stats, "object_hits"), 1);
        assert_eq!(u64_field(&stats, "object_misses"), 2);
        assert_eq!(u64_field(&stats, "object_publishes"), 1);

        client.shutdown().expect("shutdown");
        daemon.join().expect("daemon thread");
        let _ = std::fs::remove_dir_all(dir);
    }
}
