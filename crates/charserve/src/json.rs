//! A small JSON reader for the service wire format.
//!
//! Parses objects, strings, numbers, booleans and `null` — everything
//! the `charserve` protocol uses. Arrays are not part of the protocol
//! and are rejected. The parser is bounds-checked and never panics on
//! malformed input; errors carry the byte offset.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An object, in declaration order (duplicate keys: last wins on
    /// [`JsonValue::get`] lookups is *not* implemented — first wins,
    /// and duplicates never occur in the protocol).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a field of an object (first match).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one
    /// (rejects negatives, non-integers and values beyond 2^53).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum object-nesting depth. The protocol is at most two levels
/// deep (`/stats` nests `store`); without a cap, a deeply nested body
/// would overflow the recursive parser's stack — aborting the whole
/// daemon on one malicious request.
pub const MAX_DEPTH: usize = 16;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // The protocol never emits surrogate pairs;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte boundaries are valid by construction). Only
                    // the next scalar's bytes are validated — decoding
                    // from the full remaining slice would make string
                    // parsing quadratic in the document size.
                    let rest = &self.bytes[self.pos..];
                    let head = &rest[..rest.len().min(4)];
                    let c = match std::str::from_utf8(head) {
                        Ok(s) => s.chars().next(),
                        // A boundary can split the last scalar of the
                        // 4-byte window; valid-up-to tells us how much
                        // of the window decodes.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&head[..e.valid_up_to()])
                                .map_err(|_| self.err("bad utf-8"))?
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let c = c.ok_or_else(|| self.err("bad utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("object nesting too deep"));
        }
        let result = self.object_body();
        self.depth -= 1;
        result
    }

    fn object_body(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'[') => Err(self.err("arrays are not part of the protocol")),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

/// Parses one JSON value (the protocol always exchanges objects).
/// Trailing non-whitespace is rejected.
///
/// # Errors
///
/// Returns a description with the byte offset on malformed input.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(
            r#"{"scale": "micro", "network": "lenet5", "seed": 229378083, "deep": {"a": true, "b": null}, "x": -1.5e2}"#,
        )
        .unwrap();
        assert_eq!(v.get("scale").and_then(JsonValue::as_str), Some("micro"));
        assert_eq!(v.get("seed").and_then(JsonValue::as_u64), Some(229_378_083));
        assert_eq!(
            v.get("deep")
                .and_then(|d| d.get("a"))
                .and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            v.get("deep").and_then(|d| d.get("b")),
            Some(&JsonValue::Null)
        );
        assert_eq!(v.get("x").and_then(JsonValue::as_f64), Some(-150.0));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(Vec::new()));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{\"a\": 1} trailing",
            "[1, 2]",
            "{\"a\": nope}",
            "{\"a\": \"unterminated}",
            "{\"a\": 1e999}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the cap: fine.
        let shallow = format!("{}1{}", "{\"a\":".repeat(4), "}".repeat(4));
        assert!(parse(&shallow).is_ok());
        // A pathological body (far under the HTTP size cap) must be an
        // error, not a parser-stack overflow that aborts the daemon.
        let deep = format!("{}1{}", "{\"a\":".repeat(100_000), "}".repeat(100_000));
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("too deep"), "unexpected error: {err}");
    }

    #[test]
    fn u64_coercion_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
    }
}
