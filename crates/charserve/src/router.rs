//! The typed router: route handlers are plain functions from a context
//! and a parsed [`Request`] to a [`Response`] value — never a socket.
//!
//! The pre-reactor daemon dispatched through one big
//! `match (method, path)` whose arms wrote raw `TcpStream`s, so
//! exercising a handler meant booting a listener. Here a handler is
//! `fn(&C, &Request, &Deferred) -> Reply`: it computes a value and the
//! transport (the reactor, or a unit test's bare function call)
//! decides how bytes leave the building. Handlers that answer from
//! state in hand return [`Reply::Now`]; the one handler whose answer
//! comes off the worker pool ([`Reply::Later`]) hands its eventual
//! [`Response`] to the [`Deferred`] it was given — the reactor parks
//! the connection until the deferred fires, a test just reads the
//! channel it wired in.

use crate::http::Request;
use crate::json;
use httpwire::Response;
use std::sync::mpsc;
use std::sync::Arc;

/// A route handler. `C` is the server's shared context; the
/// [`Deferred`] is only touched by handlers that answer asynchronously.
pub type Handler<C> = fn(&C, &Request, &Deferred) -> Reply;

/// What a handler produced.
#[derive(Debug)]
pub enum Reply {
    /// A complete response, ready to serialize.
    Now(Response),
    /// The response is being computed elsewhere (the worker pool); it
    /// will arrive through the [`Deferred`] the handler was given. The
    /// reactor suspends the connection — later pipelined requests on it
    /// wait their turn, preserving response order.
    Later,
}

/// A claim ticket for a response produced off the serving thread.
///
/// The reactor builds one per request, binding it to the connection
/// awaiting the answer; handlers clone it into completion callbacks.
/// Delivery is one-shot at the receiving end — a connection that died
/// while waiting simply discards the delivery.
#[derive(Clone)]
pub struct Deferred {
    deliver: Arc<dyn Fn(Response) + Send + Sync>,
}

impl std::fmt::Debug for Deferred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deferred").finish_non_exhaustive()
    }
}

impl Deferred {
    /// A deferred response slot delivering through `deliver`.
    #[must_use]
    pub fn new(deliver: impl Fn(Response) + Send + Sync + 'static) -> Deferred {
        Deferred {
            deliver: Arc::new(deliver),
        }
    }

    /// A deferred slot wired to a channel — the unit-test transport.
    #[must_use]
    pub fn channel() -> (Deferred, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Deferred::new(move |response| {
                let _ = tx.send(response);
            }),
            rx,
        )
    }

    /// Delivers the response to whatever transport awaits it.
    pub fn deliver(&self, response: Response) {
        (self.deliver)(response);
    }
}

/// The standard JSON error body.
#[must_use]
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", json::escape(msg))
}

/// One registered route.
struct Route<C> {
    method: &'static str,
    path: &'static str,
    /// Exact match on `path`, or prefix match (for `/object/<key>`).
    prefix: bool,
    handler: Handler<C>,
}

/// A method + path table mapping requests to typed handlers.
pub struct Router<C> {
    routes: Vec<Route<C>>,
}

impl<C> std::fmt::Debug for Router<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|r| format!("{} {}{}", r.method, r.path, if r.prefix { "*" } else { "" }))
            .collect();
        f.debug_struct("Router").field("routes", &routes).finish()
    }
}

impl<C> Default for Router<C> {
    fn default() -> Self {
        Router { routes: Vec::new() }
    }
}

impl<C> Router<C> {
    /// An empty router (every request answers 404).
    #[must_use]
    pub fn new() -> Router<C> {
        Router::default()
    }

    /// Registers an exact-path route.
    #[must_use]
    pub fn route(mut self, method: &'static str, path: &'static str, handler: Handler<C>) -> Self {
        self.routes.push(Route {
            method,
            path,
            prefix: false,
            handler,
        });
        self
    }

    /// Registers a prefix route (`path` is the prefix, e.g. `/object/`).
    /// Exact routes win over prefix routes regardless of registration
    /// order.
    #[must_use]
    pub fn route_prefix(
        mut self,
        method: &'static str,
        path: &'static str,
        handler: Handler<C>,
    ) -> Self {
        self.routes.push(Route {
            method,
            path,
            prefix: true,
            handler,
        });
        self
    }

    /// Dispatches one request; unmatched requests answer `404`.
    pub fn dispatch(&self, ctx: &C, request: &Request, deferred: &Deferred) -> Reply {
        let matching = |prefix_pass: bool| {
            self.routes.iter().find(|r| {
                r.prefix == prefix_pass
                    && r.method == request.method
                    && if r.prefix {
                        request.path.starts_with(r.path)
                    } else {
                        request.path == r.path
                    }
            })
        };
        match matching(false).or_else(|| matching(true)) {
            Some(route) => (route.handler)(ctx, request, deferred),
            None => Reply::Now(Response::json(
                404,
                error_body(&format!("no such endpoint {}", request.path)),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(_: &u32, _: &Request, _: &Deferred) -> Reply {
        Reply::Now(Response::json(200, "ok"))
    }

    fn echo_ctx(ctx: &u32, _: &Request, _: &Deferred) -> Reply {
        Reply::Now(Response::json(200, format!("{ctx}")))
    }

    fn object(_: &u32, req: &Request, _: &Deferred) -> Reply {
        Reply::Now(Response::json(200, req.path.clone()))
    }

    fn later(_: &u32, _: &Request, deferred: &Deferred) -> Reply {
        let deferred = deferred.clone();
        std::thread::spawn(move || deferred.deliver(Response::json(200, "eventually")));
        Reply::Later
    }

    fn body(reply: &Reply) -> String {
        match reply {
            Reply::Now(r) => String::from_utf8(r.body.clone()).unwrap(),
            Reply::Later => panic!("expected an immediate reply"),
        }
    }

    fn router() -> Router<u32> {
        Router::new()
            .route("GET", "/healthz", ok)
            .route("GET", "/ctx", echo_ctx)
            .route("POST", "/later", later)
            .route_prefix("GET", "/object/", object)
    }

    #[test]
    fn routes_dispatch_by_method_and_path_without_sockets() {
        let (deferred, _rx) = Deferred::channel();
        let r = router();
        assert_eq!(
            body(&r.dispatch(&7, &Request::new("GET", "/healthz"), &deferred)),
            "ok"
        );
        assert_eq!(
            body(&r.dispatch(&7, &Request::new("GET", "/ctx"), &deferred)),
            "7"
        );
        // Prefix routes see the full path.
        assert_eq!(
            body(&r.dispatch(&7, &Request::new("GET", "/object/00ff"), &deferred)),
            "/object/00ff"
        );
        // Wrong method on a known path, and an unknown path: 404.
        for req in [
            Request::new("PUT", "/healthz"),
            Request::new("GET", "/nope"),
        ] {
            let Reply::Now(resp) = r.dispatch(&7, &req, &deferred) else {
                panic!("404 must be immediate")
            };
            assert_eq!(resp.status, 404);
        }
    }

    #[test]
    fn deferred_replies_arrive_through_the_channel() {
        let (deferred, rx) = Deferred::channel();
        let r = router();
        let Reply::Later = r.dispatch(&7, &Request::new("POST", "/later"), &deferred) else {
            panic!("later route must suspend")
        };
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("deferred response");
        assert_eq!(resp.body, b"eventually");
    }
}
