//! The characterization service: a long-running daemon over the
//! [`charstore`] artifact store.
//!
//! PR 2–3 made every pipeline stage a pure, content-addressed function;
//! this crate is the "characterize once, serve millions" layer on top:
//! many clients share one warm store through a persistent server
//! instead of each warming their own.
//!
//! * [`reactor`] — the nonblocking event loop: **one** thread drives
//!   every connection through epoll (via the `polling` compat shim —
//!   no network dependencies, matching the offline compat-crate
//!   approach), with HTTP/1.1 keep-alive + pipelining, header/idle
//!   deadlines, and bounded admission (`429` + `Retry-After` past the
//!   connection cap).
//! * [`router`] — the typed route table: handlers are
//!   `fn(&Ctx, &Request, &Deferred) -> Reply` values that never touch
//!   a socket, so every route unit-tests as a bare function call.
//! * [`server`] — the policy layer: answers request hits straight from
//!   the shared [`charstore::Store`] and schedules misses onto a
//!   bounded worker-thread pool, suspending the connection
//!   ([`router::Reply::Later`]) instead of blocking a thread.
//! * [`singleflight`] — request deduplication: N concurrent requests
//!   for the same key run the expensive computation **once**; the
//!   other N−1 register completion callbacks on the leader's flight
//!   and share its result.
//! * [`pool`] — the bounded worker pool the leaders schedule onto.
//! * [`http`] / [`json`] — charserve's body-limit policy and blocking
//!   framing helpers over the shared sans-IO [`httpwire`] core, and a
//!   small JSON reader for the wire format.
//! * [`client`] — a blocking keep-alive client (over
//!   [`httpwire::HttpClient`]) for the CLI (`charstore request`),
//!   tests and CI.
//!
//! Endpoints:
//!
//! | endpoint | answer |
//! |---|---|
//! | `GET /healthz` | liveness + store root |
//! | `GET /stats` | request hit/miss/dedup, object hit/miss/publish, inflight, worker and store counters |
//! | `POST /characterize` | scale + network + seed → artifact digests + provenance |
//! | `GET /object/<key>` | raw checksummed container bytes (404 on miss; the client re-checksums) |
//! | `PUT /object/<key>` | validated object ingest through the store's atomic put path |
//! | `POST /shutdown` | stops the accept loop after responding |
//!
//! The object endpoints are the serving side of the store's **remote
//! tier** ([`charstore::RemoteTier`]): a worker with an empty local
//! store pointed at a warmed daemon answers `get` misses over the wire
//! and write-through-publishes its own `put`s, so a fleet shares one
//! warm cache without a shared filesystem.
//!
//! A `POST /characterize` request is keyed by
//! [`powerpruning::cache::request_key`]; a repeat answered from the
//! stored manifest costs **zero training epochs and zero simulated
//! transitions** — the acceptance bar the `service-smoke` CI job
//! asserts end to end.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod reactor;
pub mod router;
pub mod server;
pub mod singleflight;

pub use client::Client;
pub use server::{ServeConfig, Server};
