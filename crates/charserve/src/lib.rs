//! The characterization service: a long-running daemon over the
//! [`charstore`] artifact store.
//!
//! PR 2–3 made every pipeline stage a pure, content-addressed function;
//! this crate is the "characterize once, serve millions" layer on top:
//! many clients share one warm store through a persistent server
//! instead of each warming their own.
//!
//! * [`server`] — the daemon: hand-rolled HTTP/1.1 over
//!   [`std::net::TcpListener`] (no network dependencies, matching the
//!   offline compat-crate approach), answering request hits straight
//!   from the shared [`charstore::Store`] and scheduling misses onto a
//!   bounded worker-thread pool.
//! * [`singleflight`] — request deduplication: N concurrent requests
//!   for the same key run the expensive computation **once**; the
//!   other N−1 wait on the leader's flight and share its result.
//! * [`pool`] — the bounded worker pool the leaders schedule onto.
//! * [`http`] / [`json`] — just-enough HTTP/1.1 framing and a small
//!   JSON reader for the wire format.
//! * [`client`] — a blocking client for the CLI
//!   (`charstore request`), tests and CI.
//!
//! Endpoints:
//!
//! | endpoint | answer |
//! |---|---|
//! | `GET /healthz` | liveness + store root |
//! | `GET /stats` | request hit/miss/dedup, object hit/miss/publish, inflight, worker and store counters |
//! | `POST /characterize` | scale + network + seed → artifact digests + provenance |
//! | `GET /object/<key>` | raw checksummed container bytes (404 on miss; the client re-checksums) |
//! | `PUT /object/<key>` | validated object ingest through the store's atomic put path |
//! | `POST /shutdown` | stops the accept loop after responding |
//!
//! The object endpoints are the serving side of the store's **remote
//! tier** ([`charstore::RemoteTier`]): a worker with an empty local
//! store pointed at a warmed daemon answers `get` misses over the wire
//! and write-through-publishes its own `put`s, so a fleet shares one
//! warm cache without a shared filesystem.
//!
//! A `POST /characterize` request is keyed by
//! [`powerpruning::cache::request_key`]; a repeat answered from the
//! stored manifest costs **zero training epochs and zero simulated
//! transitions** — the acceptance bar the `service-smoke` CI job
//! asserts end to end.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod server;
pub mod singleflight;

pub use client::Client;
pub use server::{ServeConfig, Server};
