//! Just-enough HTTP/1.1 framing over [`std::net`] streams.
//!
//! The daemon speaks a deliberately tiny subset — one request per
//! connection (`Connection: close`), `Content-Length` bodies only, no
//! chunked encoding, no keep-alive — so the whole wire layer stays
//! auditable and dependency-free. Limits are enforced before
//! allocation, the same discipline as `charstore::wire::Reader`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Maximum accepted request-line + header-line length.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Maximum accepted number of header lines per request. Without a cap
/// a client could stream headers forever (one byte per read keeps the
/// idle timeout from firing) and pin the connection thread — and with
/// it the shutdown join.
pub const MAX_HEADER_LINES: usize = 64;
/// Maximum accepted body length.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request (or response) head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` / `POST` / ….
    pub method: String,
    /// Absolute path, e.g. `/characterize`.
    pub path: String,
    /// Decoded body (empty when there was none).
    pub body: String,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads one CRLF- (or LF-) terminated line, bounded by
/// [`MAX_LINE_BYTES`]. EOF before the terminator is a framing error —
/// treating a truncated connection as an empty line would let a
/// half-sent request parse as a complete one (and e.g. launch a
/// default characterization for a request that never finished
/// arriving).
fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(invalid("header line too long"));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| invalid("header line is not UTF-8"))
}

/// Parses `Content-Length` out of header lines until the blank line,
/// then reads exactly that many body bytes. Bounded in every
/// dimension: line length ([`MAX_LINE_BYTES`]), line count
/// ([`MAX_HEADER_LINES`]) and body size ([`MAX_BODY_BYTES`]).
fn read_headers_and_body(reader: &mut impl BufRead) -> io::Result<String> {
    let mut content_length: usize = 0;
    let mut lines = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        lines += 1;
        if lines > MAX_HEADER_LINES {
            return Err(invalid("too many header lines"));
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| invalid("bad Content-Length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(invalid("body too large"));
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))
}

/// Reads one request from a server-side connection.
///
/// # Errors
///
/// Returns an `InvalidData` error on any framing violation (the server
/// answers those with `400`).
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(invalid(format!("malformed request line `{request_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version `{version}`")));
    }
    let body = read_headers_and_body(&mut reader)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Writes a JSON response and flushes.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one client request and flushes.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: charserve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response from a client-side connection: `(status, body)`.
///
/// # Errors
///
/// Returns an `InvalidData` error on framing violations.
pub fn read_response(stream: &TcpStream) -> io::Result<(u16, String)> {
    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(invalid(format!("malformed status line `{status_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version `{version}`")));
    }
    let status = status
        .parse::<u16>()
        .map_err(|_| invalid("non-numeric status"))?;
    let body = read_headers_and_body(&mut reader)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one request/response pair over a real socket.
    #[test]
    fn request_and_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/characterize");
            assert_eq!(req.body, r#"{"scale": "micro"}"#);
            let mut stream = stream;
            write_response(&mut stream, 200, "OK", r#"{"ok": true}"#).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(
            &mut stream,
            "POST",
            "/characterize",
            r#"{"scale": "micro"}"#,
        )
        .unwrap();
        let (status, body) = read_response(&stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok": true}"#);
        server.join().unwrap();
    }

    #[test]
    fn truncated_requests_are_framing_errors_not_empty_requests() {
        // A client that disconnects mid-headers must yield an error —
        // never a parsed request with an empty body.
        for partial in [
            &b""[..],
            b"POST /characterize HTTP/1.1\r\n",
            b"POST /characterize HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                read_request(&stream)
            });
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(partial).unwrap();
            stream.flush().unwrap();
            drop(stream);
            assert!(
                server.join().unwrap().is_err(),
                "truncated request {partial:?} parsed as complete"
            );
        }
    }

    #[test]
    fn header_floods_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        for i in 0..(MAX_HEADER_LINES + 2) {
            stream
                .write_all(format!("X-Flood-{i}: y\r\n").as_bytes())
                .unwrap();
        }
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        use std::io::Write;
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
