//! Just-enough HTTP/1.1 framing over [`std::net`] streams.
//!
//! The daemon speaks a deliberately tiny subset — one request per
//! connection (`Connection: close`), `Content-Length` bodies only, no
//! chunked encoding, no keep-alive — so the whole wire layer stays
//! auditable and dependency-free. Limits are enforced before
//! allocation, the same discipline as `charstore::wire::Reader`:
//! reading is split into [`read_head`] (request line + headers, with
//! the declared `Content-Length` parsed but **no body buffer touched**)
//! and [`read_body`] (which checks the declared length against the
//! route's limit *before* allocating). An oversized declaration is a
//! typed [`is_too_large`] error the server answers with `413`; a
//! malformed or overflowing declaration is a plain framing error
//! answered with `400`. Either way a hostile client cannot make the
//! daemon allocate a byte more than the route allows.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Maximum accepted request-line + header-line length.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Maximum accepted number of header lines per request. Without a cap
/// a client could stream headers forever (one byte per read keeps the
/// idle timeout from firing) and pin the connection thread — and with
/// it the shutdown join.
pub const MAX_HEADER_LINES: usize = 64;
/// Maximum accepted body length for JSON endpoints.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Maximum accepted body length for object ingest (`PUT /object/…`):
/// checksummed containers of captured GEMM streams run far past the
/// JSON limit at Full scale. Defined as the client-side fetch cap so
/// the two ends of the object protocol can never drift apart — a
/// daemon that stored objects larger than the fetch cap would force
/// permanent recomputes fleet-wide.
pub const MAX_OBJECT_BYTES: usize = charstore::remote::MAX_OBJECT_BYTES;

/// A parsed request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` / `POST` / `PUT` / ….
    pub method: String,
    /// Absolute path, e.g. `/characterize`.
    pub path: String,
    /// Raw body bytes (empty when there was none). JSON endpoints
    /// decode UTF-8 themselves; object endpoints take the bytes as-is.
    pub body: Vec<u8>,
}

/// A parsed request line + headers, before any body byte is read (and
/// before any body buffer exists). The server routes on this to pick
/// the body limit for [`read_body`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// `GET` / `POST` / `PUT` / ….
    pub method: String,
    /// Absolute path.
    pub path: String,
    /// Declared `Content-Length` (0 when the header is absent).
    pub content_length: u64,
    /// Raw `X-Trace-Id` header value, if the client sent one — the
    /// caller's trace identity, adopted by the server so cross-process
    /// request traces join up. Validation (16 hex digits) is the
    /// server's job; a garbage value is simply ignored there.
    pub trace_id: Option<String>,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Marker payload of the "declared body exceeds the route limit"
/// error, so the server can answer `413` instead of a generic `400`.
#[derive(Debug)]
struct PayloadTooLarge {
    declared: u64,
    limit: usize,
}

impl std::fmt::Display for PayloadTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "declared body of {} bytes exceeds the {}-byte limit",
            self.declared, self.limit
        )
    }
}

impl std::error::Error for PayloadTooLarge {}

fn too_large(declared: u64, limit: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        PayloadTooLarge { declared, limit },
    )
}

/// Whether an error is the oversized-body rejection from
/// [`read_body`] — the server maps it to `413 Payload Too Large`.
#[must_use]
pub fn is_too_large(e: &io::Error) -> bool {
    e.get_ref()
        .is_some_and(|inner| inner.is::<PayloadTooLarge>())
}

/// Whether an error means the client went away (or stalled past the
/// read timeout) rather than sent something malformed. Responding is
/// pointless and the condition is routine under real traffic, so the
/// server logs these per-connection and keeps accepting instead of
/// treating them as request errors.
#[must_use]
pub fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or LF-) terminated line, bounded by
/// [`MAX_LINE_BYTES`]. EOF before the terminator is a framing error —
/// treating a truncated connection as an empty line would let a
/// half-sent request parse as a complete one (and e.g. launch a
/// default characterization for a request that never finished
/// arriving).
fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(invalid("header line too long"));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| invalid("header line is not UTF-8"))
}

/// The headers this server cares about, parsed in one pass.
struct Headers {
    content_length: u64,
    trace_id: Option<String>,
}

/// Parses header lines until the blank line and returns the declared
/// `Content-Length` (0 when absent) plus any `X-Trace-Id` value.
/// Bounded by [`MAX_LINE_BYTES`] and [`MAX_HEADER_LINES`]; a
/// `Content-Length` that does not parse as a `u64` (negative, garbage,
/// or overflowing) is a framing error. No body limit is applied here —
/// that is route-dependent and belongs to [`read_body`].
fn read_headers(reader: &mut impl BufRead) -> io::Result<Headers> {
    let mut headers = Headers {
        content_length: 0,
        trace_id: None,
    };
    let mut lines = 0usize;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        lines += 1;
        if lines > MAX_HEADER_LINES {
            return Err(invalid("too many header lines"));
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            headers.content_length = value
                .trim()
                .parse::<u64>()
                .map_err(|_| invalid("bad Content-Length"))?;
        } else if name.eq_ignore_ascii_case("x-trace-id") {
            headers.trace_id = Some(value.trim().to_string());
        }
    }
    Ok(headers)
}

/// Reads a request head: request line plus headers, stopping before
/// the body. No buffer is sized from client input here.
///
/// # Errors
///
/// Returns an `InvalidData` error on any framing violation, or an
/// [`is_disconnect`] error if the client went away mid-head.
pub fn read_head(reader: &mut impl BufRead) -> io::Result<Head> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(invalid(format!("malformed request line `{request_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version `{version}`")));
    }
    let headers = read_headers(reader)?;
    Ok(Head {
        method: method.to_string(),
        path: path.to_string(),
        content_length: headers.content_length,
        trace_id: headers.trace_id,
    })
}

/// Reads exactly `declared` body bytes, rejecting a declaration over
/// `limit` **before the buffer is allocated** — the load-bearing OOM
/// defense: a hostile `Content-Length` can never size an allocation.
///
/// # Errors
///
/// An [`is_too_large`] error when `declared > limit` (the server
/// answers `413`), or the underlying I/O error on a short read.
pub fn read_body(reader: &mut impl BufRead, declared: u64, limit: usize) -> io::Result<Vec<u8>> {
    if declared > limit as u64 {
        return Err(too_large(declared, limit));
    }
    let mut body = vec![0u8; declared as usize];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request from a server-side connection, with the JSON
/// body limit ([`MAX_BODY_BYTES`]). The daemon's connection handler
/// uses the two-phase [`read_head`] + [`read_body`] instead so object
/// routes get their own limit.
///
/// # Errors
///
/// Returns an `InvalidData` error on any framing violation (the server
/// answers those with `400`).
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    let body = read_body(&mut reader, head.content_length, MAX_BODY_BYTES)?;
    Ok(Request {
        method: head.method,
        path: head.path,
        body,
    })
}

/// Writes a response with an explicit content type and raw body bytes,
/// then flushes — the object-serving path.
///
/// When the writing thread is inside an [`obs::with_trace`] scope the
/// response carries an `X-Trace-Id` header, so a client that did not
/// send a trace of its own still learns the ID the daemon logged
/// under.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_response_bytes(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let trace = match obs::current_trace() {
        Some(trace) => format!("X-Trace-Id: {trace}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{trace}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response and flushes.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    write_response_bytes(stream, status, reason, "application/json", body.as_bytes())
}

/// Writes one client request and flushes. Inside an
/// [`obs::with_trace`] scope the request carries an `X-Trace-Id`
/// header, which the daemon adopts — client-side spans and daemon-side
/// spans land in the same trace.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let trace = match obs::current_trace() {
        Some(trace) => format!("X-Trace-Id: {trace}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: charserve\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{trace}Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response from a client-side connection: `(status, body)`.
///
/// # Errors
///
/// Returns an `InvalidData` error on framing violations.
pub fn read_response(stream: &TcpStream) -> io::Result<(u16, String)> {
    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(invalid(format!("malformed status line `{status_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version `{version}`")));
    }
    let status = status
        .parse::<u16>()
        .map_err(|_| invalid("non-numeric status"))?;
    let content_length = read_headers(&mut reader)?.content_length;
    let body = read_body(&mut reader, content_length, MAX_BODY_BYTES)?;
    String::from_utf8(body)
        .map(|body| (status, body))
        .map_err(|_| invalid("body is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one request/response pair over a real socket.
    #[test]
    fn request_and_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/characterize");
            assert_eq!(req.body, br#"{"scale": "micro"}"#);
            let mut stream = stream;
            write_response(&mut stream, 200, "OK", r#"{"ok": true}"#).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(
            &mut stream,
            "POST",
            "/characterize",
            r#"{"scale": "micro"}"#,
        )
        .unwrap();
        let (status, body) = read_response(&stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok": true}"#);
        server.join().unwrap();
    }

    #[test]
    fn truncated_requests_are_framing_errors_not_empty_requests() {
        // A client that disconnects mid-headers must yield an error —
        // never a parsed request with an empty body. All of these are
        // disconnects (the client went away), which the server logs and
        // drops rather than answering.
        for partial in [
            &b""[..],
            b"POST /characterize HTTP/1.1\r\n",
            b"POST /characterize HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                read_request(&stream)
            });
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(partial).unwrap();
            stream.flush().unwrap();
            drop(stream);
            let err = server
                .join()
                .unwrap()
                .expect_err("truncated request parsed as complete");
            assert!(is_disconnect(&err), "not classified as disconnect: {err}");
        }
    }

    #[test]
    fn header_floods_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        for i in 0..(MAX_HEADER_LINES + 2) {
            stream
                .write_all(format!("X-Flood-{i}: y\r\n").as_bytes())
                .unwrap();
        }
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(is_too_large(&err), "oversized body not typed as 413: {err}");
    }

    #[test]
    fn overflowing_content_length_is_a_framing_error_not_a_413() {
        // A length that does not even fit in u64 is malformed input
        // (400), not an honest-but-oversized declaration (413). Either
        // way, no buffer is allocated.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(!is_too_large(&err), "overflow misclassified as 413");
        // Same for a negative length.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert!(!is_too_large(&err));
    }

    #[test]
    fn head_and_body_split_lets_routes_pick_their_limit() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(&stream);
            let head = read_head(&mut reader).unwrap();
            assert_eq!(head.method, "PUT");
            assert_eq!(head.path, "/object/abc");
            assert_eq!(head.content_length, 4);
            // A JSON-limit read of the same head would reject it…
            assert!(is_too_large(
                &read_body(&mut reader, head.content_length, 2).unwrap_err()
            ));
            // …while the object limit admits it (the reader is intact:
            // the rejection above never consumed a byte).
            assert_eq!(
                read_body(&mut reader, head.content_length, 8).unwrap(),
                b"BODY"
            );
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"PUT /object/abc HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY")
            .unwrap();
        stream.flush().unwrap();
        server.join().unwrap();
    }
}
