//! The daemon's HTTP surface: route body limits plus blocking framing
//! helpers over the shared sans-IO [`httpwire`] core.
//!
//! The protocol itself — incremental head parsing, keep-alive
//! semantics, response serialization, the before-allocation limit
//! discipline — lives in [`httpwire`], where the nonblocking reactor,
//! the blocking clients and the tests all drive the exact same parser.
//! This module keeps what is charserve *policy* rather than wire
//! mechanics: the per-route body caps ([`MAX_BODY_BYTES`] for JSON
//! endpoints, [`MAX_OBJECT_BYTES`] for object ingest) and a handful of
//! blocking convenience helpers the tests and tools use to speak the
//! protocol over plain [`std::net`] streams.
//!
//! The blocking readers here deliberately consume **one byte past
//! nothing**: they feed the sans-IO parser exactly the bytes a head
//! occupies, so the stream position after [`read_head`] is the first
//! body byte, and after [`read_response`] the first byte of the next
//! pipelined response — no buffered look-ahead is ever discarded.

use std::io::{self, Read, Write};
use std::net::TcpStream;

pub use httpwire::{
    is_disconnect, is_too_large, parse_request_head, parse_response_head, Parsed, Response,
    ResponseHead, MAX_HEADER_LINES, MAX_LINE_BYTES,
};

/// A parsed request line + headers, before any body byte is read. The
/// server routes on this to pick the body limit for [`read_body`].
pub type Head = httpwire::RequestHead;

/// Maximum accepted body length for JSON endpoints.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Maximum accepted body length for object ingest (`PUT /object/…`):
/// checksummed containers of captured GEMM streams run far past the
/// JSON limit at Full scale. Defined as the client-side fetch cap so
/// the two ends of the object protocol can never drift apart — a
/// daemon that stored objects larger than the fetch cap would force
/// permanent recomputes fleet-wide.
pub const MAX_OBJECT_BYTES: usize = charstore::remote::MAX_OBJECT_BYTES;

/// A parsed request head plus its body — the value route handlers
/// receive. Handlers never see a socket; the reactor (or a test)
/// assembles this from parsed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` / `POST` / `PUT` / ….
    pub method: String,
    /// Absolute path, e.g. `/characterize`.
    pub path: String,
    /// Raw body bytes (empty when there was none). JSON endpoints
    /// decode UTF-8 themselves; object endpoints take the bytes as-is.
    pub body: Vec<u8>,
}

impl Request {
    /// A body-less request — the common case in handler unit tests.
    #[must_use]
    pub fn new(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: Vec::new(),
        }
    }

    /// Attaches a body.
    #[must_use]
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }
}

/// The body limit for a routed request head: object ingest accepts
/// full container payloads, every JSON endpoint keeps the tight cap.
#[must_use]
pub fn body_limit(head: &Head) -> usize {
    if head.method == "PUT" && head.path.starts_with("/object/") {
        MAX_OBJECT_BYTES
    } else {
        MAX_BODY_BYTES
    }
}

/// Feeds `reader` one byte at a time into `parse` until it yields a
/// complete head. Byte-at-a-time keeps the reader positioned exactly at
/// the first post-head byte. Callers reading several responses off one
/// stream must NOT wrap it in a fresh `BufReader` per call — the
/// prefetched tail of the next response dies with the wrapper.
fn read_parsed<T>(
    reader: &mut impl Read,
    parse: impl Fn(&[u8]) -> io::Result<Parsed<T>>,
) -> io::Result<T> {
    let mut buf = Vec::new();
    loop {
        if let Parsed::Complete { head, .. } = parse(&buf)? {
            return Ok(head);
        }
        let mut byte = [0u8; 1];
        if reader.read(&mut byte)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-head",
            ));
        }
        buf.push(byte[0]);
    }
}

/// Reads a request head: request line plus headers, stopping before
/// the body. No buffer is sized from client input here.
///
/// # Errors
///
/// Returns an `InvalidData` error on any framing violation, or an
/// [`is_disconnect`] error if the client went away mid-head.
pub fn read_head(reader: &mut impl Read) -> io::Result<Head> {
    read_parsed(reader, httpwire::parse_request_head)
}

/// Reads exactly `declared` body bytes, rejecting a declaration over
/// `limit` **before the buffer is allocated** — the load-bearing OOM
/// defense: a hostile `Content-Length` can never size an allocation.
///
/// # Errors
///
/// An [`is_too_large`] error when `declared > limit` (the server
/// answers `413`), or the underlying I/O error on a short read.
pub fn read_body(reader: &mut impl Read, declared: u64, limit: usize) -> io::Result<Vec<u8>> {
    if declared > limit as u64 {
        return Err(httpwire::too_large(declared, limit));
    }
    let mut body = vec![0u8; declared as usize];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request from a server-side connection, with the JSON
/// body limit ([`MAX_BODY_BYTES`]). The daemon's reactor parses from
/// its own buffers instead; this is the test-side helper.
///
/// # Errors
///
/// Returns an `InvalidData` error on any framing violation (the server
/// answers those with `400`).
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    // Unbuffered on purpose: a `BufReader` created here would prefetch
    // bytes of the next pipelined request and lose them on drop.
    let mut reader = stream;
    let head = read_head(&mut reader)?;
    let body = read_body(&mut reader, head.content_length, MAX_BODY_BYTES)?;
    Ok(Request {
        method: head.method,
        path: head.path,
        body,
    })
}

/// Writes a response with an explicit content type and raw body bytes,
/// then flushes, answering `Connection: close` — the one-shot test and
/// tool path (the daemon's reactor serializes through
/// [`httpwire::Response`] with real keep-alive semantics instead).
///
/// When the writing thread is inside an [`obs::with_trace`] scope the
/// response carries an `X-Trace-Id` header, so a client that did not
/// send a trace of its own still learns the ID the daemon logged
/// under.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_response_bytes(
    stream: &mut TcpStream,
    status: u16,
    content_type: &'static str,
    body: &[u8],
) -> io::Result<()> {
    let trace = obs::current_trace().map(|t| t.to_string());
    let response = Response::bytes(status, content_type, body.to_vec());
    stream.write_all(&response.encode(false, trace.as_deref()))?;
    stream.flush()
}

/// Writes a JSON response and flushes.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response_bytes(stream, status, "application/json", body.as_bytes())
}

/// Writes one client request and flushes, offering keep-alive. Inside
/// an [`obs::with_trace`] scope the request carries an `X-Trace-Id`
/// header, which the daemon adopts — client-side spans and daemon-side
/// spans land in the same trace.
///
/// # Errors
///
/// Returns any I/O error from the stream.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    let trace = obs::current_trace().map(|t| t.to_string());
    let head = httpwire::encode_request_head(
        method,
        path,
        "application/json",
        body.len(),
        trace.as_deref(),
        true,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads a response head (status line + headers), stopping before the
/// body — for callers that need the parsed head (status, declared
/// length, keep-alive) rather than just `(status, body)`.
///
/// # Errors
///
/// Returns an `InvalidData` error on framing violations, or an
/// [`is_disconnect`] error if the server went away mid-head.
pub fn read_response_head(reader: &mut impl Read) -> io::Result<ResponseHead> {
    read_parsed(reader, httpwire::parse_response_head)
}

/// Reads one response from a client-side connection: `(status, body)`.
/// Reads exactly one response's bytes, so pipelined callers can invoke
/// it repeatedly on the same stream.
///
/// # Errors
///
/// Returns an `InvalidData` error on framing violations.
pub fn read_response(stream: &TcpStream) -> io::Result<(u16, String)> {
    // Unbuffered on purpose: see `read_request`.
    let mut reader = stream;
    let head: ResponseHead = read_parsed(&mut reader, httpwire::parse_response_head)?;
    let body = read_body(&mut reader, head.content_length, MAX_BODY_BYTES)?;
    String::from_utf8(body)
        .map(|body| (head.status, body))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::net::TcpListener;

    /// Round-trips one request/response pair over a real socket.
    #[test]
    fn request_and_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/characterize");
            assert_eq!(req.body, br#"{"scale": "micro"}"#);
            let mut stream = stream;
            write_response(&mut stream, 200, r#"{"ok": true}"#).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_request(
            &mut stream,
            "POST",
            "/characterize",
            r#"{"scale": "micro"}"#,
        )
        .unwrap();
        let (status, body) = read_response(&stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok": true}"#);
        server.join().unwrap();
    }

    #[test]
    fn truncated_requests_are_framing_errors_not_empty_requests() {
        // A client that disconnects mid-headers must yield an error —
        // never a parsed request with an empty body. All of these are
        // disconnects (the client went away), which the server logs and
        // drops rather than answering.
        for partial in [
            &b""[..],
            b"POST /characterize HTTP/1.1\r\n",
            b"POST /characterize HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                read_request(&stream)
            });
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(partial).unwrap();
            stream.flush().unwrap();
            drop(stream);
            let err = server
                .join()
                .unwrap()
                .expect_err("truncated request parsed as complete");
            assert!(is_disconnect(&err), "not classified as disconnect: {err}");
        }
    }

    #[test]
    fn header_floods_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
        for i in 0..(MAX_HEADER_LINES + 2) {
            stream
                .write_all(format!("X-Flood-{i}: y\r\n").as_bytes())
                .unwrap();
        }
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(is_too_large(&err), "oversized body not typed as 413: {err}");
    }

    #[test]
    fn overflowing_content_length_is_a_framing_error_not_a_413() {
        // A length that does not even fit in u64 is malformed input
        // (400), not an honest-but-oversized declaration (413). Either
        // way, no buffer is allocated.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(!is_too_large(&err), "overflow misclassified as 413");
        // Same for a negative length.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            read_request(&stream)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
            .unwrap();
        stream.flush().unwrap();
        let err = server.join().unwrap().unwrap_err();
        assert!(!is_too_large(&err));
    }

    #[test]
    fn head_and_body_split_lets_routes_pick_their_limit() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(&stream);
            let head = read_head(&mut reader).unwrap();
            assert_eq!(head.method, "PUT");
            assert_eq!(head.path, "/object/abc");
            assert_eq!(head.content_length, 4);
            assert_eq!(body_limit(&head), MAX_OBJECT_BYTES);
            // A JSON-limit read of the same head would reject it…
            assert!(is_too_large(
                &read_body(&mut reader, head.content_length, 2).unwrap_err()
            ));
            // …while the object limit admits it (the reader is intact:
            // the rejection above never consumed a byte).
            assert_eq!(
                read_body(&mut reader, head.content_length, 8).unwrap(),
                b"BODY"
            );
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"PUT /object/abc HTTP/1.1\r\nContent-Length: 4\r\n\r\nBODY")
            .unwrap();
        stream.flush().unwrap();
        server.join().unwrap();
    }

    /// Two pipelined responses on one stream read back in order, each
    /// call consuming exactly one response's bytes.
    #[test]
    fn read_response_consumes_exactly_one_pipelined_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut wire = Response::json(200, "first").encode(true, None);
            wire.extend_from_slice(&Response::json(404, "second").encode(false, None));
            stream.write_all(&wire).unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        assert_eq!(read_response(&stream).unwrap(), (200, "first".to_string()));
        assert_eq!(read_response(&stream).unwrap(), (404, "second".to_string()));
        server.join().unwrap();
    }
}
