//! Single-flight deduplication: N concurrent requests for one key run
//! the expensive computation once.
//!
//! The first requester of a key becomes the **leader** and owns the
//! computation; everyone who joins while the flight is open becomes a
//! **waiter** and shares the leader's result. Completion removes the
//! flight from the board *before* publishing the value, so a request
//! arriving after completion starts a fresh flight (whose answer then
//! comes from the store) instead of attaching to a finished one.
//!
//! The board is **callback-based**, not blocking: joining registers a
//! completion callback instead of handing back a condvar to park on.
//! That is what lets the nonblocking reactor suspend a connection on a
//! pending computation without pinning a thread — the callback fires on
//! whichever thread completes the flight (a pool worker), renders the
//! waiter's response, and wakes the reactor. A blocking caller is just
//! the degenerate case of a callback that signals a channel.

use charstore::Digest128;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A completion callback: receives the shared result plus `deduped` —
/// `false` for the flight's leader, `true` for every waiter.
type Callback<V> = Box<dyn FnOnce(&Arc<Result<V, String>>, bool) + Send>;

/// The role this requester got when joining a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Joined {
    /// First in: run the computation and [`FlightBoard::complete`] it.
    Leader,
    /// A computation is already in flight: the registered callback
    /// fires when the leader's computation completes.
    Waiter,
}

/// A board of in-flight computations keyed by artifact digest.
pub struct FlightBoard<V> {
    flights: Mutex<HashMap<Digest128, Vec<Callback<V>>>>,
}

impl<V> std::fmt::Debug for FlightBoard<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightBoard")
            .field("inflight", &self.inflight())
            .finish()
    }
}

impl<V> Default for FlightBoard<V> {
    fn default() -> Self {
        FlightBoard {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<V> FlightBoard<V> {
    /// An empty board.
    #[must_use]
    pub fn new() -> FlightBoard<V> {
        FlightBoard::default()
    }

    /// Joins the flight for `key`, creating it if absent, and registers
    /// `callback` to fire on completion. The returned role tells the
    /// caller whether it owns the computation.
    ///
    /// # Panics
    ///
    /// Panics if the board mutex is poisoned.
    #[must_use]
    pub fn join(
        &self,
        key: Digest128,
        callback: impl FnOnce(&Arc<Result<V, String>>, bool) + Send + 'static,
    ) -> Joined {
        let mut flights = self.flights.lock().expect("flight board poisoned");
        match flights.get_mut(&key) {
            Some(callbacks) => {
                callbacks.push(Box::new(callback));
                Joined::Waiter
            }
            None => {
                flights.insert(key, vec![Box::new(callback)]);
                Joined::Leader
            }
        }
    }

    /// Whether a computation for `key` is currently in flight. Used for
    /// admission: a request that would *join* an open flight costs
    /// nothing extra, while one that would *lead* a new computation is
    /// subject to the pending-work cap.
    ///
    /// # Panics
    ///
    /// Panics if the board mutex is poisoned.
    #[must_use]
    pub fn contains(&self, key: Digest128) -> bool {
        self.flights
            .lock()
            .expect("flight board poisoned")
            .contains_key(&key)
    }

    /// Number of open flights (the server's `inflight` gauge).
    ///
    /// # Panics
    ///
    /// Panics if the board mutex is poisoned.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.flights.lock().expect("flight board poisoned").len()
    }

    /// Completes `key`'s flight: removes it from the board, then fires
    /// every registered callback with the shared value — the leader's
    /// (registered first) with `deduped == false`, each waiter's with
    /// `true`. Callbacks run on the completing thread, outside the
    /// board lock, so a callback may re-join the same key.
    ///
    /// # Panics
    ///
    /// Panics if the board mutex is poisoned.
    pub fn complete(&self, key: Digest128, value: Result<V, String>) {
        let callbacks = self
            .flights
            .lock()
            .expect("flight board poisoned")
            .remove(&key)
            .unwrap_or_default();
        let value = Arc::new(value);
        for (i, callback) in callbacks.into_iter().enumerate() {
            callback(&value, i > 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    fn key(n: u8) -> Digest128 {
        charstore::digest::digest_bytes("singleflight-test", &[n])
    }

    #[test]
    fn one_leader_many_waiters_share_one_completion() {
        let board: FlightBoard<u64> = FlightBoard::new();
        let delivered = Arc::new(AtomicU64::new(0));
        let deduped_count = Arc::new(AtomicU64::new(0));
        let mut leaders = 0;
        for _ in 0..8 {
            let (delivered, deduped_count) = (Arc::clone(&delivered), Arc::clone(&deduped_count));
            let role = board.join(key(1), move |value, deduped| {
                assert_eq!(**value, Ok(42));
                delivered.fetch_add(1, Ordering::SeqCst);
                if deduped {
                    deduped_count.fetch_add(1, Ordering::SeqCst);
                }
            });
            if role == Joined::Leader {
                leaders += 1;
            }
        }
        assert_eq!(leaders, 1, "exactly one leader per key");
        assert_eq!(board.inflight(), 1);
        assert!(board.contains(key(1)));
        board.complete(key(1), Ok(42));
        assert_eq!(delivered.load(Ordering::SeqCst), 8);
        assert_eq!(
            deduped_count.load(Ordering::SeqCst),
            7,
            "every joiner but the leader is deduped"
        );
        assert_eq!(board.inflight(), 0);
    }

    #[test]
    fn distinct_keys_fly_independently_and_errors_fan_out() {
        let board: FlightBoard<u64> = FlightBoard::new();
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        assert_eq!(
            board.join(key(1), move |v, _| tx.send((1u8, (**v).clone())).unwrap()),
            Joined::Leader
        );
        assert_eq!(
            board.join(key(2), move |v, _| tx2.send((2u8, (**v).clone())).unwrap()),
            Joined::Leader
        );
        assert_eq!(board.inflight(), 2);
        board.complete(key(1), Ok(1));
        board.complete(key(2), Err("boom".into()));
        let mut got: Vec<_> = [rx.recv().unwrap(), rx.recv().unwrap()].into();
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got[0], (1, Ok(1)));
        assert_eq!(got[1], (2, Err("boom".to_string())));
        // A completed key starts a fresh flight.
        assert_eq!(board.join(key(1), |_, _| {}), Joined::Leader);
    }

    #[test]
    fn callbacks_run_cross_thread_like_the_pool_does() {
        let board: Arc<FlightBoard<u64>> = Arc::new(FlightBoard::new());
        let (tx, rx) = mpsc::channel();
        assert_eq!(
            board.join(key(3), move |v, deduped| {
                tx.send(((**v).clone(), deduped)).unwrap();
            }),
            Joined::Leader
        );
        let worker = {
            let board = Arc::clone(&board);
            std::thread::spawn(move || board.complete(key(3), Ok(7)))
        };
        assert_eq!(rx.recv().unwrap(), (Ok(7), false));
        worker.join().unwrap();
        assert_eq!(board.inflight(), 0);
    }
}
