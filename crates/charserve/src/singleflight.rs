//! Single-flight deduplication: N concurrent requests for one key run
//! the expensive computation once.
//!
//! The first requester of a key becomes the **leader** and owns the
//! computation; everyone who joins while the flight is open becomes a
//! **waiter** and blocks on the leader's result. Completion removes the
//! flight from the group *before* publishing the value, so a request
//! arriving after completion starts a fresh flight (whose answer then
//! comes from the store) instead of attaching to a finished one.

use charstore::Digest128;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-progress computation, shared between its leader and waiters.
#[derive(Debug)]
pub struct Flight<V> {
    slot: Mutex<Option<Arc<Result<V, String>>>>,
    ready: Condvar,
}

impl<V> Flight<V> {
    fn new() -> Flight<V> {
        Flight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the flight completes and returns its shared result.
    ///
    /// # Panics
    ///
    /// Panics if the flight's mutex is poisoned (a completer panicked
    /// while holding it — the completer only stores a value, so this is
    /// unreachable in practice).
    #[must_use]
    pub fn wait(&self) -> Arc<Result<V, String>> {
        let mut slot = self.slot.lock().expect("flight poisoned");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("flight poisoned");
        }
        Arc::clone(slot.as_ref().expect("checked above"))
    }

    fn fulfill(&self, value: Result<V, String>) {
        let mut slot = self.slot.lock().expect("flight poisoned");
        *slot = Some(Arc::new(value));
        self.ready.notify_all();
    }
}

/// The role this requester got when joining a key.
#[derive(Debug)]
pub enum Joined<V> {
    /// First in: run the computation and [`SingleFlight::complete`] it.
    Leader(Arc<Flight<V>>),
    /// A computation is already in flight: just [`Flight::wait`].
    Waiter(Arc<Flight<V>>),
}

/// A group of in-flight computations keyed by artifact digest.
#[derive(Debug)]
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<Digest128, Arc<Flight<V>>>>,
}

impl<V> Default for SingleFlight<V> {
    fn default() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }
}

impl<V> SingleFlight<V> {
    /// An empty group.
    #[must_use]
    pub fn new() -> SingleFlight<V> {
        SingleFlight::default()
    }

    /// Joins the flight for `key`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the group mutex is poisoned.
    #[must_use]
    pub fn join(&self, key: Digest128) -> Joined<V> {
        let mut flights = self.flights.lock().expect("flight group poisoned");
        if let Some(flight) = flights.get(&key) {
            return Joined::Waiter(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key, Arc::clone(&flight));
        Joined::Leader(flight)
    }

    /// Number of open flights (the server's `inflight` gauge).
    ///
    /// # Panics
    ///
    /// Panics if the group mutex is poisoned.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.flights.lock().expect("flight group poisoned").len()
    }

    /// Completes `key`'s flight: removes it from the group, then
    /// publishes `value` to the leader and every waiter.
    ///
    /// # Panics
    ///
    /// Panics if the group mutex is poisoned.
    pub fn complete(&self, key: Digest128, flight: &Flight<V>, value: Result<V, String>) {
        self.flights
            .lock()
            .expect("flight group poisoned")
            .remove(&key);
        flight.fulfill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn key(n: u8) -> Digest128 {
        charstore::digest::digest_bytes("singleflight-test", &[n])
    }

    #[test]
    fn one_leader_many_waiters_share_one_computation() {
        let group: SingleFlight<u64> = SingleFlight::new();
        let computed = AtomicU64::new(0);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| match group.join(key(1)) {
                    Joined::Leader(flight) => {
                        leaders.fetch_add(1, Ordering::SeqCst);
                        // Linger so the other threads join as waiters.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        computed.fetch_add(1, Ordering::SeqCst);
                        group.complete(key(1), &flight, Ok(42));
                        assert_eq!(*flight.wait(), Ok(42));
                    }
                    Joined::Waiter(flight) => {
                        assert_eq!(*flight.wait(), Ok(42));
                    }
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "computation ran twice");
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "two leaders for one key");
        assert_eq!(group.inflight(), 0);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let group: SingleFlight<u64> = SingleFlight::new();
        let Joined::Leader(a) = group.join(key(1)) else {
            panic!("fresh key must lead")
        };
        let Joined::Leader(b) = group.join(key(2)) else {
            panic!("distinct fresh key must lead")
        };
        assert_eq!(group.inflight(), 2);
        group.complete(key(1), &a, Ok(1));
        group.complete(key(2), &b, Err("boom".into()));
        assert_eq!(*a.wait(), Ok(1));
        assert_eq!(*b.wait(), Err("boom".to_string()));
        // A completed key starts a fresh flight.
        assert!(matches!(group.join(key(1)), Joined::Leader(_)));
    }
}
