//! The nonblocking event loop under the daemon: epoll readiness,
//! per-connection state machines, keep-alive + pipelining, and bounded
//! admission with explicit backpressure.
//!
//! The pre-reactor daemon spent one OS thread per connection, parked in
//! blocking reads — a slow or idle client pinned a thread, and overload
//! collapsed into the kernel accept queue. Here **one** thread owns
//! every connection:
//!
//! ```text
//!            epoll (level-triggered, crates/compat/polling)
//!   accept ──► Conn{rbuf} ──parse──► Router handler ──► Conn{wbuf} ──► write
//!                 │                     │ Reply::Later                ▲
//!                 │                     ▼                             │
//!                 │               FlightBoard ──► WorkerPool ──► completion
//!                 │                                queue + eventfd waker
//!                 └── deadlines: header read / keep-alive idle
//! ```
//!
//! Requests are parsed **from buffers** ([`httpwire`]'s sans-IO
//! parser), so keep-alive and pipelining fall out for free: whatever
//! bytes are buffered past one request are simply the next request.
//! Responses append to the connection's write buffer in arrival order —
//! a connection suspended on a pending computation ([`Reply::Later`])
//! stops consuming its buffer until the completion lands, which is
//! exactly what keeps pipelined responses ordered.
//!
//! CPU-bound work never runs here. A handler that needs the worker
//! pool returns [`Reply::Later`] after wiring its completion callback
//! to the [`Deferred`] it was given; the callback (on the pool thread)
//! pushes the rendered response onto the completion queue and rings the
//! eventfd [`polling::Waker`], and the reactor resumes the parked
//! connection. A connection that died while parked is simply absent
//! from the table when its completion arrives — the delivery is
//! discarded, the flight's other waiters are unaffected.
//!
//! Admission is bounded at the front door: beyond
//! [`ReactorConfig::max_connections`] live connections, new arrivals
//! get `429 Too Many Requests` + `Retry-After` and are closed (and far
//! beyond it, dropped without ceremony) — measured backpressure instead
//! of accept-queue collapse.

use crate::http::{Head, Request};
use crate::router::{error_body, Deferred, Reply};
use httpwire::{Parsed, Response};
use polling::{Interest, Poller, Waker};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token of the listening socket.
const LISTENER: u64 = 0;
/// Token of the cross-thread waker eventfd.
const WAKER: u64 = 1;
/// First connection token (monotonic, never reused — a completion for
/// a dead connection can never hit a recycled slot).
const FIRST_CONN: u64 = 2;

/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// Cap on buffered not-yet-parsed pipeline bytes while a connection is
/// suspended on a pending computation. Past it the reactor stops
/// reading (drops read interest) until the connection resumes — TCP
/// backpressure does the rest.
const PIPELINE_BUF_CAP: usize = 64 * 1024;

/// `Retry-After` seconds advertised on backpressure rejections.
pub const RETRY_AFTER_SECS: u32 = 1;

/// Admission and timeout knobs of one reactor instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Live-connection cap; arrivals beyond it answer `429` + close.
    pub max_connections: usize,
    /// Deadline for a partially-received request (head or body) to
    /// finish arriving. Expiry answers `408` and closes — the slowloris
    /// bound, replacing the old hardcoded 30 s blocking read timeout.
    pub header_timeout: Duration,
    /// How long an idle keep-alive connection may sit between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 256,
            header_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// What the reactor asks of the layer above it: route a parsed request
/// to a response (or a deferred one), bound request bodies, and expose
/// the shutdown flag. `charserve::server` implements this over its
/// typed router; reactor tests implement it in a dozen lines.
pub trait Service {
    /// Body limit for a routed head (checked before any body buffering).
    fn body_limit(&self, head: &Head) -> usize;
    /// Handles one complete request. Runs on the reactor thread inside
    /// the request's trace scope — expensive work must go through
    /// [`Reply::Later`] and a worker pool, not block here.
    fn handle(&self, request: &Request, deferred: &Deferred) -> Reply;
    /// Polled once per loop iteration; `true` starts the drain: stop
    /// accepting, flush and close idle connections, let suspended
    /// computations finish and deliver, then return from `run`.
    fn shutdown_requested(&self) -> bool;
    /// A connection was rejected at admission (`429` + close).
    fn on_rejected(&self) {}
    /// A routed request was fully answered (response queued for write).
    fn on_request_done(&self, elapsed: Duration) {
        let _ = elapsed;
    }
}

/// Connection lifecycle.
#[derive(Debug)]
enum State {
    /// Parsing requests from `rbuf` as bytes arrive.
    Ready,
    /// Suspended on a pending computation; pipelined successors stay
    /// buffered until the completion lands.
    Waiting {
        started: Instant,
        keep_alive: bool,
        trace: obs::TraceId,
    },
    /// Admission-rejected: flush the queued `429` and close.
    Rejected,
}

/// Which clock a connection deadline runs on. The kind matters when
/// re-arming: a quiescent connection that starts sending a request
/// must move from the long idle clock to the short header clock, but
/// bytes trickling in must never reset a running header clock (that
/// reset is exactly what a slowloris client exploits).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Clock {
    /// Slowloris guard: a partial request is buffered.
    Header,
    /// Keep-alive guard: quiescent between requests.
    Idle,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    peer: String,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    state: State,
    deadline: Option<(Clock, Instant)>,
    /// The peer's write half is gone (clean EOF); drain what is
    /// processable, answer it, then close.
    read_closed: bool,
    close_after_flush: bool,
    interest: Interest,
}

impl Conn {
    fn enqueue(&mut self, bytes: Vec<u8>) {
        if self.wbuf.is_empty() {
            self.wbuf = bytes;
            self.wpos = 0;
        } else {
            self.wbuf.extend_from_slice(&bytes);
        }
    }

    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len()
    }
}

enum Filled {
    /// Read everything available; the peer is still there.
    More,
    /// Clean EOF: the peer closed its write half.
    Eof,
    /// The connection errored; close it.
    Dead,
}

/// The event loop. [`Reactor::run`] consumes it and blocks the calling
/// thread until the service requests shutdown and the drain completes.
pub struct Reactor<S> {
    listener: TcpListener,
    service: Arc<S>,
    config: ReactorConfig,
    poller: Poller,
    waker: Arc<Waker>,
    completions: Arc<Mutex<Vec<(u64, Response)>>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
}

impl<S> std::fmt::Debug for Reactor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("connections", &self.conns.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<S: Service> Reactor<S> {
    /// Wires the epoll instance, registers the listener and the waker.
    ///
    /// # Errors
    ///
    /// Returns any error from epoll setup or from making the listener
    /// nonblocking.
    pub fn new(listener: TcpListener, service: Arc<S>, config: ReactorConfig) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(&poller, WAKER)?);
        Ok(Reactor {
            listener,
            service,
            config,
            poller,
            waker,
            completions: Arc::new(Mutex::new(Vec::new())),
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            draining: false,
        })
    }

    /// Runs the event loop to completion (shutdown + drain).
    ///
    /// # Errors
    ///
    /// Returns only `epoll_wait` errors; per-connection errors close
    /// that connection and never stop the loop.
    pub fn run(mut self) -> io::Result<()> {
        let mut events = Vec::new();
        loop {
            self.poller.wait(&mut events, self.next_timeout())?;
            for event in events.clone() {
                match event.token {
                    LISTENER => self.accept_ready(),
                    WAKER => self.waker.drain(),
                    token => {
                        let Some(mut conn) = self.conns.remove(&token) else {
                            continue;
                        };
                        if self.drive(&mut conn, event.readable) {
                            self.conns.insert(token, conn);
                        } else {
                            self.close(conn);
                        }
                    }
                }
            }
            self.apply_completions();
            self.expire_deadlines();
            if self.service.shutdown_requested() {
                self.begin_drain();
            }
            if self.draining && self.conns.is_empty() {
                return Ok(());
            }
        }
    }

    /// Next `epoll_wait` timeout: the nearest connection deadline, or
    /// block indefinitely (completions arrive via the waker).
    fn next_timeout(&self) -> Option<Duration> {
        let next = self
            .conns
            .values()
            .filter_map(|c| c.deadline.map(|(_, at)| at))
            .min()?;
        Some(next.saturating_duration_since(Instant::now()))
    }

    fn accept_ready(&mut self) {
        loop {
            let (stream, peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if self.draining {
                continue; // dropped: the daemon is going away
            }
            let over_cap = self.conns.len() >= self.config.max_connections;
            // Far past the cap even polite rejection stops: each 429
            // still holds an fd until flushed, and a peer that ignores
            // them does not deserve one.
            if over_cap && self.conns.len() >= self.config.max_connections * 2 + 16 {
                continue;
            }
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            let mut conn = Conn {
                stream,
                token,
                peer: peer.to_string(),
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                wpos: 0,
                state: State::Ready,
                deadline: None, // finish() arms the idle clock

                read_closed: false,
                close_after_flush: false,
                interest: Interest::READABLE,
            };
            if over_cap {
                self.service.on_rejected();
                conn.state = State::Rejected;
                conn.deadline = Some((Clock::Header, Instant::now() + self.config.header_timeout));
                conn.close_after_flush = true;
                conn.interest = Interest::WRITABLE;
                conn.enqueue(
                    Response::too_many_requests(
                        RETRY_AFTER_SECS,
                        error_body("server is at its connection limit"),
                    )
                    .encode(false, None),
                );
            }
            if self
                .poller
                .add(conn.stream.as_raw_fd(), token, conn.interest)
                .is_err()
            {
                continue; // conn drops closed
            }
            // A fresh socket is writable immediately: flush the 429 (or
            // just settle interest) without waiting for an event.
            if self.finish(&mut conn) {
                self.conns.insert(token, conn);
            } else {
                self.close(conn);
            }
        }
    }

    /// Reads, parses, dispatches and flushes one connection after a
    /// readiness event. Returns `false` when the connection is done.
    fn drive(&mut self, conn: &mut Conn, readable: bool) -> bool {
        if readable && self.may_read(conn) {
            match self.fill(conn) {
                Filled::More => {}
                Filled::Eof => conn.read_closed = true,
                Filled::Dead => return false,
            }
        }
        self.finish(conn)
    }

    fn may_read(&self, conn: &Conn) -> bool {
        !conn.read_closed
            && !conn.close_after_flush
            && match conn.state {
                State::Ready => true,
                State::Waiting { .. } => conn.rbuf.len() < PIPELINE_BUF_CAP,
                State::Rejected => false,
            }
    }

    /// Drains the socket into `rbuf` until `WouldBlock` (or the
    /// pipeline cap while suspended).
    fn fill(&self, conn: &mut Conn) -> Filled {
        loop {
            if matches!(conn.state, State::Waiting { .. }) && conn.rbuf.len() >= PIPELINE_BUF_CAP {
                return Filled::More;
            }
            let start = conn.rbuf.len();
            conn.rbuf.resize(start + READ_CHUNK, 0);
            match conn.stream.read(&mut conn.rbuf[start..]) {
                Ok(0) => {
                    conn.rbuf.truncate(start);
                    return Filled::Eof;
                }
                Ok(n) => conn.rbuf.truncate(start + n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.rbuf.truncate(start);
                    return Filled::More;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    conn.rbuf.truncate(start);
                }
                Err(_) => {
                    conn.rbuf.truncate(start);
                    return Filled::Dead;
                }
            }
        }
    }

    /// Parses and dispatches every complete buffered request, stopping
    /// at a partial request, a suspension, or a to-be-closed state.
    fn pump(&mut self, conn: &mut Conn) {
        loop {
            if !matches!(conn.state, State::Ready) || conn.close_after_flush {
                return;
            }
            let (head, consumed) = match httpwire::parse_request_head(&conn.rbuf) {
                Err(e) => {
                    conn.enqueue(
                        Response::json(400, error_body(&e.to_string())).encode(false, None),
                    );
                    conn.close_after_flush = true;
                    conn.rbuf.clear();
                    return;
                }
                Ok(Parsed::NeedMore) => {
                    // Partial head: start the slowloris clock, replacing
                    // any idle clock — but never reset a running one.
                    if !conn.rbuf.is_empty() && !matches!(conn.deadline, Some((Clock::Header, _))) {
                        conn.deadline =
                            Some((Clock::Header, Instant::now() + self.config.header_timeout));
                    }
                    return;
                }
                Ok(Parsed::Complete { head, consumed }) => (head, consumed),
            };
            let limit = self.service.body_limit(&head);
            if head.content_length > limit as u64 {
                let msg = format!(
                    "declared body of {} bytes exceeds the {limit}-byte limit",
                    head.content_length
                );
                conn.enqueue(Response::json(413, error_body(&msg)).encode(false, None));
                conn.close_after_flush = true;
                conn.rbuf.clear();
                return;
            }
            let total = consumed + head.content_length as usize;
            if conn.rbuf.len() < total {
                // Head parsed, body still arriving: same clock rules.
                if !matches!(conn.deadline, Some((Clock::Header, _))) {
                    conn.deadline =
                        Some((Clock::Header, Instant::now() + self.config.header_timeout));
                }
                return;
            }
            let body = conn.rbuf[consumed..total].to_vec();
            conn.rbuf.drain(..total);
            conn.deadline = None;
            self.dispatch(conn, &head, body);
        }
    }

    /// Routes one complete request under its (adopted or minted) trace.
    fn dispatch(&mut self, conn: &mut Conn, head: &Head, body: Vec<u8>) {
        let request = Request {
            method: head.method.clone(),
            path: head.path.clone(),
            body,
        };
        let trace = head
            .trace_id
            .as_deref()
            .and_then(obs::TraceId::parse)
            .unwrap_or_else(obs::TraceId::generate);
        let started = Instant::now();
        let deferred = self.deferred_for(conn.token);
        let reply = obs::with_trace(trace, || {
            let mut span = obs::span("http_request");
            span.field("method", &request.method);
            span.field("path", &request.path);
            span.field("peer", &conn.peer);
            self.service.handle(&request, &deferred)
        });
        match reply {
            Reply::Now(response) => {
                conn.enqueue(response.encode(head.keep_alive, Some(&trace.to_string())));
                self.service.on_request_done(started.elapsed());
                if !head.keep_alive {
                    conn.close_after_flush = true;
                    conn.rbuf.clear();
                }
            }
            Reply::Later => {
                conn.state = State::Waiting {
                    started,
                    keep_alive: head.keep_alive,
                    trace,
                };
            }
        }
    }

    /// A delivery handle bound to `token`: the completion callback (on
    /// a pool thread) queues the response and rings the eventfd.
    fn deferred_for(&self, token: u64) -> Deferred {
        let completions = Arc::clone(&self.completions);
        let waker = Arc::clone(&self.waker);
        Deferred::new(move |response| {
            completions
                .lock()
                .expect("completion queue poisoned")
                .push((token, response));
            waker.wake();
        })
    }

    /// Resumes connections whose deferred responses have landed. A
    /// token no longer in the table is a connection that died while
    /// waiting — its delivery is discarded.
    fn apply_completions(&mut self) {
        let pending: Vec<(u64, Response)> = {
            let mut queue = self.completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        for (token, response) in pending {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            if let State::Waiting {
                started,
                keep_alive,
                trace,
            } = conn.state
            {
                conn.state = State::Ready;
                conn.enqueue(response.encode(keep_alive, Some(&trace.to_string())));
                self.service.on_request_done(started.elapsed());
                if keep_alive {
                    // Back to parsing: pipelined successors may already
                    // be buffered. The idle deadline re-arms in finish.
                    conn.deadline = None;
                } else {
                    conn.close_after_flush = true;
                    conn.rbuf.clear();
                }
            }
            if self.finish(&mut conn) {
                self.conns.insert(token, conn);
            } else {
                self.close(conn);
            }
        }
    }

    /// Pump + flush + re-arm: the common tail of every wakeup. Returns
    /// `false` when the connection should be closed.
    fn finish(&mut self, conn: &mut Conn) -> bool {
        self.pump(conn);
        if conn.read_closed && matches!(conn.state, State::Ready) {
            // Clean EOF and nothing suspended: everything processable
            // was answered; whatever partial tail remains can never
            // complete. Flush and go.
            conn.close_after_flush = true;
        }
        if !self.write_out(conn) {
            return false;
        }
        if conn.flushed() && conn.close_after_flush {
            return false;
        }
        // Idle keep-alive deadline: armed only when truly quiescent.
        if matches!(conn.state, State::Ready) && conn.rbuf.is_empty() && conn.flushed() {
            conn.deadline = Some((Clock::Idle, Instant::now() + self.config.idle_timeout));
        }
        let want = Interest {
            readable: self.may_read(conn),
            writable: !conn.flushed(),
        };
        if want != conn.interest {
            conn.interest = want;
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), conn.token, want)
                .is_err()
            {
                return false;
            }
        }
        true
    }

    /// Writes as much of `wbuf` as the socket accepts right now.
    fn write_out(&self, conn: &mut Conn) -> bool {
        while !conn.flushed() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return false,
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if conn.flushed() {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        true
    }

    /// Closes expired connections: `408` for a half-received request
    /// (the slowloris case), silent close for an idle keep-alive.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|(_, at)| at <= now))
            .map(|(t, _)| *t)
            .collect();
        for token in expired {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            conn.deadline = None;
            let mid_request = matches!(conn.state, State::Ready) && !conn.rbuf.is_empty();
            if mid_request {
                obs::info!(
                    "charserve",
                    "client {} timed out mid-request ({} bytes buffered)",
                    conn.peer,
                    conn.rbuf.len()
                );
                conn.enqueue(
                    Response::json(408, error_body("timed out waiting for the full request"))
                        .encode(false, None),
                );
                conn.rbuf.clear();
            }
            conn.close_after_flush = true;
            if self.finish(&mut conn) {
                self.conns.insert(token, conn);
            } else {
                self.close(conn);
            }
        }
    }

    /// Starts (idempotently) the shutdown drain: stop accepting, close
    /// everything idle, keep suspended connections until their
    /// computations deliver.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        let _ = self.poller.delete(self.listener.as_raw_fd());
        let waiting = self
            .conns
            .values()
            .filter(|c| matches!(c.state, State::Waiting { .. }))
            .count();
        obs::info!(
            "charserve",
            "shutdown: draining {} connections ({} suspended on computations)",
            self.conns.len(),
            waiting
        );
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue;
            };
            if !matches!(conn.state, State::Waiting { .. }) {
                conn.close_after_flush = true;
                conn.rbuf.clear();
            }
            if self.finish(&mut conn) {
                self.conns.insert(token, conn);
            } else {
                self.close(conn);
            }
        }
    }

    fn close(&self, conn: Conn) {
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        // conn.stream drops here, closing the fd.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use std::io::BufReader;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// A toy service: `GET /echo` answers inline, `POST /slow` answers
    /// from a background thread after a delay (standing in for the
    /// worker pool), `POST /stop` requests shutdown.
    struct Toy {
        stop: AtomicBool,
        rejected: AtomicU64,
        done: AtomicU64,
    }

    impl Toy {
        fn new() -> Toy {
            Toy {
                stop: AtomicBool::new(false),
                rejected: AtomicU64::new(0),
                done: AtomicU64::new(0),
            }
        }
    }

    impl Service for Toy {
        fn body_limit(&self, _head: &Head) -> usize {
            1024
        }
        fn handle(&self, request: &Request, deferred: &Deferred) -> Reply {
            match (request.method.as_str(), request.path.as_str()) {
                ("GET", "/echo") => Reply::Now(Response::json(200, "echo")),
                ("POST", "/slow") => {
                    let deferred = deferred.clone();
                    let delay = String::from_utf8_lossy(&request.body)
                        .trim()
                        .parse::<u64>()
                        .unwrap_or(50);
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(delay));
                        deferred.deliver(Response::json(200, "slow"));
                    });
                    Reply::Later
                }
                ("POST", "/stop") => {
                    self.stop.store(true, Ordering::Release);
                    Reply::Now(Response::json(200, "bye"))
                }
                _ => Reply::Now(Response::json(404, "nope")),
            }
        }
        fn shutdown_requested(&self) -> bool {
            self.stop.load(Ordering::Acquire)
        }
        fn on_rejected(&self) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        fn on_request_done(&self, _elapsed: Duration) {
            self.done.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn boot(config: ReactorConfig) -> (String, Arc<Toy>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let toy = Arc::new(Toy::new());
        let service = Arc::clone(&toy);
        let handle = std::thread::spawn(move || {
            Reactor::new(listener, service, config)
                .unwrap()
                .run()
                .unwrap();
        });
        (addr, toy, handle)
    }

    fn stop(addr: &str, handle: std::thread::JoinHandle<()>) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /stop HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn keep_alive_pipelining_preserves_response_order() {
        let (addr, toy, handle) = boot(ReactorConfig::default());
        let mut s = TcpStream::connect(&addr).unwrap();
        // Three pipelined requests in one write: a slow one FIRST, then
        // two fast ones. Responses must come back in request order.
        s.write_all(
            b"POST /slow HTTP/1.1\r\nContent-Length: 3\r\n\r\n100\
              GET /echo HTTP/1.1\r\n\r\n\
              GET /missing HTTP/1.1\r\n\r\n",
        )
        .unwrap();
        s.flush().unwrap();
        let reader_stream = s.try_clone().unwrap();
        let mut reader = BufReader::new(&reader_stream);
        let mut bodies = Vec::new();
        for _ in 0..3 {
            let head = http::read_response_head(&mut reader).unwrap();
            let body = http::read_body(&mut reader, head.content_length, 1024).unwrap();
            bodies.push((head.status, String::from_utf8(body).unwrap()));
        }
        assert_eq!(
            bodies,
            vec![
                (200, "slow".to_string()),
                (200, "echo".to_string()),
                (404, "nope".to_string()),
            ],
            "pipelined responses out of order"
        );
        assert_eq!(toy.done.load(Ordering::Relaxed), 3);
        stop(&addr, handle);
    }

    #[test]
    fn slowloris_trickles_do_not_block_other_clients() {
        let (addr, _toy, handle) = boot(ReactorConfig::default());
        // Eight connections that sent half a request line and stalled.
        let stalled: Vec<TcpStream> = (0..8)
            .map(|_| {
                let mut s = TcpStream::connect(&addr).unwrap();
                s.write_all(b"GET /ech").unwrap();
                s.flush().unwrap();
                s
            })
            .collect();
        // A well-behaved client gets served promptly regardless.
        let started = Instant::now();
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /echo HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, body) = http::read_response(&s).unwrap();
        assert_eq!((status, body.as_str()), (200, "echo"));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stalled connections delayed a live client by {:?}",
            started.elapsed()
        );
        drop(stalled);
        stop(&addr, handle);
    }

    #[test]
    fn half_received_requests_time_out_with_408() {
        let (addr, _toy, handle) = boot(ReactorConfig {
            header_timeout: Duration::from_millis(150),
            ..ReactorConfig::default()
        });
        let started = Instant::now();
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /echo HTTP/1.1\r\nX-Part").unwrap();
        s.flush().unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 408);
        // The partial request must expire on the short header clock —
        // if it sat out the 60 s idle clock instead, the deadline was
        // armed on the wrong clock.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "408 took {:?}: expired on the idle clock, not the header clock",
            started.elapsed()
        );
        stop(&addr, handle);
    }

    #[test]
    fn idle_keep_alive_connections_are_closed_quietly() {
        let (addr, _toy, handle) = boot(ReactorConfig {
            idle_timeout: Duration::from_millis(150),
            ..ReactorConfig::default()
        });
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /echo HTTP/1.1\r\n\r\n").unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 200);
        // Sit idle past the deadline: the server closes (clean EOF).
        let mut probe = [0u8; 1];
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        assert_eq!(s.read(&mut probe).unwrap(), 0, "expected server close");
        stop(&addr, handle);
    }

    #[test]
    fn admission_rejects_beyond_max_connections_while_serving_the_admitted() {
        let (addr, toy, handle) = boot(ReactorConfig {
            max_connections: 2,
            ..ReactorConfig::default()
        });
        // Two admitted keep-alive connections hold the slots.
        let mut held: Vec<TcpStream> = (0..2)
            .map(|_| {
                let mut s = TcpStream::connect(&addr).unwrap();
                s.write_all(b"GET /echo HTTP/1.1\r\n\r\n").unwrap();
                let (status, _) = http::read_response(&s).unwrap();
                assert_eq!(status, 200);
                s
            })
            .collect();
        // The third arrival is told to back off, with Retry-After.
        let over = TcpStream::connect(&addr).unwrap();
        let reader = over.try_clone().unwrap();
        let mut r = BufReader::new(&reader);
        let head = http::read_response_head(&mut r).unwrap();
        assert_eq!(head.status, 429);
        assert!(!head.keep_alive, "rejections must close");
        assert_eq!(toy.rejected.load(Ordering::Relaxed), 1);
        // The admitted connections still work.
        let s = &mut held[0];
        s.write_all(b"GET /echo HTTP/1.1\r\n\r\n").unwrap();
        let (status, _) = http::read_response(s).unwrap();
        assert_eq!(status, 200);
        drop(held);
        drop(over);
        stop(&addr, handle);
    }

    #[test]
    fn disconnect_while_suspended_discards_the_completion() {
        let (addr, toy, handle) = boot(ReactorConfig::default());
        // Start a slow request, then vanish before the answer exists.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"POST /slow HTTP/1.1\r\nContent-Length: 3\r\n\r\n200")
            .unwrap();
        s.flush().unwrap();
        drop(s);
        std::thread::sleep(Duration::from_millis(400));
        // The reactor survived the orphaned delivery and still serves.
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(b"GET /echo HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let (status, _) = http::read_response(&s).unwrap();
        assert_eq!(status, 200);
        // The orphaned request still "completed" (latency observed at
        // delivery), plus the live one: exactly 2.
        assert_eq!(toy.done.load(Ordering::Relaxed), 2);
        stop(&addr, handle);
    }
}
