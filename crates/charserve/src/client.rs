//! A small blocking client for the daemon — the engine behind
//! `charstore request`, the integration tests and the CI smoke job.
//!
//! Built on the shared [`httpwire::HttpClient`], so consecutive calls
//! reuse one keep-alive connection instead of dialing per request —
//! the same client core [`charstore::RemoteTier`] uses for the object
//! protocol.

use crate::http;
use httpwire::{ClientConfig, HttpClient, RequestSpec};
use std::time::Duration;

/// Default read timeout: characterizations at Mini/Full scale take
/// minutes, so the client waits generously rather than aborting a
/// computation the server will finish.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(3600);

/// A blocking keep-alive client bound to one daemon address. Clones
/// share the underlying connection pool.
#[derive(Debug, Clone)]
pub struct Client {
    http: HttpClient,
}

impl Client {
    /// A client for `addr` (`host:port`) with the default timeout.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            http: HttpClient::new(
                &addr.into(),
                ClientConfig {
                    io_timeout: DEFAULT_TIMEOUT,
                    ..ClientConfig::default()
                },
            ),
        }
    }

    /// Overrides the read timeout (tests use short ones). Existing
    /// pooled connections are dropped; the next request re-dials.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Client {
        Client {
            http: HttpClient::new(
                self.http.addr(),
                ClientConfig {
                    io_timeout: timeout,
                    ..ClientConfig::default()
                },
            ),
        }
    }

    /// One request/response round trip: `(status, body)`. Inside an
    /// [`obs::with_trace`] scope the request carries an `X-Trace-Id`
    /// header, which the daemon adopts — client-side spans and
    /// daemon-side spans land in the same trace.
    ///
    /// # Errors
    ///
    /// Returns a description on connect, I/O or framing failure.
    pub fn roundtrip(&self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let trace = obs::current_trace().map(|t| t.to_string());
        let response = self
            .http
            .send(&RequestSpec {
                method,
                path,
                content_type: "application/json",
                body: body.as_bytes(),
                trace: trace.as_deref(),
                response_limit: http::MAX_BODY_BYTES,
                keep_alive: true,
            })
            .map_err(|e| format!("cannot reach charserve at {}: {e}", self.http.addr()))?;
        String::from_utf8(response.body)
            .map(|body| (response.status, body))
            .map_err(|_| format!("{path} answered a non-UTF-8 body"))
    }

    fn expect_ok(&self, method: &str, path: &str, body: &str) -> Result<String, String> {
        match self.roundtrip(method, path, body)? {
            (200, body) => Ok(body),
            (status, body) => Err(format!("{path} answered {status}: {}", body.trim())),
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn healthz(&self) -> Result<String, String> {
        self.expect_ok("GET", "/healthz", "")
    }

    /// `GET /stats`.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn stats(&self) -> Result<String, String> {
        self.expect_ok("GET", "/stats", "")
    }

    /// `POST /characterize` with a raw JSON body (empty string for the
    /// server defaults).
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn characterize(&self, body: &str) -> Result<String, String> {
        self.expect_ok("POST", "/characterize", body)
    }

    /// `GET /metrics` — the daemon's process-wide metrics registry in
    /// Prometheus text exposition format.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn metrics(&self) -> Result<String, String> {
        self.expect_ok("GET", "/metrics", "")
    }

    /// `GET /trace` — the daemon's recent spans as chrome://tracing
    /// JSON (load the dump via `about:tracing` or Perfetto).
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn trace_dump(&self) -> Result<String, String> {
        self.expect_ok("GET", "/trace", "")
    }

    /// `POST /shutdown`.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn shutdown(&self) -> Result<String, String> {
        self.expect_ok("POST", "/shutdown", "")
    }
}
