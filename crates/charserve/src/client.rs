//! A small blocking client for the daemon — the engine behind
//! `charstore request`, the integration tests and the CI smoke job.

use crate::http;
use std::net::TcpStream;
use std::time::Duration;

/// Default read timeout: characterizations at Mini/Full scale take
/// minutes, so the client waits generously rather than aborting a
/// computation the server will finish.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(3600);

/// A blocking client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with the default timeout.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: DEFAULT_TIMEOUT,
        }
    }

    /// Overrides the read timeout (tests use short ones).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// One request/response round trip: `(status, body)`.
    ///
    /// # Errors
    ///
    /// Returns a description on connect, I/O or framing failure.
    pub fn roundtrip(&self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to charserve at {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        http::write_request(&mut stream, method, path, body).map_err(|e| e.to_string())?;
        http::read_response(&stream).map_err(|e| e.to_string())
    }

    fn expect_ok(&self, method: &str, path: &str, body: &str) -> Result<String, String> {
        match self.roundtrip(method, path, body)? {
            (200, body) => Ok(body),
            (status, body) => Err(format!("{path} answered {status}: {}", body.trim())),
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn healthz(&self) -> Result<String, String> {
        self.expect_ok("GET", "/healthz", "")
    }

    /// `GET /stats`.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn stats(&self) -> Result<String, String> {
        self.expect_ok("GET", "/stats", "")
    }

    /// `POST /characterize` with a raw JSON body (empty string for the
    /// server defaults).
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn characterize(&self, body: &str) -> Result<String, String> {
        self.expect_ok("POST", "/characterize", body)
    }

    /// `GET /metrics` — the daemon's process-wide metrics registry in
    /// Prometheus text exposition format.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn metrics(&self) -> Result<String, String> {
        self.expect_ok("GET", "/metrics", "")
    }

    /// `GET /trace` — the daemon's recent spans as chrome://tracing
    /// JSON (load the dump via `about:tracing` or Perfetto).
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn trace_dump(&self) -> Result<String, String> {
        self.expect_ok("GET", "/trace", "")
    }

    /// `POST /shutdown`.
    ///
    /// # Errors
    ///
    /// Fails on any non-200 answer or transport error.
    pub fn shutdown(&self) -> Result<String, String> {
        self.expect_ok("POST", "/shutdown", "")
    }
}
