//! Supply-voltage scaling model (paper §III-C, references [16], [17]).
//!
//! Selecting weights/activations with small delays reduces the MAC's
//! maximum sensitizable delay below the clock period. The freed slack
//! is converted to power savings by lowering VDD until the slowed
//! circuit again just meets the clock. The delay-vs-voltage curve is a
//! tabulated FinFET characteristic in the spirit of [16] (near-threshold
//! delay blows up super-linearly); dynamic power scales as V², leakage
//! with an empirical V³-like law fitted to the near-threshold FinFET
//! scaling reported in [17].

/// Delay-vs-VDD model with power scaling laws.
///
/// # Examples
///
/// ```
/// use powerpruning::voltage::VoltageModel;
///
/// let model = VoltageModel::finfet15();
/// // 22% delay slack lets VDD drop below nominal.
/// let vdd = model.min_vdd_for_delay_factor(1.29);
/// assert!(vdd < model.nominal_vdd());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageModel {
    /// `(vdd, delay factor relative to nominal)` — ascending by vdd.
    points: Vec<(f64, f64)>,
    nominal: f64,
    /// VDD search granularity (the paper reports two-decimal voltages).
    step: f64,
}

impl VoltageModel {
    /// A 15 nm-FinFET-like curve with 0.8 V nominal supply.
    ///
    /// Anchor points follow the shape of the dynamic-voltage-scaling
    /// simulations in [16]: mild slowdown at first, super-linear toward
    /// near-threshold.
    #[must_use]
    pub fn finfet15() -> Self {
        VoltageModel {
            points: vec![
                (0.45, 5.10),
                (0.50, 3.40),
                (0.55, 2.45),
                (0.60, 1.90),
                (0.65, 1.55),
                (0.70, 1.31),
                (0.75, 1.13),
                (0.80, 1.00),
            ],
            nominal: 0.80,
            step: 0.01,
        }
    }

    /// Nominal supply voltage, volts.
    #[must_use]
    pub fn nominal_vdd(&self) -> f64 {
        self.nominal
    }

    /// Delay factor (relative to nominal) at `vdd`, linearly
    /// interpolated; clamped at the table ends.
    #[must_use]
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        let pts = &self.points;
        if vdd <= pts[0].0 {
            return pts[0].1;
        }
        if vdd >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let i = pts.partition_point(|&(v, _)| v < vdd);
        let (v0, d0) = pts[i - 1];
        let (v1, d1) = pts[i];
        d0 + (d1 - d0) * (vdd - v0) / (v1 - v0)
    }

    /// The lowest VDD (at the model's granularity) whose delay factor
    /// stays within `max_factor` (the available slack `D_clock /
    /// D_selected`). Returns the nominal voltage for factors ≤ 1.
    #[must_use]
    pub fn min_vdd_for_delay_factor(&self, max_factor: f64) -> f64 {
        if max_factor <= 1.0 {
            return self.nominal;
        }
        let floor = self.points[0].0;
        let mut vdd = self.nominal;
        loop {
            let next = ((vdd - self.step) * 100.0).round() / 100.0;
            if next < floor - 1e-9 || self.delay_factor(next) > max_factor {
                return vdd;
            }
            vdd = next;
        }
    }

    /// Dynamic-power scale factor at `vdd` relative to nominal: `(V/V0)²`.
    #[must_use]
    pub fn dynamic_power_factor(&self, vdd: f64) -> f64 {
        let r = vdd / self.nominal;
        r * r
    }

    /// Leakage-power scale factor at `vdd` relative to nominal. An
    /// empirical `(V/V0)³` law that matches the 2–3× leakage reduction
    /// between 0.8 V and 0.6 V reported for FinFET near-threshold
    /// operation in [17].
    #[must_use]
    pub fn leakage_power_factor(&self, vdd: f64) -> f64 {
        let r = vdd / self.nominal;
        r * r * r
    }
}

impl Default for VoltageModel {
    fn default() -> Self {
        VoltageModel::finfet15()
    }
}

/// Outcome of converting delay slack into a voltage scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScaling {
    /// Selected supply voltage, volts.
    pub vdd: f64,
    /// Nominal supply voltage, volts.
    pub nominal_vdd: f64,
    /// Dynamic power factor (≤ 1).
    pub dynamic_factor: f64,
    /// Leakage power factor (≤ 1).
    pub leakage_factor: f64,
}

impl VoltageScaling {
    /// Computes the voltage scaling enabled by reducing the maximum MAC
    /// delay from `original_ps` to `selected_ps` while keeping the
    /// original clock.
    ///
    /// # Panics
    ///
    /// Panics if either delay is not positive.
    #[must_use]
    pub fn from_delays(model: &VoltageModel, original_ps: f64, selected_ps: f64) -> Self {
        assert!(
            original_ps > 0.0 && selected_ps > 0.0,
            "delays must be positive"
        );
        let slack = original_ps / selected_ps;
        let vdd = model.min_vdd_for_delay_factor(slack);
        VoltageScaling {
            vdd,
            nominal_vdd: model.nominal_vdd(),
            dynamic_factor: model.dynamic_power_factor(vdd),
            leakage_factor: model.leakage_power_factor(vdd),
        }
    }

    /// Formats the scaling like the paper's Table I ("0.71/0.8").
    #[must_use]
    pub fn label(&self) -> String {
        format!("{:.2}/{:.1}", self.vdd, self.nominal_vdd)
    }
}

/// The alternative use of the freed timing slack (paper §II): keep the
/// supply voltage and **raise the clock frequency** instead, trading the
/// power saving for computational performance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyBoost {
    /// Original clock period, ps.
    pub original_clock_ps: f64,
    /// New (shorter) clock period, ps.
    pub boosted_clock_ps: f64,
}

impl FrequencyBoost {
    /// Computes the clock boost enabled by reducing the maximum MAC
    /// delay from `original_ps` to `selected_ps`, assuming the original
    /// clock period equals `clock_ps` and the same relative timing
    /// margin is kept.
    ///
    /// # Panics
    ///
    /// Panics if any duration is not positive or the selected delay
    /// exceeds the original.
    #[must_use]
    pub fn from_delays(clock_ps: f64, original_ps: f64, selected_ps: f64) -> Self {
        assert!(
            clock_ps > 0.0 && original_ps > 0.0 && selected_ps > 0.0,
            "durations must be positive"
        );
        assert!(
            selected_ps <= original_ps + 1e-9,
            "selection may not increase the max delay"
        );
        FrequencyBoost {
            original_clock_ps: clock_ps,
            boosted_clock_ps: clock_ps * selected_ps / original_ps,
        }
    }

    /// Throughput speedup factor (≥ 1).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.original_clock_ps / self.boosted_clock_ps
    }

    /// New clock frequency in GHz.
    #[must_use]
    pub fn boosted_freq_ghz(&self) -> f64 {
        1000.0 / self.boosted_clock_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_factor_is_monotone_decreasing_in_vdd() {
        let m = VoltageModel::finfet15();
        let mut prev = f64::INFINITY;
        let mut v = 0.45;
        while v <= 0.80 {
            let d = m.delay_factor(v);
            assert!(d <= prev + 1e-12, "non-monotone at {v}");
            prev = d;
            v += 0.01;
        }
    }

    #[test]
    fn nominal_has_unit_factor() {
        let m = VoltageModel::finfet15();
        assert!((m.delay_factor(0.8) - 1.0).abs() < 1e-12);
        assert!((m.dynamic_power_factor(0.8) - 1.0).abs() < 1e-12);
        assert!((m.leakage_power_factor(0.8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_slack_means_no_scaling() {
        let m = VoltageModel::finfet15();
        let s = VoltageScaling::from_delays(&m, 180.0, 180.0);
        assert_eq!(s.vdd, 0.8);
        assert_eq!(s.dynamic_factor, 1.0);
    }

    #[test]
    fn paper_like_slack_gives_paper_like_voltage() {
        // Paper: 40 ps reduction from 180 ps → 0.71 V.
        let m = VoltageModel::finfet15();
        let s = VoltageScaling::from_delays(&m, 180.0, 140.0);
        assert!(
            (0.66..=0.75).contains(&s.vdd),
            "expected ~0.70-0.71 V, got {}",
            s.vdd
        );
        assert!(s.dynamic_factor < 1.0);
        assert!(s.leakage_factor < 1.0);
    }

    #[test]
    fn more_slack_means_lower_voltage() {
        let m = VoltageModel::finfet15();
        let small = VoltageScaling::from_delays(&m, 180.0, 170.0);
        let large = VoltageScaling::from_delays(&m, 180.0, 120.0);
        assert!(large.vdd <= small.vdd);
    }

    #[test]
    fn min_vdd_respects_factor_bound() {
        let m = VoltageModel::finfet15();
        for factor in [1.05, 1.2, 1.5, 2.0, 3.0] {
            let vdd = m.min_vdd_for_delay_factor(factor);
            assert!(
                m.delay_factor(vdd) <= factor + 1e-9,
                "vdd {vdd} violates factor {factor}"
            );
        }
    }

    #[test]
    fn label_matches_paper_format() {
        let m = VoltageModel::finfet15();
        let s = VoltageScaling::from_delays(&m, 180.0, 140.0);
        assert!(s.label().ends_with("/0.8"));
    }

    #[test]
    fn frequency_boost_mirrors_delay_reduction() {
        let b = FrequencyBoost::from_delays(200.0, 180.0, 140.0);
        assert!((b.speedup() - 180.0 / 140.0).abs() < 1e-9);
        assert!(b.boosted_freq_ghz() > 5.0);
    }

    #[test]
    fn no_reduction_means_no_boost() {
        let b = FrequencyBoost::from_delays(200.0, 180.0, 180.0);
        assert!((b.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "increase")]
    fn boost_rejects_delay_increase() {
        let _ = FrequencyBoost::from_delays(200.0, 140.0, 180.0);
    }
}
