//! PowerPruning: selecting weights and activations for power-efficient
//! neural network acceleration.
//!
//! A from-scratch Rust reproduction of the DAC 2023 paper (Petri, Zhang,
//! Chen, Schlichtmann, Li — arXiv:2303.13997). The method reduces the
//! power of digital DNN accelerators **without modifying the MAC
//! hardware**, by exploiting two observations:
//!
//! 1. Different 8-bit weight values cause very different switching
//!    activity inside a MAC unit — restricting a network to cheap weight
//!    values lowers power directly ([`chars::power`], [`select::power`]).
//! 2. Different weight and activation values sensitize different
//!    combinational paths — removing the slow ones reduces the MAC's
//!    maximum delay, and the freed slack is converted into further power
//!    savings by supply-voltage scaling ([`chars::timing`],
//!    [`select::delay`], [`voltage`]).
//!
//! Networks are retrained with the selected values using the
//! straight-through estimator ([`retrain`]); [`pipeline`] wires the full
//! flow end to end and drives every table and figure of the paper.
//!
//! # Examples
//!
//! Run a miniature end-to-end flow:
//!
//! ```no_run
//! use powerpruning::pipeline::{NetworkKind, Pipeline, PipelineConfig, Scale};
//!
//! let pipeline = Pipeline::new(PipelineConfig::for_scale(Scale::Micro));
//! let row = pipeline.run_table1_row(NetworkKind::LeNet5);
//! println!("{row}");
//! assert!(row.opt_prop_mw <= row.opt_orig_mw);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chars;
pub mod pipeline;
pub mod report;
pub mod retrain;
pub mod select;
pub mod voltage;

pub use cache::{CacheCounters, CharCache, CharacterizationRun, RequestManifest};
pub use chars::{MacHardware, PsumBinning, WeightPowerProfile, WeightTimingProfile};
pub use pipeline::{NetworkKind, Pipeline, PipelineConfig, Scale};
pub use report::Table1Row;
pub use select::{DelaySelection, PowerSelection};
pub use voltage::{FrequencyBoost, VoltageModel, VoltageScaling};
