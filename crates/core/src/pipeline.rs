//! The end-to-end PowerPruning flow and the experiment drivers behind
//! every table and figure of the paper.
//!
//! The flow (paper §III-C):
//!
//! 1. Quantization-aware training of the baseline network.
//! 2. Systolic execution to collect activation/partial-sum transition
//!    statistics (Fig. 4), then gate-level power characterization of
//!    every weight value (Fig. 2).
//! 3. Conventional magnitude pruning + retraining.
//! 4. Weight selection by power threshold + retraining (Fig. 8).
//! 5. Timing characterization (Fig. 3), then joint weight/activation
//!    selection by delay threshold + retraining (Fig. 9).
//! 6. Voltage scaling of the freed timing slack (Table I columns).

use crate::chars::{
    characterize_power, characterize_timing, MacHardware, PowerConfig, PsumBinning,
    TimingConfig, WeightPowerProfile, WeightTimingProfile,
};
use crate::report::{Fig7Entry, Fig8Series, Fig9Series, Table1Row};
use crate::retrain::{prune_retrain, restricted_retrain, RetrainConfig};
use crate::select::delay::{select_by_delay, DelaySelectionConfig};
use crate::select::power::{select_by_power, threshold_for_count};
use crate::voltage::{VoltageModel, VoltageScaling};
use nn::data::{Dataset, SyntheticSpec};
use nn::layers::GemmCapture;
use nn::model::Network;
use nn::models;
use nn::train::{evaluate, train, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use systolic::{ArrayConfig, HwVariant, MacEnergyModel, SystolicArray, TransitionStats};

/// The four network/dataset combinations of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// LeNet-5 on the CIFAR-10 stand-in.
    LeNet5,
    /// ResNet-20 on the CIFAR-10 stand-in.
    ResNet20,
    /// ResNet-50-style bottleneck net on the CIFAR-100 stand-in.
    ResNet50,
    /// EfficientNet-B0-Lite-style net on the ImageNet stand-in.
    EfficientNetLite,
}

impl NetworkKind {
    /// All four evaluation networks, in Table I order.
    #[must_use]
    pub fn all() -> [NetworkKind; 4] {
        [
            NetworkKind::LeNet5,
            NetworkKind::ResNet20,
            NetworkKind::ResNet50,
            NetworkKind::EfficientNetLite,
        ]
    }

    /// Paper-style label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::LeNet5 => "LeNet-5-CIFAR-10 (synthetic)",
            NetworkKind::ResNet20 => "ResNet-20-CIFAR-10 (synthetic)",
            NetworkKind::ResNet50 => "ResNet-50-CIFAR-100 (synthetic)",
            NetworkKind::EfficientNetLite => "EfficientNet-B0-Lite-ImageNet (synthetic)",
        }
    }

    /// The paper's Table I target for "#selected weight values".
    #[must_use]
    pub fn paper_weight_target(self) -> usize {
        match self {
            NetworkKind::LeNet5 | NetworkKind::ResNet20 => 32,
            NetworkKind::ResNet50 => 40,
            NetworkKind::EfficientNetLite => 76,
        }
    }
}

/// Experiment scale: how much compute each pipeline stage spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Seconds-level smoke runs for tests (tiny nets, strided
    /// characterization, sampled timing).
    Micro,
    /// The default for benches: faithful topologies at reduced size,
    /// full 255-code characterization, exhaustive timing.
    Mini,
    /// Paper-sized topologies and sample counts (long-running).
    Full,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed; every stage derives its own stream.
    pub seed: u64,
    /// Accuracy-drop tolerance for the delay sweep (paper: ~5%).
    pub accuracy_drop_tolerance: f64,
    /// Delay sweep granularity, ps (paper: 10 ps).
    pub delay_step_ps: f64,
    /// Maximum number of delay-sweep steps.
    pub max_delay_steps: usize,
    /// Magnitude-pruning sparsity for the conventional baseline.
    pub prune_sparsity: f64,
}

impl PipelineConfig {
    /// Configuration for a scale with paper-like defaults elsewhere.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        PipelineConfig {
            scale,
            seed: 0xdac2023,
            accuracy_drop_tolerance: 0.05,
            // The paper uses a 10 ps search granularity and notes it
            // "can be lowered if necessary"; our composed-delay
            // distribution is tighter than the paper's synthesized
            // netlist, so Mini sweeps at 5 ps resolution.
            delay_step_ps: match scale {
                Scale::Mini => 5.0,
                _ => 10.0,
            },
            max_delay_steps: match scale {
                Scale::Micro => 2,
                Scale::Mini => 5,
                Scale::Full => 5,
            },
            prune_sparsity: 0.5,
        }
    }

    fn img_size(&self) -> usize {
        match self.scale {
            Scale::Micro => 8,
            // 20 px keeps LeNet-5's flatten stage at 2×2×16 (16 px would
            // starve it to a single spatial position).
            Scale::Mini => 20,
            Scale::Full => 32,
        }
    }

    fn train_samples(&self) -> usize {
        match self.scale {
            Scale::Micro => 240,
            Scale::Mini => 480,
            Scale::Full => 4000,
        }
    }

    fn test_samples(&self) -> usize {
        match self.scale {
            Scale::Micro => 48,
            Scale::Mini => 160,
            Scale::Full => 1000,
        }
    }

    fn baseline_epochs(&self) -> usize {
        match self.scale {
            Scale::Micro => 5,
            Scale::Mini => 8,
            Scale::Full => 30,
        }
    }

    fn retrain_epochs(&self) -> usize {
        match self.scale {
            Scale::Micro => 1,
            Scale::Mini => 3,
            Scale::Full => 10,
        }
    }

    fn capture_batch(&self) -> usize {
        match self.scale {
            Scale::Micro => 6,
            Scale::Mini => 16,
            Scale::Full => 64,
        }
    }

    fn power_samples(&self) -> usize {
        match self.scale {
            Scale::Micro => 24,
            Scale::Mini => 2500,
            Scale::Full => 10_000,
        }
    }

    fn weight_stride(&self) -> usize {
        match self.scale {
            Scale::Micro => 16,
            _ => 1,
        }
    }

    fn timing_exhaustive(&self) -> (bool, usize) {
        match self.scale {
            Scale::Micro => (false, 192),
            Scale::Mini => (false, 12_288),
            Scale::Full => (true, 0),
        }
    }

    fn bins(&self) -> usize {
        match self.scale {
            Scale::Micro => 8,
            _ => 50,
        }
    }

    fn array_config(&self) -> ArrayConfig {
        match self.scale {
            Scale::Micro => ArrayConfig::small(16, 16),
            Scale::Mini => ArrayConfig::small(32, 32),
            Scale::Full => ArrayConfig::paper_64x64(),
        }
    }

    fn restarts(&self) -> usize {
        match self.scale {
            Scale::Micro => 4,
            _ => 20,
        }
    }

    fn train_config(&self, epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 16,
            // The batch-norm-free LeNet-5 needs the lower rate at
            // Mini/Full scale; the tiny Micro net converges faster at
            // the higher one.
            lr: match self.scale {
                Scale::Micro => 0.05,
                _ => 0.02,
            },
            momentum: 0.9,
            weight_decay: 5e-4,
            lr_decay: 0.9,
            clip_norm: Some(5.0),
        }
    }

    fn retrain_config(&self) -> RetrainConfig {
        RetrainConfig {
            train: TrainConfig {
                lr: match self.scale {
                    Scale::Micro => 0.02,
                    _ => 0.01,
                },
                ..self.train_config(self.retrain_epochs())
            },
            eval_batch: 64,
        }
    }

    /// Pixel-noise amplitude of the synthetic datasets: hard enough at
    /// Mini/Full scale that accuracy responds to value-set restriction
    /// (the paper's baselines sit at 74–92%, not at 100%).
    fn noise(&self) -> f32 {
        match self.scale {
            Scale::Micro => 0.08,
            Scale::Mini | Scale::Full => 0.55,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::for_scale(Scale::Mini)
    }
}

/// A trained network with its datasets.
#[derive(Debug)]
pub struct Prepared {
    /// The (quantization-aware trained) network.
    pub net: Network,
    /// Training split.
    pub train_data: Dataset,
    /// Test split.
    pub test_data: Dataset,
    /// Baseline test accuracy after QAT.
    pub accuracy: f64,
}

/// Hardware characterization products shared by the experiments.
#[derive(Debug)]
pub struct Characterization {
    /// Transition statistics from systolic execution.
    pub stats: TransitionStats,
    /// Partial-sum binning and bin-transition distribution.
    pub binning: PsumBinning,
    /// Per-weight power profile (Fig. 2).
    pub power_profile: WeightPowerProfile,
    /// Energy model handed to the array simulator.
    pub energy_model: MacEnergyModel,
}

/// The end-to-end experiment driver.
#[derive(Debug)]
pub struct Pipeline {
    /// Configuration.
    pub cfg: PipelineConfig,
    hw: MacHardware,
    array: SystolicArray,
    voltage: VoltageModel,
}

impl Pipeline {
    /// Creates a pipeline at the given scale with the paper's 8-bit MAC.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Self {
        Pipeline {
            hw: MacHardware::paper_default(),
            array: SystolicArray::new(cfg.array_config()),
            voltage: VoltageModel::finfet15(),
            cfg,
        }
    }

    /// The characterized MAC hardware.
    #[must_use]
    pub fn hardware(&self) -> &MacHardware {
        &self.hw
    }

    /// The systolic array simulator.
    #[must_use]
    pub fn array(&self) -> &SystolicArray {
        &self.array
    }

    fn dataset_spec(&self, kind: NetworkKind, train: bool) -> SyntheticSpec {
        let samples = if train {
            self.cfg.train_samples()
        } else {
            self.cfg.test_samples()
        };
        let seed = self.cfg.seed ^ if train { 0x11 } else { 0x22 } ^ (kind as u64) << 4;
        let size = self.cfg.img_size();
        let mut spec = match kind {
            NetworkKind::LeNet5 | NetworkKind::ResNet20 => {
                SyntheticSpec::cifar10_like(size, samples, seed)
            }
            NetworkKind::ResNet50 => {
                let mut spec = SyntheticSpec::cifar100_like(size, samples, seed);
                if self.cfg.scale != Scale::Full {
                    // 100 classes are not learnable at mini sample
                    // counts; keep the class structure but narrower.
                    spec.classes = 20;
                }
                spec
            }
            NetworkKind::EfficientNetLite => SyntheticSpec::imagenet_like(size, samples, seed),
        };
        spec.noise = self.cfg.noise();
        spec
    }

    fn build_network(&self, kind: NetworkKind, classes: usize, rng: &mut StdRng) -> Network {
        let size = self.cfg.img_size();
        match self.cfg.scale {
            Scale::Micro => models::tiny_cnn("micro", 3, size, classes, rng),
            Scale::Mini => match kind {
                NetworkKind::LeNet5 => models::lenet5(3, size, classes, rng),
                NetworkKind::ResNet20 => models::resnet("resnet20-mini", 3, classes, 1, 8, rng),
                NetworkKind::ResNet50 => models::resnet50_mini(3, classes, 1, 8, rng),
                NetworkKind::EfficientNetLite => models::efficientnet_lite_mini(3, classes, rng),
            },
            Scale::Full => match kind {
                NetworkKind::LeNet5 => models::lenet5(3, size, classes, rng),
                NetworkKind::ResNet20 => models::resnet20(3, classes, rng),
                NetworkKind::ResNet50 => models::resnet50_mini(3, classes, 2, 16, rng),
                NetworkKind::EfficientNetLite => models::efficientnet_lite_mini(3, classes, rng),
            },
        }
    }

    /// Trains the quantization-aware baseline for a network kind.
    #[must_use]
    pub fn prepare(&self, kind: NetworkKind) -> Prepared {
        let train_data = self.dataset_spec(kind, true).generate();
        let test_data = self.dataset_spec(kind, false).generate();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ (kind as u64));
        let mut net = self.build_network(kind, train_data.classes(), &mut rng);
        net.quantize = true;
        let _ = train(
            &mut net,
            &train_data,
            &self.cfg.train_config(self.cfg.baseline_epochs()),
            &mut rng,
        );
        let accuracy = evaluate(&mut net, &test_data, 64);
        Prepared {
            net,
            train_data,
            test_data,
            accuracy,
        }
    }

    /// Captures the quantized GEMMs of a forward pass over a fixed
    /// evaluation batch.
    #[must_use]
    pub fn capture(&self, prepared: &mut Prepared) -> Vec<GemmCapture> {
        let (x, _) = prepared.test_data.head(self.cfg.capture_batch());
        let (_, captures) = prepared.net.forward_capture(&x);
        captures
    }

    /// Runs statistics collection + power characterization from captured
    /// GEMMs (paper Figs. 2 and 4).
    #[must_use]
    pub fn characterize(&self, captures: &[GemmCapture]) -> Characterization {
        let stats = self.array.run_network_stats(captures);
        let binning = PsumBinning::from_samples(
            stats.psum_samples(),
            self.cfg.bins(),
            self.array.config().acc_bits,
            self.cfg.seed ^ 0xb135,
        );
        let power_profile = characterize_power(
            &self.hw,
            &stats,
            &binning,
            &PowerConfig {
                samples_per_weight: self.cfg.power_samples(),
                seed: self.cfg.seed ^ 0x909,
                clock_ps: self.array.config().clock_ps,
                weight_stride: self.cfg.weight_stride(),
                baseline_fj_per_cycle: 90.0,
            },
        );
        let leakage = self.hw.mac().netlist().leakage_nw(self.hw.lib());
        let energy_model = power_profile.to_energy_model(0.3, leakage);
        Characterization {
            stats,
            binning,
            power_profile,
            energy_model,
        }
    }

    /// Runs the timing characterization with the given slow-combination
    /// floor (paper Fig. 3).
    #[must_use]
    pub fn characterize_timing(&self, slow_floor_ps: f64) -> WeightTimingProfile {
        let (exhaustive, samples) = self.cfg.timing_exhaustive();
        characterize_timing(
            &self.hw,
            &TimingConfig {
                exhaustive,
                samples,
                seed: self.cfg.seed ^ 0x7171,
                slow_floor_ps,
                weight_stride: self.cfg.weight_stride(),
            },
        )
    }

    /// Measures total power on both hardware variants, mW.
    #[must_use]
    pub fn measure_power(
        &self,
        captures: &[GemmCapture],
        model: &MacEnergyModel,
    ) -> (systolic::NetworkEnergyReport, systolic::NetworkEnergyReport) {
        (
            self.array.run_network_energy(captures, model, HwVariant::Standard),
            self.array.run_network_energy(captures, model, HwVariant::Optimized),
        )
    }

    /// Runs the complete proposed flow for one network and produces its
    /// Table I row.
    #[must_use]
    pub fn run_table1_row(&self, kind: NetworkKind) -> Table1Row {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf00d ^ (kind as u64));
        let retrain_cfg = self.cfg.retrain_config();

        // 1. Baseline QAT.
        let mut prepared = self.prepare(kind);
        let acc_orig = prepared.accuracy;
        let captures_orig = self.capture(&mut prepared);

        // 2. Characterize and measure the baseline.
        let chars = self.characterize(&captures_orig);
        let (std_orig, opt_orig) = self.measure_power(&captures_orig, &chars.energy_model);

        // 3. Conventional pruning.
        let _ = prune_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            self.cfg.prune_sparsity,
            &retrain_cfg,
            &mut rng,
        );

        // 4. Weight selection by power threshold (targeting the paper's
        //    per-network weight-value count).
        let target = kind.paper_weight_target().min(chars.power_profile.codes().len());
        let threshold = threshold_for_count(&chars.power_profile, target);
        let power_sel = select_by_power(&chars.power_profile, threshold);
        let _ = restricted_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            Some(&power_sel.weights),
            None,
            &retrain_cfg,
            &mut rng,
        );

        // 5. Timing characterization + delay sweep.
        let probe = self.characterize_timing(f64::MAX);
        let base_max = probe.max_delay_over(&self.hw.weight_codes()).max(probe.psum_floor_ps);
        let base_max_rounded = (base_max / self.cfg.delay_step_ps).ceil() * self.cfg.delay_step_ps;
        let floor = (base_max_rounded
            - (self.cfg.max_delay_steps as f64 + 1.0) * self.cfg.delay_step_ps)
            .max(probe.psum_floor_ps);
        let timing = self.characterize_timing(floor);

        let mut best_sel: Option<crate::select::DelaySelection> = None;
        let mut best_acc = acc_orig;
        let mut best_state = prepared.net.snapshot();
        let mut threshold_ps = base_max_rounded - self.cfg.delay_step_ps;
        for _ in 0..self.cfg.max_delay_steps {
            if threshold_ps < floor.max(timing.psum_floor_ps) {
                break;
            }
            let sel = select_by_delay(
                &timing,
                &power_sel.weights,
                self.hw.act_levels(),
                &DelaySelectionConfig {
                    threshold_ps,
                    restarts: self.cfg.restarts(),
                    seed: self.cfg.seed ^ 0x5e1ec7,
                    protected_weights: vec![0],
                    activation_bias: 4,
                },
            );
            let mut acc = restricted_retrain(
                &mut prepared.net,
                &prepared.train_data,
                &prepared.test_data,
                Some(&sel.weights),
                Some(&sel.activations),
                &retrain_cfg,
                &mut rng,
            );
            if acc + self.cfg.accuracy_drop_tolerance < acc_orig {
                // Restricted retraining oscillates on the BN networks at
                // small epoch budgets; give the selection one more
                // retraining round before judging it.
                acc = restricted_retrain(
                    &mut prepared.net,
                    &prepared.train_data,
                    &prepared.test_data,
                    Some(&sel.weights),
                    Some(&sel.activations),
                    &retrain_cfg,
                    &mut rng,
                );
            }
            if acc + self.cfg.accuracy_drop_tolerance < acc_orig {
                // Accuracy dropped noticeably: roll back to the previous
                // point (weights *and* restriction sets) and stop.
                prepared.net.restore(&best_state);
                match &best_sel {
                    Some(prev) => {
                        prepared
                            .net
                            .set_weight_restriction(Some(nn::ValueSet::new(
                                prev.weights.iter().copied(),
                            )));
                        prepared.net.set_activation_restriction(Some(
                            nn::ValueSet::new(prev.activations.iter().copied()),
                        ));
                    }
                    None => {
                        prepared
                            .net
                            .set_weight_restriction(Some(nn::ValueSet::new(
                                power_sel.weights.iter().copied(),
                            )));
                        prepared.net.set_activation_restriction(None);
                    }
                }
                break;
            }
            best_acc = acc;
            best_state = prepared.net.snapshot();
            best_sel = Some(sel);
            threshold_ps -= self.cfg.delay_step_ps;
        }

        let (weights, acts, achieved_ps) = match &best_sel {
            Some(sel) => (
                sel.weight_count(),
                sel.activation_count(),
                sel.threshold_ps.max(timing.psum_floor_ps),
            ),
            None => (
                power_sel.weights.len(),
                self.hw.act_levels(),
                base_max_rounded,
            ),
        };

        // 6. Proposed power (restricted network) + voltage scaling.
        let captures_prop = self.capture(&mut prepared);
        let (std_prop_raw, opt_prop_raw) = self.measure_power(&captures_prop, &chars.energy_model);
        let scaling = VoltageScaling::from_delays(&self.voltage, base_max_rounded, achieved_ps);
        let scaled_model = chars
            .energy_model
            .scaled(scaling.dynamic_factor, scaling.leakage_factor);
        let (std_prop, opt_prop) = self.measure_power(&captures_prop, &scaled_model);

        Table1Row {
            network: kind.label().to_string(),
            acc_orig,
            acc_prop: best_acc,
            std_orig_mw: std_orig.total_power_mw(),
            std_prop_mw: std_prop.total_power_mw(),
            opt_orig_mw: opt_orig.total_power_mw(),
            opt_prop_mw: opt_prop.total_power_mw(),
            weights,
            acts,
            max_delay_orig_ps: base_max_rounded,
            max_delay_prop_ps: achieved_ps,
            vdd_label: scaling.label(),
            vs_std_pct: 100.0
                * (std_prop_raw.total_power_mw() - std_prop.total_power_mw())
                / std_orig.total_power_mw(),
            vs_opt_pct: 100.0
                * (opt_prop_raw.total_power_mw() - opt_prop.total_power_mw())
                / opt_orig.total_power_mw(),
        }
    }

    /// Fig. 7: Baseline vs conventional pruning vs proposed, on
    /// Optimized HW.
    #[must_use]
    pub fn compare_conventional(&self, kind: NetworkKind) -> Fig7Entry {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x716 ^ (kind as u64));
        let retrain_cfg = self.cfg.retrain_config();
        let mut prepared = self.prepare(kind);
        let captures = self.capture(&mut prepared);
        let chars = self.characterize(&captures);

        let mut points = Vec::new();
        let opt = self
            .array
            .run_network_energy(&captures, &chars.energy_model, HwVariant::Optimized);
        points.push((
            "Baseline".to_string(),
            opt.dynamic_power_mw(),
            opt.leakage_power_mw(),
            prepared.accuracy,
        ));

        let acc_pruned = prune_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            self.cfg.prune_sparsity,
            &retrain_cfg,
            &mut rng,
        );
        let captures_pruned = self.capture(&mut prepared);
        let opt_pruned = self.array.run_network_energy(
            &captures_pruned,
            &chars.energy_model,
            HwVariant::Optimized,
        );
        points.push((
            "Pruned".to_string(),
            opt_pruned.dynamic_power_mw(),
            opt_pruned.leakage_power_mw(),
            acc_pruned,
        ));

        let target = kind.paper_weight_target().min(chars.power_profile.codes().len());
        let threshold = threshold_for_count(&chars.power_profile, target);
        let sel = select_by_power(&chars.power_profile, threshold);
        let acc_prop = restricted_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            Some(&sel.weights),
            None,
            &retrain_cfg,
            &mut rng,
        );
        let captures_prop = self.capture(&mut prepared);
        let opt_prop = self.array.run_network_energy(
            &captures_prop,
            &chars.energy_model,
            HwVariant::Optimized,
        );
        points.push((
            "Proposed".to_string(),
            opt_prop.dynamic_power_mw(),
            opt_prop.leakage_power_mw(),
            acc_prop,
        ));

        Fig7Entry {
            network: kind.label().to_string(),
            points,
        }
    }

    /// Fig. 8: sequential power-threshold sweep (the paper's ladder
    /// None → 900 → 850 → 825 → 800 µW, expressed as the equivalent
    /// weight-value counts 255/86/61/48/36).
    #[must_use]
    pub fn power_threshold_sweep(&self, kind: NetworkKind) -> Fig8Series {
        let counts = [255usize, 86, 61, 48, 36];
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf18 ^ (kind as u64));
        let retrain_cfg = self.cfg.retrain_config();
        let mut prepared = self.prepare(kind);
        let captures = self.capture(&mut prepared);
        let chars = self.characterize(&captures);

        let mut points = Vec::new();
        let opt = self
            .array
            .run_network_energy(&captures, &chars.energy_model, HwVariant::Optimized);
        points.push((
            f64::NAN,
            chars.power_profile.codes().len(),
            opt.dynamic_power_mw(),
            opt.leakage_power_mw(),
            prepared.accuracy,
        ));

        for &count in &counts[1..] {
            let count = count.min(chars.power_profile.codes().len());
            let threshold = threshold_for_count(&chars.power_profile, count);
            let sel = select_by_power(&chars.power_profile, threshold);
            let mut acc = restricted_retrain(
                &mut prepared.net,
                &prepared.train_data,
                &prepared.test_data,
                Some(&sel.weights),
                None,
                &retrain_cfg,
                &mut rng,
            );
            if acc + self.cfg.accuracy_drop_tolerance < prepared.accuracy {
                // Short retrain budgets oscillate on the BN networks;
                // retrain once more before recording the point (the
                // paper retrains to convergence at each threshold).
                acc = restricted_retrain(
                    &mut prepared.net,
                    &prepared.train_data,
                    &prepared.test_data,
                    Some(&sel.weights),
                    None,
                    &retrain_cfg,
                    &mut rng,
                );
            }
            let caps = self.capture(&mut prepared);
            let power = self
                .array
                .run_network_energy(&caps, &chars.energy_model, HwVariant::Optimized);
            points.push((
                threshold,
                sel.weights.len(),
                power.dynamic_power_mw(),
                power.leakage_power_mw(),
                acc,
            ));
        }
        Fig8Series {
            network: kind.label().to_string(),
            points,
        }
    }

    /// Fig. 9: sequential max-delay sweep at a fixed power-selected
    /// weight set.
    #[must_use]
    pub fn delay_sweep(&self, kind: NetworkKind) -> Fig9Series {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf19 ^ (kind as u64));
        let retrain_cfg = self.cfg.retrain_config();
        let mut prepared = self.prepare(kind);
        let captures = self.capture(&mut prepared);
        let chars = self.characterize(&captures);

        // Paper: weight threshold 825 µW for the first three networks,
        // 900 µW for EfficientNet — i.e. counts 48 and 86.
        let count = match kind {
            NetworkKind::EfficientNetLite => 86usize,
            _ => 48,
        }
        .min(chars.power_profile.codes().len());
        let threshold = threshold_for_count(&chars.power_profile, count);
        let power_sel = select_by_power(&chars.power_profile, threshold);
        let acc0 = restricted_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            Some(&power_sel.weights),
            None,
            &retrain_cfg,
            &mut rng,
        );

        let probe = self.characterize_timing(f64::MAX);
        let base_max = probe.max_delay_over(&self.hw.weight_codes()).max(probe.psum_floor_ps);
        let base_max_rounded = (base_max / self.cfg.delay_step_ps).ceil() * self.cfg.delay_step_ps;
        let floor = (base_max_rounded
            - (self.cfg.max_delay_steps as f64 + 1.0) * self.cfg.delay_step_ps)
            .max(probe.psum_floor_ps);
        let timing = self.characterize_timing(floor);

        let mut points = vec![(
            base_max_rounded,
            self.hw.act_levels(),
            power_sel.weights.len(),
            acc0,
        )];
        let mut threshold_ps = base_max_rounded - self.cfg.delay_step_ps;
        for _ in 0..self.cfg.max_delay_steps {
            if threshold_ps < floor.max(timing.psum_floor_ps) {
                break;
            }
            let sel = select_by_delay(
                &timing,
                &power_sel.weights,
                self.hw.act_levels(),
                &DelaySelectionConfig {
                    threshold_ps,
                    restarts: self.cfg.restarts(),
                    seed: self.cfg.seed ^ 0x5e1ec7,
                    protected_weights: vec![0],
                    activation_bias: 4,
                },
            );
            let mut acc = restricted_retrain(
                &mut prepared.net,
                &prepared.train_data,
                &prepared.test_data,
                Some(&sel.weights),
                Some(&sel.activations),
                &retrain_cfg,
                &mut rng,
            );
            if acc + self.cfg.accuracy_drop_tolerance < acc0 {
                acc = restricted_retrain(
                    &mut prepared.net,
                    &prepared.train_data,
                    &prepared.test_data,
                    Some(&sel.weights),
                    Some(&sel.activations),
                    &retrain_cfg,
                    &mut rng,
                );
            }
            points.push((threshold_ps, sel.activation_count(), sel.weight_count(), acc));
            threshold_ps -= self.cfg.delay_step_ps;
        }
        Fig9Series {
            network: kind.label().to_string(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_pipeline() -> Pipeline {
        Pipeline::new(PipelineConfig::for_scale(Scale::Micro))
    }

    #[test]
    fn prepare_trains_above_chance() {
        let p = micro_pipeline();
        let prepared = p.prepare(NetworkKind::LeNet5);
        // 10 classes; QAT micro training should beat chance.
        assert!(
            prepared.accuracy > 0.15,
            "baseline accuracy {} at chance",
            prepared.accuracy
        );
    }

    #[test]
    fn capture_produces_gemms_with_valid_codes() {
        let p = micro_pipeline();
        let mut prepared = p.prepare(NetworkKind::LeNet5);
        let captures = p.capture(&mut prepared);
        assert!(!captures.is_empty());
        for c in &captures {
            assert!(c.weight_codes.iter().all(|&w| w >= -127));
        }
    }

    #[test]
    fn characterization_produces_full_profile() {
        let p = micro_pipeline();
        let mut prepared = p.prepare(NetworkKind::LeNet5);
        let captures = p.capture(&mut prepared);
        let chars = p.characterize(&captures);
        assert_eq!(chars.power_profile.codes().len(), 255);
        assert!(chars.power_profile.power_uw(0) < chars.power_profile.power_uw(-105));
        let (std_p, opt_p) = p.measure_power(&captures, &chars.energy_model);
        assert!(opt_p.total_power_mw() <= std_p.total_power_mw());
    }

    #[test]
    fn dataset_specs_differ_between_train_and_test() {
        let p = micro_pipeline();
        let a = p.dataset_spec(NetworkKind::ResNet20, true);
        let b = p.dataset_spec(NetworkKind::ResNet20, false);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn resnet50_micro_uses_reduced_classes() {
        let p = micro_pipeline();
        let spec = p.dataset_spec(NetworkKind::ResNet50, true);
        assert_eq!(spec.classes, 20);
    }
}
