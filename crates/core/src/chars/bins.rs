//! Partial-sum transition-space reduction by bit-similarity binning.
//!
//! The 22-bit partial sum has ~1.8·10^13 possible transitions — far too
//! many to simulate or even to estimate a distribution from traces
//! (paper §III-A2). The paper's remedy, reproduced here: partition the
//! observed partial-sum values into a small number of bins (50 in the
//! experiments) such that values within a bin have similar bit
//! patterns, then model the transition distribution *between bins*.
//!
//! Binning follows the paper's procedure: a seed value is assigned to
//! each bin, then remaining values are iteratively assigned to the bin
//! with the smallest **average Hamming distance** to its current
//! members (tracked incrementally with per-bit population counters).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A partition of partial-sum values into bit-similarity bins, plus the
/// observed bin-to-bin transition distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsumBinning {
    bits: usize,
    /// Members per bin (sorted).
    bins: Vec<Vec<i32>>,
    /// Bin transition counts: `counts[from * bins + to]`.
    counts: Vec<u64>,
    total: u64,
}

fn to_pattern(value: i32, bits: usize) -> u32 {
    (value as u32) & ((1u32 << bits) - 1)
}

impl PsumBinning {
    /// Builds a binning from sampled partial-sum transitions.
    ///
    /// `num_bins` is the target bin count (50 in the paper);
    /// `bits` is the accumulator width. Deterministic for a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `num_bins` is zero.
    #[must_use]
    pub fn from_samples(samples: &[(i32, i32)], num_bins: usize, bits: usize, seed: u64) -> Self {
        assert!(!samples.is_empty(), "need partial-sum samples to bin");
        assert!(num_bins > 0, "need at least one bin");
        let mut rng = StdRng::seed_from_u64(seed);

        // Distinct observed values.
        let mut values: Vec<i32> = samples.iter().flat_map(|&(a, b)| [a, b]).collect();
        values.sort_unstable();
        values.dedup();
        let num_bins = num_bins.min(values.len());

        // Seed each bin with a random distinct value.
        let mut shuffled = values.clone();
        shuffled.shuffle(&mut rng);
        let mut bins: Vec<Vec<i32>> = shuffled[..num_bins].iter().map(|&v| vec![v]).collect();

        // Per-bin, per-bit population counters for O(bits) average
        // Hamming distance queries.
        let mut ones: Vec<Vec<u64>> = bins
            .iter()
            .map(|b| {
                let mut o = vec![0u64; bits];
                let p = to_pattern(b[0], bits);
                for (bit, slot) in o.iter_mut().enumerate() {
                    *slot += u64::from((p >> bit) & 1);
                }
                o
            })
            .collect();
        let mut sizes: Vec<u64> = vec![1; num_bins];

        for &v in &shuffled[num_bins..] {
            let p = to_pattern(v, bits);
            let mut best = 0usize;
            let mut best_cost = f64::INFINITY;
            for (b, o) in ones.iter().enumerate() {
                let n = sizes[b] as f64;
                let mut cost = 0.0;
                for (bit, &count) in o.iter().enumerate() {
                    let is_one = (p >> bit) & 1 == 1;
                    cost += if is_one {
                        (sizes[b] - count) as f64
                    } else {
                        count as f64
                    };
                }
                cost /= n;
                if cost < best_cost {
                    best_cost = cost;
                    best = b;
                }
            }
            bins[best].push(v);
            sizes[best] += 1;
            for (bit, slot) in ones[best].iter_mut().enumerate() {
                *slot += u64::from((p >> bit) & 1);
            }
        }
        for b in &mut bins {
            b.sort_unstable();
        }

        let mut binning = PsumBinning {
            bits,
            bins,
            counts: vec![0; num_bins * num_bins],
            total: 0,
        };
        for &(from, to) in samples {
            let bf = binning.bin_of(from);
            let bt = binning.bin_of(to);
            binning.counts[bf * num_bins + bt] += 1;
            binning.total += 1;
        }
        binning
    }

    /// Number of bins.
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Members of a bin.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is out of range.
    #[must_use]
    pub fn members(&self, bin: usize) -> &[i32] {
        &self.bins[bin]
    }

    /// The bin a value belongs to: its home bin if it was observed,
    /// otherwise the bin with the nearest average bit pattern.
    #[must_use]
    pub fn bin_of(&self, value: i32) -> usize {
        // Exact membership first.
        for (i, b) in self.bins.iter().enumerate() {
            if b.binary_search(&value).is_ok() {
                return i;
            }
        }
        // Fall back to nearest representative (first member) by Hamming
        // distance.
        let p = to_pattern(value, self.bits);
        let mut best = 0;
        let mut best_d = u32::MAX;
        for (i, b) in self.bins.iter().enumerate() {
            let d = (to_pattern(b[0], self.bits) ^ p).count_ones();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Probability of the bin transition `from → to`.
    #[must_use]
    pub fn transition_probability(&self, from: usize, to: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[from * self.num_bins() + to] as f64 / self.total as f64
    }

    /// The raw bin-transition count matrix (`counts[from * bins + to]`).
    #[must_use]
    pub fn transition_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Draws `count` concrete partial-sum transitions: a bin pair
    /// according to the bin-transition distribution, then uniform
    /// members within each bin.
    ///
    /// # Panics
    ///
    /// Panics if no transitions were recorded.
    #[must_use]
    pub fn sample_transitions(&self, count: usize, rng: &mut StdRng) -> Vec<(i32, i32)> {
        assert!(self.total > 0, "no bin transitions recorded");
        let nb = self.num_bins();
        let mut cumulative: Vec<(u64, usize)> = Vec::new();
        let mut acc = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                acc += c;
                cumulative.push((acc, idx));
            }
        }
        (0..count)
            .map(|_| {
                let r = rng.random_range(0..acc);
                let pos = cumulative.partition_point(|&(cum, _)| cum <= r);
                let idx = cumulative[pos.min(cumulative.len() - 1)].1;
                let (bf, bt) = (idx / nb, idx % nb);
                let from = self.bins[bf][rng.random_range(0..self.bins[bf].len())];
                let to = self.bins[bt][rng.random_range(0..self.bins[bt].len())];
                (from, to)
            })
            .collect()
    }

    /// Serializes the binning bit-exactly for the charstore container.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use charstore::wire;
        wire::put_usize(out, self.bits);
        wire::put_usize(out, self.bins.len());
        for bin in &self.bins {
            wire::put_usize(out, bin.len());
            for &v in bin {
                wire::put_i32(out, v);
            }
        }
        wire::put_usize(out, self.counts.len());
        for &c in &self.counts {
            wire::put_u64(out, c);
        }
        wire::put_u64(out, self.total);
    }

    /// Deserializes a binning written by [`PsumBinning::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation, an implausible bin/count length, or
    /// a count matrix that is not `bins × bins`.
    pub fn read_from(r: &mut charstore::wire::Reader<'_>) -> std::io::Result<Self> {
        use charstore::wire;
        let bits = r.u64()? as usize;
        if bits > 32 {
            return Err(wire::invalid(format!("implausible bit width {bits}")));
        }
        let num_bins = r.bounded_len(8)?;
        let mut bins = Vec::with_capacity(num_bins);
        for _ in 0..num_bins {
            let len = r.bounded_len(4)?;
            let mut bin = Vec::with_capacity(len);
            for _ in 0..len {
                bin.push(r.i32()?);
            }
            bins.push(bin);
        }
        let counts_len = r.bounded_len(8)?;
        if counts_len != num_bins * num_bins {
            return Err(wire::invalid(format!(
                "count matrix has {counts_len} entries for {num_bins} bins"
            )));
        }
        let mut counts = Vec::with_capacity(counts_len);
        for _ in 0..counts_len {
            counts.push(r.u64()?);
        }
        Ok(PsumBinning {
            bits,
            bins,
            counts,
            total: r.u64()?,
        })
    }

    /// Checks the partition invariant: every observed value is in
    /// exactly one bin.
    #[must_use]
    pub fn is_partition(&self) -> bool {
        let mut all: Vec<i32> = self.bins.iter().flatten().copied().collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        before == all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Vec<(i32, i32)> {
        let mut x: u64 = 99;
        (0..2000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((x & 0x3fffff) as i64 - (1 << 21)) as i32;
                let b = (((x >> 22) & 0x3fffff) as i64 - (1 << 21)) as i32;
                (a, b)
            })
            .collect()
    }

    #[test]
    fn binning_is_a_partition() {
        let binning = PsumBinning::from_samples(&sample_data(), 50, 22, 1);
        assert!(binning.is_partition());
        assert_eq!(binning.num_bins(), 50);
    }

    #[test]
    fn every_observed_value_maps_to_its_bin() {
        let samples = sample_data();
        let binning = PsumBinning::from_samples(&samples, 20, 22, 2);
        for &(a, _) in samples.iter().take(100) {
            let bin = binning.bin_of(a);
            assert!(binning.members(bin).binary_search(&a).is_ok());
        }
    }

    #[test]
    fn transition_probabilities_sum_to_one() {
        let binning = PsumBinning::from_samples(&sample_data(), 10, 22, 3);
        let total: f64 = (0..10)
            .flat_map(|f| (0..10).map(move |t| (f, t)))
            .map(|(f, t)| binning.transition_probability(f, t))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_returns_observed_values() {
        let samples = sample_data();
        let binning = PsumBinning::from_samples(&samples, 10, 22, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let draws = binning.sample_transitions(50, &mut rng);
        assert_eq!(draws.len(), 50);
        let mut observed: Vec<i32> = samples.iter().flat_map(|&(a, b)| [a, b]).collect();
        observed.sort_unstable();
        for (a, b) in draws {
            assert!(observed.binary_search(&a).is_ok());
            assert!(observed.binary_search(&b).is_ok());
        }
    }

    #[test]
    fn binning_is_deterministic_per_seed() {
        let samples = sample_data();
        let a = PsumBinning::from_samples(&samples, 10, 22, 7);
        let b = PsumBinning::from_samples(&samples, 10, 22, 7);
        for i in 0..10 {
            assert_eq!(a.members(i), b.members(i));
        }
    }

    #[test]
    fn similar_values_tend_to_share_bins() {
        // Values with nearly identical bit patterns should mostly land
        // together: craft clusters around two very different patterns.
        let mut samples = Vec::new();
        for i in 0..200 {
            let base1 = 0b10_1010_1010_1010_1010_1010_i64 as i32;
            let base2 = 0b01_0101_0101_0101_0101_0101_i64 as i32;
            samples.push((base1 ^ (i & 3), base2 ^ ((i >> 2) & 3)));
        }
        let binning = PsumBinning::from_samples(&samples, 2, 22, 9);
        // The two clusters should dominate different bins.
        let b1 = binning.bin_of(samples[0].0);
        let b2 = binning.bin_of(samples[0].1);
        assert_ne!(b1, b2, "clusters should separate");
    }

    #[test]
    #[should_panic(expected = "need partial-sum samples")]
    fn empty_samples_rejected() {
        let _ = PsumBinning::from_samples(&[], 10, 22, 0);
    }

    #[test]
    fn more_bins_than_values_is_clamped() {
        let samples = vec![(1, 2), (2, 3)];
        let binning = PsumBinning::from_samples(&samples, 50, 22, 0);
        assert!(binning.num_bins() <= 3);
        assert!(binning.is_partition());
    }
}
