//! Characterization of MAC power and timing per weight value.
//!
//! * [`bins`] — partial-sum transition-space reduction (paper §III-A2).
//! * [`CharConfigError`] — shared validation errors for the power and
//!   timing configurations.
//! * [`power`] — average power per weight value from sampled realistic
//!   transitions (paper §III-A, Fig. 2).
//! * [`timing`] — per-weight dynamic timing of the multiplier composed
//!   with static timing of the adder (paper §III-B, Figs. 3 and 5).

pub mod bins;
pub mod power;
pub mod timing;

pub use bins::PsumBinning;
pub use power::{
    characterize_power, characterize_power_batched, characterize_power_batched_with_threads,
    characterize_power_scalar, characterize_power_unpruned,
    characterize_power_unpruned_with_threads, characterize_power_with_threads, strided_codes,
    PowerConfig, WeightPowerProfile,
};
pub use timing::{
    characterize_timing, characterize_timing_scalar, characterize_timing_with_threads,
    sta_bound_per_weight, TimingConfig, WeightTiming, WeightTimingProfile,
};

use gatesim::circuits::{
    AdderKind, BoothMultiplierCircuit, MacCircuit, MultiplierCircuit, MultiplierKind,
};
use gatesim::netlist::to_bits_into;
use gatesim::{CellLibrary, Netlist};
use std::error::Error;
use std::fmt;

/// A rejected characterization configuration.
///
/// Both [`PowerConfig`] and [`TimingConfig`] validate before any work
/// starts, so a zeroed field fails fast with a clear message instead of
/// a downstream panic (or, for `weight_stride`, a silently coerced
/// stride).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CharConfigError {
    /// The sample budget is zero, so no transition would ever be
    /// simulated and every energy/delay would be a 0/0 artifact.
    ZeroSamples,
    /// The weight stride is zero, which selects no codes to simulate.
    ZeroStride,
}

impl fmt::Display for CharConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharConfigError::ZeroSamples => {
                write!(f, "samples per weight must be at least 1, got 0")
            }
            CharConfigError::ZeroStride => {
                write!(f, "weight_stride must be at least 1, got 0")
            }
        }
    }
}

impl Error for CharConfigError {}

/// The characterized hardware: a MAC unit netlist, the standalone
/// multiplier netlist (identical structure to the one embedded in the
/// MAC — both come from the same generator), and the cell library.
#[derive(Debug, Clone)]
pub struct MacHardware {
    mac: MacCircuit,
    mult_netlist: Netlist,
    lib: CellLibrary,
    weight_bits: usize,
    act_bits: usize,
    acc_bits: usize,
    multiplier: MultiplierKind,
}

impl MacHardware {
    /// Builds the paper's 8-bit MAC with a 22-bit accumulator under the
    /// default 15 nm-like library.
    #[must_use]
    pub fn paper_default() -> Self {
        MacHardware::new(8, 8, 22, CellLibrary::nangate15_like())
    }

    /// A reduced-width MAC for fast tests.
    #[must_use]
    pub fn small() -> Self {
        MacHardware::new(4, 4, 12, CellLibrary::nangate15_like())
    }

    /// Builds a MAC of arbitrary widths with the default multiplier.
    ///
    /// The default is the **Booth** multiplier: commercial synthesis
    /// (Synopsys DesignWare, as used by the paper) Booth-recodes
    /// multipliers, and only the Booth MAC reproduces the paper's Fig. 2
    /// shape where power tracks the weight *magnitude* on both signs
    /// (−2 cheap, −105 expensive). A plain partial-product array makes
    /// power track the two's complement *ones count* instead, which
    /// skews the cheap-value set asymmetric — see the
    /// `ablation_multiplier` bench.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`MacCircuit::new`]).
    #[must_use]
    pub fn new(weight_bits: usize, act_bits: usize, acc_bits: usize, lib: CellLibrary) -> Self {
        MacHardware::with_multiplier(weight_bits, act_bits, acc_bits, lib, MultiplierKind::Booth)
    }

    /// Builds a MAC with an explicit multiplier micro-architecture
    /// (the hardware ablation of DESIGN.md §7).
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`MacCircuit::new`]).
    #[must_use]
    pub fn with_multiplier(
        weight_bits: usize,
        act_bits: usize,
        acc_bits: usize,
        lib: CellLibrary,
        multiplier: MultiplierKind,
    ) -> Self {
        let mult_netlist = match multiplier {
            MultiplierKind::BaughWooley => MultiplierCircuit::new(weight_bits, act_bits)
                .netlist()
                .clone(),
            MultiplierKind::Booth => BoothMultiplierCircuit::new(weight_bits, act_bits)
                .netlist()
                .clone(),
        };
        MacHardware {
            mac: MacCircuit::with_architecture(
                weight_bits,
                act_bits,
                acc_bits,
                AdderKind::Cla4,
                multiplier,
            ),
            mult_netlist,
            lib,
            weight_bits,
            act_bits,
            acc_bits,
            multiplier,
        }
    }

    /// The full MAC netlist wrapper.
    #[must_use]
    pub fn mac(&self) -> &MacCircuit {
        &self.mac
    }

    /// The standalone multiplier netlist (same structure as the one
    /// embedded in the MAC).
    #[must_use]
    pub fn mult_netlist(&self) -> &Netlist {
        &self.mult_netlist
    }

    /// The multiplier micro-architecture.
    #[must_use]
    pub fn multiplier_kind(&self) -> MultiplierKind {
        self.multiplier
    }

    /// Packs `(weight, activation)` into the standalone multiplier's
    /// input vector (weight bus then activation bus, LSB first).
    #[must_use]
    pub fn encode_mult(&self, weight: i64, act: u64) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.weight_bits + self.act_bits);
        self.encode_mult_into(weight, act, &mut v);
        v
    }

    /// Packs `(weight, activation)` into a reused buffer — the
    /// allocation-free companion of [`MacHardware::encode_mult`] used by
    /// the batched timing characterization.
    pub fn encode_mult_into(&self, weight: i64, act: u64, out: &mut Vec<bool>) {
        out.clear();
        to_bits_into(weight, self.weight_bits, out);
        to_bits_into(act as i64, self.act_bits, out);
    }

    /// The cell library.
    #[must_use]
    pub fn lib(&self) -> &CellLibrary {
        &self.lib
    }

    /// Pin mask for [`gatesim::PrunePlan`] over the full MAC netlist:
    /// the weight bus held at `code`, activation and partial-sum inputs
    /// free. The MAC's input ports are weight, activation, partial sum
    /// (LSB first), so the mask covers the first `weight_bits` ports —
    /// exactly the bits [`MacCircuit::encode`] derives from the weight.
    #[must_use]
    pub fn mac_weight_pins(&self, code: i32) -> Vec<Option<bool>> {
        self.weight_pins(code, self.mac.netlist().inputs().len())
    }

    /// Pin mask for the standalone multiplier netlist: the weight bus
    /// held at `code`, the activation bus free (port layout per
    /// [`MacHardware::encode_mult`]).
    #[must_use]
    pub fn mult_weight_pins(&self, code: i32) -> Vec<Option<bool>> {
        self.weight_pins(code, self.mult_netlist.inputs().len())
    }

    fn weight_pins(&self, code: i32, input_count: usize) -> Vec<Option<bool>> {
        let mut bits = Vec::with_capacity(self.weight_bits);
        to_bits_into(code as i64, self.weight_bits, &mut bits);
        let mut pins = vec![None; input_count];
        for (pos, &bit) in bits.iter().enumerate() {
            pins[pos] = Some(bit);
        }
        pins
    }

    /// Weight operand width in bits.
    #[must_use]
    pub fn weight_bits(&self) -> usize {
        self.weight_bits
    }

    /// Activation operand width in bits.
    #[must_use]
    pub fn act_bits(&self) -> usize {
        self.act_bits
    }

    /// Accumulator width in bits.
    #[must_use]
    pub fn acc_bits(&self) -> usize {
        self.acc_bits
    }

    /// All representable weight codes: `-(2^(n-1)-1) ..= 2^(n-1)-1`
    /// (symmetric; 255 codes for 8 bits, matching TensorFlow-style
    /// symmetric int8).
    #[must_use]
    pub fn weight_codes(&self) -> Vec<i32> {
        let lim = (1i32 << (self.weight_bits - 1)) - 1;
        (-lim..=lim).collect()
    }

    /// Number of activation codes (`2^act_bits`).
    #[must_use]
    pub fn act_levels(&self) -> usize {
        1 << self.act_bits
    }
}
