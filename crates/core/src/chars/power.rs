//! Average power per weight value (paper §III-A, Fig. 2).
//!
//! For each weight code, the MAC netlist is simulated with the weight
//! input held constant while sampled combined transitions of activation
//! and partial sum (drawn from the distributions observed on the
//! systolic array) are applied to the other inputs. The average
//! switching energy per transition, divided by the clock period, is the
//! weight's average power — the quantity plotted in the paper's Fig. 2.
//!
//! The hot path runs on the bit-parallel [`BitSim`] engine: each
//! weight's sample stream is chunked into blocks of 64 stimulus
//! vectors, packed one `u64` lane per net, and simulated word-wide —
//! composing with the per-code thread fan-out so threads × bit-lanes
//! multiply. The batched ([`characterize_power_batched`]) and scalar
//! ([`characterize_power_scalar`]) paths are kept as bit-exact
//! references and bench baselines; all three produce **identical**
//! profiles, energies included.

use crate::chars::{CharConfigError, MacHardware, PsumBinning};
use gatesim::{BatchAccumulator, BatchSim, BitSim, PrunePlan, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use systolic::stats::TransitionStats;

/// Configuration of the power characterization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Combined transitions sampled per weight value (paper: 10 000).
    pub samples_per_weight: usize,
    /// Base RNG seed (each weight derives its own stream).
    pub seed: u64,
    /// Clock period used to convert energy to power, ps.
    pub clock_ps: f64,
    /// Characterize only every `weight_stride`-th code (plus 0 and the
    /// extremes); skipped codes inherit the nearest characterized
    /// energy. 1 (the default) characterizes everything — use larger
    /// strides only for quick smoke runs.
    pub weight_stride: usize,
    /// Constant per-cycle energy of the sequential parts the
    /// combinational netlist does not model (pipeline registers and
    /// clock tree of a real MAC), fJ. Added to every weight's energy;
    /// this is the floor that keeps even weight 0 at a few hundred µW
    /// in the paper's Fig. 2.
    pub baseline_fj_per_cycle: f64,
}

impl PowerConfig {
    /// Checks the configuration for values that cannot produce a
    /// meaningful profile.
    ///
    /// # Errors
    ///
    /// [`CharConfigError::ZeroSamples`] if `samples_per_weight` is 0,
    /// [`CharConfigError::ZeroStride`] if `weight_stride` is 0.
    pub fn validate(&self) -> Result<(), CharConfigError> {
        if self.samples_per_weight == 0 {
            return Err(CharConfigError::ZeroSamples);
        }
        if self.weight_stride == 0 {
            return Err(CharConfigError::ZeroStride);
        }
        Ok(())
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            samples_per_weight: 10_000,
            seed: 0x7057_3250,
            clock_ps: 200.0,
            weight_stride: 1,
            baseline_fj_per_cycle: 90.0,
        }
    }
}

/// Average power per weight code.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightPowerProfile {
    codes: Vec<i32>,
    energy_fj: Vec<f64>,
    power_uw: Vec<f64>,
    clock_ps: f64,
}

impl WeightPowerProfile {
    /// The characterized weight codes (ascending).
    #[must_use]
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Average switching energy per cycle for a code, fJ.
    ///
    /// # Panics
    ///
    /// Panics if the code was not characterized.
    #[must_use]
    pub fn energy_fj(&self, code: i32) -> f64 {
        let idx = self
            .codes
            .binary_search(&code)
            .expect("code not characterized");
        self.energy_fj[idx]
    }

    /// Average power for a code, µW.
    ///
    /// # Panics
    ///
    /// Panics if the code was not characterized.
    #[must_use]
    pub fn power_uw(&self, code: i32) -> f64 {
        let idx = self
            .codes
            .binary_search(&code)
            .expect("code not characterized");
        self.power_uw[idx]
    }

    /// `(code, power µW)` pairs — the paper's Fig. 2 series.
    #[must_use]
    pub fn series(&self) -> Vec<(i32, f64)> {
        self.codes
            .iter()
            .copied()
            .zip(self.power_uw.iter().copied())
            .collect()
    }

    /// The clock period the power numbers assume, ps.
    #[must_use]
    pub fn clock_ps(&self) -> f64 {
        self.clock_ps
    }

    /// Codes whose power is at most `threshold_uw` (the paper's weight
    /// selection by power threshold; zero is always kept — it is the
    /// pruning target and by far the cheapest value).
    #[must_use]
    pub fn codes_below(&self, threshold_uw: f64) -> Vec<i32> {
        let mut out: Vec<i32> = self
            .codes
            .iter()
            .zip(&self.power_uw)
            .filter(|&(_, &p)| p <= threshold_uw)
            .map(|(&c, _)| c)
            .collect();
        if !out.contains(&0) {
            out.push(0);
            out.sort_unstable();
        }
        out
    }

    /// Serializes the profile bit-exactly for the charstore container.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use charstore::wire;
        wire::put_usize(out, self.codes.len());
        for &c in &self.codes {
            wire::put_i32(out, c);
        }
        for &e in &self.energy_fj {
            wire::put_f64(out, e);
        }
        for &p in &self.power_uw {
            wire::put_f64(out, p);
        }
        wire::put_f64(out, self.clock_ps);
    }

    /// Deserializes a profile written by [`WeightPowerProfile::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation, an implausible length, or a code
    /// list that is not strictly ascending (the lookup invariant).
    pub fn read_from(r: &mut charstore::wire::Reader<'_>) -> std::io::Result<Self> {
        use charstore::wire;
        // Each entry needs 4 (code) + 16 (energy, power) bytes.
        let len = r.bounded_len(20)?;
        let mut codes = Vec::with_capacity(len);
        for _ in 0..len {
            codes.push(r.i32()?);
        }
        if !codes.windows(2).all(|w| w[0] < w[1]) {
            return Err(wire::invalid("power profile codes are not ascending"));
        }
        let mut energy_fj = Vec::with_capacity(len);
        for _ in 0..len {
            energy_fj.push(r.f64()?);
        }
        let mut power_uw = Vec::with_capacity(len);
        for _ in 0..len {
            power_uw.push(r.f64()?);
        }
        Ok(WeightPowerProfile {
            codes,
            energy_fj,
            power_uw,
            clock_ps: r.f64()?,
        })
    }

    /// Builds a [`systolic::MacEnergyModel`] from this profile so the
    /// array simulator can integrate characterized energies.
    ///
    /// `idle_fraction` scales the zero-weight energy to model an idle
    /// (weightless) clocked PE; `leakage_nw_per_pe` comes from the
    /// netlist's leakage under the cell library.
    #[must_use]
    pub fn to_energy_model(
        &self,
        idle_fraction: f64,
        leakage_nw_per_pe: f64,
    ) -> systolic::MacEnergyModel {
        let mut table = vec![0.0f64; 256];
        let min_code = *self.codes.first().expect("non-empty profile");
        for code in -128i32..=127 {
            let lookup = code.max(min_code);
            let idx = self
                .codes
                .binary_search(&lookup)
                .unwrap_or_else(|i| i.min(self.codes.len() - 1));
            table[(code + 128) as usize] = self.energy_fj[idx];
        }
        let idle = self.energy_fj(0) * idle_fraction;
        systolic::MacEnergyModel::from_table(table, idle, leakage_nw_per_pe)
    }
}

/// The weight codes actually simulated under a stride configuration:
/// every `stride`-th code plus the two extremes. Shared by the
/// bit-parallel, batched and scalar characterization paths, and by the
/// throughput bench to count simulated codes.
///
/// # Panics
///
/// Panics if `all_codes` is empty.
#[must_use]
pub fn strided_codes(all_codes: &[i32], stride: usize) -> Vec<i32> {
    let stride = stride.max(1) as i32;
    let min_code = *all_codes.first().expect("non-empty code range");
    let max_code = *all_codes.last().expect("non-empty code range");
    all_codes
        .iter()
        .copied()
        .filter(|&c| c % stride == 0 || c == min_code || c == max_code)
        .collect()
}

/// The per-code RNG for power characterization. Derived from the
/// *global* code index only, never from chunk geometry, so results are
/// identical at any thread count.
fn code_rng(cfg: &PowerConfig, code_idx: usize) -> StdRng {
    StdRng::seed_from_u64(cfg.seed ^ ((code_idx as u64) << 8))
}

/// Characterizes the average power of every weight value.
///
/// The weight input is fixed per run; activation transitions are drawn
/// from `act_stats` and partial-sum transitions from `binning`, so the
/// sampled input stream reflects real network execution. Weights are
/// characterized in parallel on the bit-parallel [`BitSim`] engine —
/// 64 sampled transitions per simulated word on top of the per-code
/// thread fan-out — under a per-code [`PrunePlan`]: the held weight
/// bus is pinned, constant propagation proves the weight's dead cone
/// silent, and only the live cone is simulated. Pruning is exact
/// (pruned gates provably never toggle), so the profile is
/// bit-identical to [`characterize_power_unpruned`] and to the batched
/// and scalar references.
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
) -> WeightPowerProfile {
    characterize_power_with_threads(hw, act_stats, binning, cfg, None)
}

/// [`characterize_power`] with an explicit worker-thread count (`None`
/// uses the machine's available parallelism). Exposed so the test suite
/// can prove the profile is identical at any thread count.
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power_with_threads(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
    threads: Option<usize>,
) -> WeightPowerProfile {
    power_bitsim_impl(hw, act_stats, binning, cfg, threads, true)
}

/// The bit-parallel characterization loop *without* the per-code prune
/// plan: every gate simulated, exactly the hot path before interval
/// pruning landed. Kept as the A/B baseline for the
/// `bench_characterization` `power_pruned` speedup measurement and as a
/// bit-identity witness in tests.
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power_unpruned(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
) -> WeightPowerProfile {
    power_bitsim_impl(hw, act_stats, binning, cfg, None, false)
}

/// [`characterize_power_unpruned`] with an explicit worker-thread count
/// (`None` uses the machine's available parallelism). The
/// `bench_characterization` pruning A/B runs both arms on one thread so
/// the comparison measures per-sample simulation cost, not scheduler
/// noise across the per-code fan-out.
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power_unpruned_with_threads(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
    threads: Option<usize>,
) -> WeightPowerProfile {
    power_bitsim_impl(hw, act_stats, binning, cfg, threads, false)
}

fn power_bitsim_impl(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
    threads: Option<usize>,
    pruned: bool,
) -> WeightPowerProfile {
    if let Err(e) = cfg.validate() {
        panic!("invalid PowerConfig: {e}");
    }
    let all_codes = hw.weight_codes();
    let codes = strided_codes(&all_codes, cfg.weight_stride);
    let mut energy_fj = vec![0.0f64; codes.len()];
    let input_count = hw.mac().netlist().inputs().len();

    parallel::par_rows_mut_with_threads(
        threads.unwrap_or_else(parallel::max_threads),
        &mut energy_fj,
        1,
        || {
            (
                Vec::new(),
                Vec::new(),
                vec![0u64; input_count],
                vec![0u64; input_count],
            )
        },
        |(from, to, from_words, to_words), idx, slot| {
            let code = codes[idx];
            // The engine is built per code, not per thread: with the
            // weight bus pinned at this code, the prune plan proves the
            // weight's dead cone silent and the engine never visits it.
            // The plan pass is microseconds against thousands of
            // simulated transitions per code.
            let mut sim = if pruned {
                let plan = PrunePlan::new(hw.mac().netlist(), hw.lib(), &hw.mac_weight_pins(code));
                BitSim::with_plan(hw.mac().netlist(), hw.lib(), &plan)
            } else {
                BitSim::new(hw.mac().netlist(), hw.lib())
            };
            let mut rng = code_rng(cfg, idx);
            let acts = act_stats.sample_activation_transitions(cfg.samples_per_weight, &mut rng);
            let psums = binning.sample_transitions(cfg.samples_per_weight, &mut rng);
            let mut total = 0.0f64;
            let mut base = 0usize;
            // Blocks of up to 64 samples, one bit-lane each; the final
            // partial block relies on the engine's tail masking. The
            // lane-order energy fold reproduces the scalar reference's
            // per-sample f64 sum exactly.
            while base < cfg.samples_per_weight {
                let lanes = (cfg.samples_per_weight - base).min(64);
                from_words.fill(0);
                to_words.fill(0);
                for lane in 0..lanes {
                    let (af, at) = acts[base + lane];
                    let (pf, pt) = psums[base + lane];
                    hw.mac()
                        .encode_into(code as i64, af as u64, pf as i64, from);
                    hw.mac().encode_into(code as i64, at as u64, pt as i64, to);
                    for (i, &bit) in from.iter().enumerate() {
                        from_words[i] |= u64::from(bit) << lane;
                    }
                    for (i, &bit) in to.iter().enumerate() {
                        to_words[i] |= u64::from(bit) << lane;
                    }
                }
                sim.settle(from_words, lanes);
                let view = sim.transition(to_words);
                // Fold lane energies straight into the running total:
                // `total += block_subtotal` would re-associate the f64
                // sum and drift off the scalar reference.
                for lane in 0..lanes {
                    total += view.lane_energy_fj(lane);
                }
                base += lanes;
            }
            slot[0] = total / cfg.samples_per_weight as f64 + cfg.baseline_fj_per_cycle;
        },
    );

    expand_profile(cfg, &all_codes, &codes, &energy_fj)
}

/// The characterization loop on the batched [`BatchSim`] engine: one
/// stimulus vector per settle/transition, allocation-free. This was the
/// hot path before the bit-parallel engine; it is kept as a bit-exact
/// reference and as the baseline the `bench_characterization` speedup
/// targets are measured against.
///
/// Produces **bit-identical** profiles to [`characterize_power`].
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power_batched(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
) -> WeightPowerProfile {
    characterize_power_batched_with_threads(hw, act_stats, binning, cfg, None)
}

/// [`characterize_power_batched`] with an explicit worker-thread count
/// (`None` uses the machine's available parallelism).
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power_batched_with_threads(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
    threads: Option<usize>,
) -> WeightPowerProfile {
    if let Err(e) = cfg.validate() {
        panic!("invalid PowerConfig: {e}");
    }
    let all_codes = hw.weight_codes();
    let codes = strided_codes(&all_codes, cfg.weight_stride);
    let mut energy_fj = vec![0.0f64; codes.len()];

    parallel::par_rows_mut_with_threads(
        threads.unwrap_or_else(parallel::max_threads),
        &mut energy_fj,
        1,
        || {
            (
                BatchSim::new(hw.mac().netlist(), hw.lib()),
                Vec::new(),
                Vec::new(),
            )
        },
        |(sim, from, to), idx, slot| {
            let code = codes[idx];
            let mut rng = code_rng(cfg, idx);
            let acts = act_stats.sample_activation_transitions(cfg.samples_per_weight, &mut rng);
            let psums = binning.sample_transitions(cfg.samples_per_weight, &mut rng);
            let mut acc = BatchAccumulator::new(sim.netlist().outputs().len());
            for ((af, at), (pf, pt)) in acts.iter().zip(&psums) {
                hw.mac()
                    .encode_into(code as i64, *af as u64, *pf as i64, from);
                hw.mac()
                    .encode_into(code as i64, *at as u64, *pt as i64, to);
                sim.settle(from);
                acc.record(&sim.transition(to));
            }
            slot[0] =
                acc.total_energy_fj() / cfg.samples_per_weight as f64 + cfg.baseline_fj_per_cycle;
        },
    );

    expand_profile(cfg, &all_codes, &codes, &energy_fj)
}

/// Reference implementation of the characterization loop on the scalar
/// [`Simulator`]: one allocation-heavy `settle`/`transition` round-trip
/// per sample, exactly as the flow ran before the batched engine
/// existed. Kept for differential testing and as the baseline of the
/// characterization-throughput bench.
///
/// Produces **bit-identical** profiles to [`characterize_power`].
///
/// # Panics
///
/// Panics if `act_stats` has no recorded transitions or the
/// configuration fails [`PowerConfig::validate`].
#[must_use]
pub fn characterize_power_scalar(
    hw: &MacHardware,
    act_stats: &TransitionStats,
    binning: &PsumBinning,
    cfg: &PowerConfig,
) -> WeightPowerProfile {
    if let Err(e) = cfg.validate() {
        panic!("invalid PowerConfig: {e}");
    }
    let all_codes = hw.weight_codes();
    let codes = strided_codes(&all_codes, cfg.weight_stride);
    let mut energy_fj = vec![0.0f64; codes.len()];

    parallel::par_rows_mut(
        &mut energy_fj,
        1,
        || Simulator::new(hw.mac().netlist(), hw.lib()),
        |sim, idx, slot| {
            let code = codes[idx];
            let mut rng = code_rng(cfg, idx);
            let acts = act_stats.sample_activation_transitions(cfg.samples_per_weight, &mut rng);
            let psums = binning.sample_transitions(cfg.samples_per_weight, &mut rng);
            let mut total = 0.0f64;
            for ((af, at), (pf, pt)) in acts.iter().zip(&psums) {
                let from = hw.mac().encode(code as i64, *af as u64, *pf as i64);
                let to = hw.mac().encode(code as i64, *at as u64, *pt as i64);
                sim.settle(&from);
                let stats = sim.transition(&to);
                total += stats.energy_fj;
            }
            slot[0] = total / cfg.samples_per_weight as f64 + cfg.baseline_fj_per_cycle;
        },
    );

    expand_profile(cfg, &all_codes, &codes, &energy_fj)
}

/// Expands strided per-code energies back to the full code list (skipped
/// codes inherit the nearest characterized energy) and converts to
/// power.
fn expand_profile(
    cfg: &PowerConfig,
    all_codes: &[i32],
    codes: &[i32],
    energy_fj: &[f64],
) -> WeightPowerProfile {
    let full_energy: Vec<f64> = all_codes
        .iter()
        .map(|&c| {
            let idx = match codes.binary_search(&c) {
                Ok(i) => i,
                Err(i) => {
                    if i == 0 {
                        0
                    } else if i >= codes.len() {
                        codes.len() - 1
                    } else if (c - codes[i - 1]).abs() <= (codes[i] - c).abs() {
                        i - 1
                    } else {
                        i
                    }
                }
            };
            energy_fj[idx]
        })
        .collect();
    let power_uw: Vec<f64> = full_energy
        .iter()
        .map(|e| e / cfg.clock_ps * 1000.0)
        .collect();
    WeightPowerProfile {
        codes: all_codes.to_vec(),
        energy_fj: full_energy,
        power_uw,
        clock_ps: cfg.clock_ps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::bins::PsumBinning;

    fn fake_stats() -> (TransitionStats, PsumBinning) {
        let mut stats = TransitionStats::new();
        // Mostly small-step transitions like real activations.
        for a in 0..14u8 {
            stats.record_activation(a, a + 1, 20);
            stats.record_activation(a + 1, a, 20);
            stats.record_activation(a, a.wrapping_add(3), 3);
        }
        let samples: Vec<(i32, i32)> = (0..300)
            .map(|i| ((i * 37) % 1000 - 500, (i * 91) % 1000 - 500))
            .collect();
        let binning = PsumBinning::from_samples(&samples, 8, 12, 0);
        (stats, binning)
    }

    fn quick_cfg() -> PowerConfig {
        PowerConfig {
            samples_per_weight: 40,
            seed: 1,
            clock_ps: 200.0,
            weight_stride: 1,
            baseline_fj_per_cycle: 0.0,
        }
    }

    #[test]
    fn stride_keeps_full_code_coverage() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let cfg = PowerConfig {
            weight_stride: 4,
            baseline_fj_per_cycle: 0.0,
            ..quick_cfg()
        };
        let profile = characterize_power(&hw, &stats, &binning, &cfg);
        assert_eq!(profile.codes().len(), hw.weight_codes().len());
        // Neighbours of a characterized code share its energy.
        assert_eq!(profile.energy_fj(4), profile.energy_fj(5));
    }

    #[test]
    fn zero_weight_is_cheapest() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let profile = characterize_power(&hw, &stats, &binning, &quick_cfg());
        let zero = profile.power_uw(0);
        for &c in profile.codes() {
            if c != 0 {
                assert!(
                    zero <= profile.power_uw(c) + 1e-9,
                    "code {c} ({}) beat zero ({zero})",
                    profile.power_uw(c)
                );
            }
        }
    }

    #[test]
    fn characterization_is_deterministic() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let a = characterize_power(&hw, &stats, &binning, &quick_cfg());
        let b = characterize_power(&hw, &stats, &binning, &quick_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn profile_is_identical_at_any_thread_count() {
        // The per-code RNG is derived from the global code index, so
        // chunk geometry must never leak into the results.
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let cfg = quick_cfg();
        let reference = characterize_power_with_threads(&hw, &stats, &binning, &cfg, Some(1));
        for threads in [2, 3, 5, 16] {
            let p = characterize_power_with_threads(&hw, &stats, &binning, &cfg, Some(threads));
            assert_eq!(p, reference, "thread count {threads} changed the profile");
        }
        let auto = characterize_power(&hw, &stats, &binning, &cfg);
        assert_eq!(auto, reference);
    }

    #[test]
    fn all_three_engines_produce_identical_profiles() {
        // The BitSim hot path and the BatchSim reference must both be
        // bit-identical to the scalar Simulator path, energies included.
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let cfg = PowerConfig {
            weight_stride: 2,
            ..quick_cfg()
        };
        let bitsim = characterize_power(&hw, &stats, &binning, &cfg);
        let batched = characterize_power_batched(&hw, &stats, &binning, &cfg);
        let scalar = characterize_power_scalar(&hw, &stats, &binning, &cfg);
        assert_eq!(bitsim, scalar);
        assert_eq!(batched, scalar);
    }

    #[test]
    fn pruned_profile_is_bit_identical_to_unpruned() {
        // The per-code prune plan only removes gates it proved can
        // never toggle with the weight bus held, so the profile must
        // match the all-gates run to the last f64 bit.
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let cfg = quick_cfg();
        let pruned = characterize_power(&hw, &stats, &binning, &cfg);
        let unpruned = characterize_power_unpruned(&hw, &stats, &binning, &cfg);
        assert_eq!(pruned, unpruned);
    }

    #[test]
    fn non_multiple_of_64_sample_counts_stay_identical() {
        // Tail masking: sample budgets below, at and just above the
        // 64-lane word width must all reproduce the scalar fold.
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        for samples in [1, 63, 64, 65, 70, 130] {
            let cfg = PowerConfig {
                samples_per_weight: samples,
                weight_stride: 4,
                ..quick_cfg()
            };
            let bitsim = characterize_power(&hw, &stats, &binning, &cfg);
            let scalar = characterize_power_scalar(&hw, &stats, &binning, &cfg);
            assert_eq!(bitsim, scalar, "diverged at {samples} samples");
        }
    }

    #[test]
    #[should_panic(expected = "samples per weight must be at least 1")]
    fn zero_samples_is_rejected_with_clear_error() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let cfg = PowerConfig {
            samples_per_weight: 0,
            ..quick_cfg()
        };
        let _ = characterize_power(&hw, &stats, &binning, &cfg);
    }

    #[test]
    #[should_panic(expected = "weight_stride must be at least 1")]
    fn zero_stride_is_rejected_with_clear_error() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let cfg = PowerConfig {
            weight_stride: 0,
            ..quick_cfg()
        };
        let _ = characterize_power(&hw, &stats, &binning, &cfg);
    }

    #[test]
    fn validate_accepts_default_config() {
        assert_eq!(PowerConfig::default().validate(), Ok(()));
    }

    #[test]
    fn threshold_selection_keeps_cheap_codes_and_zero() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let profile = characterize_power(&hw, &stats, &binning, &quick_cfg());
        let powers: Vec<f64> = profile
            .codes()
            .iter()
            .map(|&c| profile.power_uw(c))
            .collect();
        let median = {
            let mut p = powers.clone();
            p.sort_by(|a, b| a.partial_cmp(b).unwrap());
            p[p.len() / 2]
        };
        let kept = profile.codes_below(median);
        assert!(kept.contains(&0));
        assert!(kept.len() < profile.codes().len());
        assert!(kept.len() >= profile.codes().len() / 4);
    }

    #[test]
    fn energy_model_round_trip() {
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let profile = characterize_power(&hw, &stats, &binning, &quick_cfg());
        let model = profile.to_energy_model(0.3, 100.0);
        assert!((model.energy_fj(0) - profile.energy_fj(0)).abs() < 1e-9);
        assert!((model.energy_fj(5) - profile.energy_fj(5)).abs() < 1e-9);
        assert!(model.idle_fj() < model.energy_fj(0) + 1e-9);
    }

    #[test]
    fn powers_of_two_are_cheap() {
        // Shift-like weights should sit low in the distribution, the
        // paper's §II observation.
        let hw = MacHardware::small();
        let (stats, binning) = fake_stats();
        let profile = characterize_power(&hw, &stats, &binning, &quick_cfg());
        let p2 = profile.power_uw(2);
        let p7 = profile.power_uw(7); // dense bit pattern 111
        assert!(p2 < p7, "power-of-two 2 ({p2}) should undercut 7 ({p7})");
    }
}
