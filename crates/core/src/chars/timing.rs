//! Per-weight timing profiles (paper §III-B, Figs. 3 and 5).
//!
//! The paper splits MAC timing analysis in two to stay tractable:
//!
//! 1. **Dynamic timing analysis (DTA) of the multiplier** — the weight
//!    input is fixed and all activation transitions are applied; the
//!    arrival time of the last toggle of each product bit is recorded.
//! 2. **Static timing analysis (STA) of the adder** — the longest path
//!    from each product bit to the adder output (and from the
//!    partial-sum input to the output).
//!
//! The MAC delay of a `(weight, activation transition)` pair is then
//! `max_j (dta_arrival[j] + sta_from_product[j])` — Fig. 5 — with the
//! partial-sum STA path as a weight-independent floor.

use crate::chars::{CharConfigError, MacHardware};
use gatesim::{BatchSim, PrunePlan, Simulator, Sta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the timing characterization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Enumerate all `2^(2·act_bits)` activation transitions per weight
    /// (paper behaviour). When false, sample `samples` transitions.
    pub exhaustive: bool,
    /// Number of sampled transitions per weight when not exhaustive.
    pub samples: usize,
    /// RNG seed for sampled mode.
    pub seed: u64,
    /// Transitions with a composed delay above this floor are stored
    /// individually (they are the removal candidates of the delay
    /// selection); everything below only lands in the histogram.
    pub slow_floor_ps: f64,
    /// Characterize only every `weight_stride`-th code (plus 0 and the
    /// extremes); skipped codes inherit the nearest characterized
    /// profile. 1 (the default) characterizes everything.
    pub weight_stride: usize,
}

impl TimingConfig {
    /// Checks the configuration for values that cannot produce a
    /// meaningful profile.
    ///
    /// # Errors
    ///
    /// [`CharConfigError::ZeroSamples`] if sampled mode is requested
    /// with `samples == 0`, [`CharConfigError::ZeroStride`] if
    /// `weight_stride` is 0.
    pub fn validate(&self) -> Result<(), CharConfigError> {
        if !self.exhaustive && self.samples == 0 {
            return Err(CharConfigError::ZeroSamples);
        }
        if self.weight_stride == 0 {
            return Err(CharConfigError::ZeroStride);
        }
        Ok(())
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            exhaustive: true,
            samples: 4096,
            seed: 0x7133_0001,
            slow_floor_ps: 0.0,
            weight_stride: 1,
        }
    }
}

/// Timing profile of a single weight value.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTiming {
    /// The weight code.
    pub code: i32,
    /// Maximum composed MAC delay over all analysed activation
    /// transitions, ps (multiplier side only — compare against
    /// [`WeightTimingProfile::psum_floor_ps`] for the full MAC bound).
    pub max_delay_ps: f64,
    /// Histogram of composed delays in 1 ps buckets (Fig. 3 series).
    pub histogram: Vec<u64>,
    /// Activation transitions whose composed delay exceeds the
    /// configured floor: `(from, to, delay_ps)`.
    pub slow: Vec<(u8, u8, f32)>,
}

/// Timing profiles for every weight value plus the adder-side facts.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightTimingProfile {
    /// Per-weight profiles, ascending by code.
    pub per_weight: Vec<WeightTiming>,
    /// Longest partial-sum → output path of the adder (STA), ps. A
    /// weight-independent lower bound on the MAC clock period.
    pub psum_floor_ps: f64,
    /// Longest product-bit → output path table used in composition, ps.
    pub adder_from_product_ps: Vec<f64>,
    /// The floor above which individual slow transitions were stored.
    pub slow_floor_ps: f64,
}

impl WeightTimingProfile {
    /// The profile of a weight code.
    ///
    /// # Panics
    ///
    /// Panics if the code was not characterized.
    #[must_use]
    pub fn timing(&self, code: i32) -> &WeightTiming {
        let idx = self
            .per_weight
            .binary_search_by_key(&code, |t| t.code)
            .expect("code not characterized");
        &self.per_weight[idx]
    }

    /// The worst composed delay over a set of weight codes, ps.
    #[must_use]
    pub fn max_delay_over(&self, codes: &[i32]) -> f64 {
        codes
            .iter()
            .filter_map(|&c| {
                self.per_weight
                    .binary_search_by_key(&c, |t| t.code)
                    .ok()
                    .map(|i| self.per_weight[i].max_delay_ps)
            })
            .fold(self.psum_floor_ps, f64::max)
    }

    /// Global maximum composed delay (all weights, all transitions), ps.
    #[must_use]
    pub fn max_delay_ps(&self) -> f64 {
        self.max_delay_over(&self.per_weight.iter().map(|t| t.code).collect::<Vec<_>>())
    }

    /// Serializes the profile bit-exactly for the charstore container.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use charstore::wire;
        wire::put_usize(out, self.per_weight.len());
        for t in &self.per_weight {
            wire::put_i32(out, t.code);
            wire::put_f64(out, t.max_delay_ps);
            wire::put_usize(out, t.histogram.len());
            for &b in &t.histogram {
                wire::put_u64(out, b);
            }
            wire::put_usize(out, t.slow.len());
            for &(from, to, d) in &t.slow {
                wire::put_u8(out, from);
                wire::put_u8(out, to);
                wire::put_f32(out, d);
            }
        }
        wire::put_f64(out, self.psum_floor_ps);
        wire::put_usize(out, self.adder_from_product_ps.len());
        for &d in &self.adder_from_product_ps {
            wire::put_f64(out, d);
        }
        wire::put_f64(out, self.slow_floor_ps);
    }

    /// Deserializes a profile written by
    /// [`WeightTimingProfile::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation or implausible lengths (bounds are
    /// validated before any allocation).
    pub fn read_from(r: &mut charstore::wire::Reader<'_>) -> std::io::Result<Self> {
        let count = r.bounded_len(12)?;
        let mut per_weight = Vec::with_capacity(count);
        for _ in 0..count {
            let code = r.i32()?;
            let max_delay_ps = r.f64()?;
            let hist_len = r.bounded_len(8)?;
            // Histograms are the bulk of the artifact (512 buckets per
            // weight); decode each as one block.
            let histogram: Vec<u64> = r
                .take(hist_len * 8)?
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            let slow_len = r.bounded_len(6)?;
            let mut slow = Vec::with_capacity(slow_len);
            for _ in 0..slow_len {
                slow.push((r.u8()?, r.u8()?, r.f32()?));
            }
            per_weight.push(WeightTiming {
                code,
                max_delay_ps,
                histogram,
                slow,
            });
        }
        let psum_floor_ps = r.f64()?;
        let adder_len = r.bounded_len(8)?;
        let mut adder_from_product_ps = Vec::with_capacity(adder_len);
        for _ in 0..adder_len {
            adder_from_product_ps.push(r.f64()?);
        }
        let slow_floor_ps = r.f64()?;
        Ok(WeightTimingProfile {
            per_weight,
            psum_floor_ps,
            adder_from_product_ps,
            slow_floor_ps,
        })
    }
}

/// Adder-side STA facts shared by the batched and scalar paths: the
/// product-bit → output delay table and the psum-path floor.
fn adder_sta(hw: &MacHardware) -> (Vec<f64>, f64) {
    // STA on the MAC netlist: product bits and psum ports only feed the
    // adder, so these are adder-side delays.
    let sta = Sta::new(hw.mac().netlist(), hw.lib());
    let adder_from_product_ps: Vec<f64> = sta
        .output_delay_table(hw.mac().product_nets())
        .into_iter()
        .map(|d| d.unwrap_or(0.0))
        .collect();
    let psum_floor_ps = hw
        .mac()
        .psum_ports()
        .iter()
        .filter_map(|&p| sta.max_delay_to_outputs_from(p))
        .fold(0.0, f64::max);
    (adder_from_product_ps, psum_floor_ps)
}

/// The per-code RNG for sampled timing characterization. Derived from
/// the *global* code index only, never from chunk geometry, so results
/// are identical at any thread count.
fn code_rng(cfg: &TimingConfig, code_idx: usize) -> StdRng {
    StdRng::seed_from_u64(cfg.seed ^ ((code_idx as u64) << 10))
}

/// Folds one measured transition into a weight's profile. `arrival` maps
/// a product-bit slot to its last-toggle arrival in ps.
#[allow(clippy::too_many_arguments)]
fn fold_transition(
    cfg: &TimingConfig,
    adder_table: &[f64],
    arrival: impl Fn(usize) -> f64,
    from: u32,
    to: u32,
    hist: &mut [u64],
    max_delay: &mut f64,
    slow: &mut Vec<(u8, u8, f32)>,
) {
    let mut composed = 0.0f64;
    for (j, &adder_d) in adder_table.iter().enumerate() {
        let arr = arrival(j);
        if arr > 0.0 {
            composed = composed.max(arr + adder_d);
        }
    }
    let bucket = (composed.round() as usize).min(hist.len() - 1);
    hist[bucket] += 1;
    if composed > *max_delay {
        *max_delay = composed;
    }
    if composed > cfg.slow_floor_ps && composed > 0.0 {
        slow.push((from as u8, to as u8, composed as f32));
    }
}

/// Feeds the `(from, to)` activation pairs analysed for one weight code
/// to `f`: either the full off-diagonal square or `cfg.samples` draws
/// from the code's RNG stream. Callback-driven so the hot loops stay
/// allocation-free.
fn for_each_transition_pair(
    cfg: &TimingConfig,
    levels: u32,
    code_idx: usize,
    mut f: impl FnMut(u32, u32),
) {
    if cfg.exhaustive {
        for from in 0..levels {
            for to in 0..levels {
                if from != to {
                    f(from, to);
                }
            }
        }
    } else {
        let mut rng = code_rng(cfg, code_idx);
        for _ in 0..cfg.samples {
            let from = rng.random_range(0..levels);
            let to = rng.random_range(0..levels);
            if from != to {
                f(from, to);
            }
        }
    }
}

/// Runs the split DTA/STA timing characterization.
///
/// The standalone multiplier netlist is structurally identical to the
/// multiplier embedded in the MAC (both come from the same generator),
/// so product-bit arrival times measured on it compose exactly with the
/// MAC-adder STA table. Per-weight dynamic timing runs on the batched
/// [`BatchSim`] engine under a per-code [`PrunePlan`] that pins the
/// held weight bus — the weight's desensitized cone is proven silent
/// and skipped, with bit-identical arrivals (asserted against the
/// unpruned scalar reference in the test suite).
///
/// # Panics
///
/// Panics if the configuration fails [`TimingConfig::validate`].
#[must_use]
pub fn characterize_timing(hw: &MacHardware, cfg: &TimingConfig) -> WeightTimingProfile {
    characterize_timing_with_threads(hw, cfg, None)
}

/// [`characterize_timing`] with an explicit worker-thread count (`None`
/// uses the machine's available parallelism). Exposed so the test suite
/// can prove the profile is identical at any thread count.
///
/// # Panics
///
/// Panics if the configuration fails [`TimingConfig::validate`].
#[must_use]
pub fn characterize_timing_with_threads(
    hw: &MacHardware,
    cfg: &TimingConfig,
    threads: Option<usize>,
) -> WeightTimingProfile {
    if let Err(e) = cfg.validate() {
        panic!("invalid TimingConfig: {e}");
    }
    let (adder_from_product_ps, psum_floor_ps) = adder_sta(hw);
    let all_codes = hw.weight_codes();
    let codes = super::power::strided_codes(&all_codes, cfg.weight_stride);
    let levels = hw.act_levels() as u32;
    let mut per_weight: Vec<WeightTiming> = codes
        .iter()
        .map(|&code| WeightTiming {
            code,
            max_delay_ps: 0.0,
            histogram: Vec::new(),
            slow: Vec::new(),
        })
        .collect();
    let product_nets = hw.mult_netlist().outputs().to_vec();
    let adder_table = &adder_from_product_ps;

    parallel::par_rows_mut_with_threads(
        threads.unwrap_or_else(parallel::max_threads),
        &mut per_weight,
        1,
        || (Vec::new(), Vec::new()),
        |(from_buf, to_buf), idx, slot| {
            let code = slot[0].code;
            // Per-code engine with the weight bus pinned: the prune
            // plan proves the weight's dead multiplier cone silent, so
            // the DTA sweep only simulates the sensitized logic.
            // Arrival times are unchanged — pruned gates never toggle,
            // hence never set an arrival.
            let plan = PrunePlan::new(hw.mult_netlist(), hw.lib(), &hw.mult_weight_pins(code));
            let mut sim = BatchSim::with_plan(hw.mult_netlist(), hw.lib(), &plan);
            sim.observe(&product_nets);
            let mut hist = vec![0u64; 512];
            let mut max_delay = 0.0f64;
            let mut slow = Vec::new();
            for_each_transition_pair(cfg, levels, idx, |from, to| {
                hw.encode_mult_into(code as i64, from as u64, from_buf);
                hw.encode_mult_into(code as i64, to as u64, to_buf);
                sim.settle(from_buf);
                let view = sim.transition(to_buf);
                fold_transition(
                    cfg,
                    adder_table,
                    |j| view.observed_arrival_ps(j),
                    from,
                    to,
                    &mut hist,
                    &mut max_delay,
                    &mut slow,
                );
            });
            slot[0].histogram = hist;
            slot[0].max_delay_ps = max_delay;
            slot[0].slow = slow;
        },
    );

    expand_timing(
        &all_codes,
        &codes,
        &per_weight,
        psum_floor_ps,
        adder_from_product_ps,
        cfg,
    )
}

/// Reference implementation of the timing characterization on the
/// scalar [`Simulator`], kept for differential testing and as the
/// baseline of the characterization-throughput bench.
///
/// Produces **bit-identical** profiles to [`characterize_timing`].
///
/// # Panics
///
/// Panics if the configuration fails [`TimingConfig::validate`].
#[must_use]
pub fn characterize_timing_scalar(hw: &MacHardware, cfg: &TimingConfig) -> WeightTimingProfile {
    if let Err(e) = cfg.validate() {
        panic!("invalid TimingConfig: {e}");
    }
    let (adder_from_product_ps, psum_floor_ps) = adder_sta(hw);
    let all_codes = hw.weight_codes();
    let codes = super::power::strided_codes(&all_codes, cfg.weight_stride);
    let levels = hw.act_levels() as u32;
    let mut per_weight: Vec<WeightTiming> = codes
        .iter()
        .map(|&code| WeightTiming {
            code,
            max_delay_ps: 0.0,
            histogram: Vec::new(),
            slow: Vec::new(),
        })
        .collect();
    let product_nets = hw.mult_netlist().outputs().to_vec();
    let adder_table = &adder_from_product_ps;

    parallel::par_rows_mut(
        &mut per_weight,
        1,
        || {
            let mut sim = Simulator::new(hw.mult_netlist(), hw.lib());
            sim.observe(&product_nets);
            sim
        },
        |sim, idx, slot| {
            let code = slot[0].code;
            let mut hist = vec![0u64; 512];
            let mut max_delay = 0.0f64;
            let mut slow = Vec::new();
            for_each_transition_pair(cfg, levels, idx, |from, to| {
                sim.settle(&hw.encode_mult(code as i64, from as u64));
                let stats = sim.transition(&hw.encode_mult(code as i64, to as u64));
                fold_transition(
                    cfg,
                    adder_table,
                    |j| stats.observed_arrival_ps(j),
                    from,
                    to,
                    &mut hist,
                    &mut max_delay,
                    &mut slow,
                );
            });
            slot[0].histogram = hist;
            slot[0].max_delay_ps = max_delay;
            slot[0].slow = slow;
        },
    );

    expand_timing(
        &all_codes,
        &codes,
        &per_weight,
        psum_floor_ps,
        adder_from_product_ps,
        cfg,
    )
}

/// Expands strided per-weight profiles back to the full code list
/// (skipped codes inherit the nearest characterized profile, re-labelled
/// with their own code).
fn expand_timing(
    all_codes: &[i32],
    codes: &[i32],
    per_weight: &[WeightTiming],
    psum_floor_ps: f64,
    adder_from_product_ps: Vec<f64>,
    cfg: &TimingConfig,
) -> WeightTimingProfile {
    let expanded: Vec<WeightTiming> = all_codes
        .iter()
        .map(|&c| {
            let idx = match codes.binary_search(&c) {
                Ok(i) => i,
                Err(i) => {
                    if i == 0 {
                        0
                    } else if i >= codes.len() {
                        codes.len() - 1
                    } else if (c - codes[i - 1]).abs() <= (codes[i] - c).abs() {
                        i - 1
                    } else {
                        i
                    }
                }
            };
            let mut t = per_weight[idx].clone();
            t.code = c;
            t
        })
        .collect();

    WeightTimingProfile {
        per_weight: expanded,
        psum_floor_ps,
        adder_from_product_ps,
        slow_floor_ps: cfg.slow_floor_ps,
    }
}

/// Per-weight **hazard-free static** timing bound via netlist
/// specialization.
///
/// Fixes the weight bus of the standalone multiplier to `code`,
/// constant-propagates (removing every path the weight desensitizes —
/// the paper's §II observation), runs STA on what remains, and composes
/// with the adder table like the dynamic path.
///
/// This bounds the *hazard-free* settling delay only: glitch cascades
/// can propagate through logically-constant nets and arrive later, which
/// the event-driven DTA of [`characterize_timing`] captures and this
/// bound does not. That asymmetry is exactly why the paper performs
/// dynamic analysis on the multiplier instead of static case analysis —
/// this function exists to quantify the difference (see the timing
/// comparison in the test suite).
///
/// Returns the composed bound in ps (0 when the multiplier collapses to
/// constants, e.g. for weight 0).
#[must_use]
pub fn sta_bound_per_weight(hw: &MacHardware, code: i32) -> f64 {
    use gatesim::netlist::to_bits;
    use gatesim::transform::specialize;

    let mult = hw.mult_netlist();
    let bits = to_bits(code as i64, hw.weight_bits());
    let assignments: Vec<(gatesim::NetId, bool)> = bits
        .iter()
        .enumerate()
        .map(|(i, &v)| (mult.inputs()[i], v))
        .collect();
    let spec = specialize(mult, &assignments);

    // Adder-side table from the full MAC.
    let sta_mac = Sta::new(hw.mac().netlist(), hw.lib());
    let adder_from_product: Vec<f64> = sta_mac
        .output_delay_table(hw.mac().product_nets())
        .into_iter()
        .map(|d| d.unwrap_or(0.0))
        .collect();

    // Multiplier-side arrivals on the specialized netlist.
    let sta_spec = Sta::new(&spec.netlist, hw.lib());
    let arrivals = sta_spec.arrivals_from_inputs();
    let mut bound = 0.0f64;
    for (j, &out) in spec.netlist.outputs().iter().enumerate() {
        if spec.const_outputs[j].is_some() {
            continue; // constant product bit: no dynamic path
        }
        if let Some(t) = arrivals[out.index()] {
            bound = bound.max(t + adder_from_product[j]);
        }
    }
    bound
}

/// Composes a multiplier arrival vector with an adder STA table — the
/// worked example of the paper's Fig. 5, exposed for testing and
/// documentation.
///
/// `arrivals[j]` is the last-toggle time of product bit `j` (0 = did not
/// toggle); `adder[j]` is the STA delay from product bit `j` to the
/// output; `psum_delay` is the partial-sum STA path.
///
/// # Examples
///
/// ```
/// // Fig. 5: arrivals [5, 8, 0, 0], adder [4, 3, 2, 1], psum path 6
/// // -> max{5+4, 8+3, 6} = 11.
/// let d = powerpruning::chars::timing::compose_delay(&[5.0, 8.0, 0.0, 0.0], &[4.0, 3.0, 2.0, 1.0], 6.0);
/// assert_eq!(d, 11.0);
/// ```
#[must_use]
pub fn compose_delay(arrivals: &[f64], adder: &[f64], psum_delay: f64) -> f64 {
    let mult_side = arrivals
        .iter()
        .zip(adder)
        .filter(|&(&a, _)| a > 0.0)
        .map(|(&a, &d)| a + d)
        .fold(0.0, f64::max);
    mult_side.max(psum_delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> TimingConfig {
        TimingConfig {
            exhaustive: true,
            samples: 0,
            seed: 0,
            slow_floor_ps: 0.0,
            weight_stride: 1,
        }
    }

    #[test]
    fn stride_keeps_full_code_coverage() {
        let hw = MacHardware::small();
        let cfg = TimingConfig {
            weight_stride: 4,
            ..quick_cfg()
        };
        let profile = characterize_timing(&hw, &cfg);
        assert_eq!(profile.per_weight.len(), hw.weight_codes().len());
        // Skipped codes carry their own label but a neighbour's profile.
        assert_eq!(profile.timing(5).code, 5);
        assert_eq!(
            profile.timing(5).max_delay_ps,
            profile.timing(4).max_delay_ps
        );
    }

    #[test]
    fn profile_is_identical_at_any_thread_count() {
        let hw = MacHardware::small();
        let cfg = TimingConfig {
            exhaustive: false,
            samples: 64,
            slow_floor_ps: 100.0,
            ..quick_cfg()
        };
        let reference = characterize_timing_with_threads(&hw, &cfg, Some(1));
        for threads in [2, 3, 7] {
            let p = characterize_timing_with_threads(&hw, &cfg, Some(threads));
            assert_eq!(p, reference, "thread count {threads} changed the profile");
        }
    }

    #[test]
    fn batched_profile_matches_scalar_reference() {
        let hw = MacHardware::small();
        for cfg in [
            quick_cfg(),
            TimingConfig {
                exhaustive: false,
                samples: 128,
                slow_floor_ps: 50.0,
                weight_stride: 3,
                ..quick_cfg()
            },
        ] {
            let batched = characterize_timing(&hw, &cfg);
            let scalar = characterize_timing_scalar(&hw, &cfg);
            assert_eq!(batched, scalar);
        }
    }

    #[test]
    #[should_panic(expected = "samples per weight must be at least 1")]
    fn sampled_mode_with_zero_samples_is_rejected() {
        let hw = MacHardware::small();
        let cfg = TimingConfig {
            exhaustive: false,
            samples: 0,
            ..quick_cfg()
        };
        let _ = characterize_timing(&hw, &cfg);
    }

    #[test]
    #[should_panic(expected = "weight_stride must be at least 1")]
    fn zero_stride_is_rejected() {
        let hw = MacHardware::small();
        let cfg = TimingConfig {
            weight_stride: 0,
            ..quick_cfg()
        };
        let _ = characterize_timing(&hw, &cfg);
    }

    #[test]
    fn validate_accepts_exhaustive_mode_with_zero_samples() {
        let cfg = TimingConfig {
            exhaustive: true,
            samples: 0,
            ..TimingConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn paper_fig5_example() {
        let d = compose_delay(&[5.0, 8.0, 0.0, 0.0], &[4.0, 3.0, 2.0, 1.0], 6.0);
        assert_eq!(d, 11.0);
    }

    #[test]
    fn psum_floor_dominates_when_mult_is_quiet() {
        let d = compose_delay(&[0.0, 0.0], &[4.0, 3.0], 6.0);
        assert_eq!(d, 6.0);
    }

    #[test]
    fn zero_weight_never_sensitizes_the_multiplier() {
        let hw = MacHardware::small();
        let profile = characterize_timing(&hw, &quick_cfg());
        let zero = profile.timing(0);
        assert_eq!(
            zero.max_delay_ps, 0.0,
            "weight 0 should produce a constant multiplier output"
        );
    }

    #[test]
    fn different_weights_have_different_delay_profiles() {
        let hw = MacHardware::small();
        let profile = characterize_timing(&hw, &quick_cfg());
        let d_all: Vec<f64> = profile.per_weight.iter().map(|t| t.max_delay_ps).collect();
        let min = d_all.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = d_all.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "expected spread in per-weight max delays");
    }

    #[test]
    fn max_delay_over_subset_never_exceeds_global() {
        let hw = MacHardware::small();
        let profile = characterize_timing(&hw, &quick_cfg());
        let global = profile.max_delay_ps();
        let subset = profile.max_delay_over(&[1, 2, 3]);
        assert!(subset <= global + 1e-9);
        assert!(subset >= profile.psum_floor_ps);
    }

    #[test]
    fn slow_list_respects_floor() {
        let hw = MacHardware::small();
        let mut cfg = quick_cfg();
        let base = characterize_timing(&hw, &cfg);
        let global = base.max_delay_ps();
        cfg.slow_floor_ps = global * 0.8;
        let profile = characterize_timing(&hw, &cfg);
        for t in &profile.per_weight {
            for &(_, _, d) in &t.slow {
                assert!(f64::from(d) > cfg.slow_floor_ps);
            }
        }
        // At least the worst weight must have slow entries.
        let total_slow: usize = profile.per_weight.iter().map(|t| t.slow.len()).sum();
        assert!(total_slow > 0);
    }

    #[test]
    fn histogram_counts_all_transitions() {
        let hw = MacHardware::small();
        let profile = characterize_timing(&hw, &quick_cfg());
        let levels = hw.act_levels() as u64;
        let expected = levels * levels - levels; // from != to
        for t in &profile.per_weight {
            let total: u64 = t.histogram.iter().sum();
            assert_eq!(total, expected, "weight {}", t.code);
        }
    }

    #[test]
    fn adder_sta_floor_is_positive() {
        let hw = MacHardware::small();
        let profile = characterize_timing(&hw, &quick_cfg());
        assert!(profile.psum_floor_ps > 0.0);
        assert!(profile.adder_from_product_ps.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn specialized_sta_never_exceeds_full_composition_bound() {
        // Fixing the weight only removes paths, so the specialized
        // hazard-free bound can never exceed the full-netlist
        // composition bound (paper §II, checked structurally). The DTA
        // max is *not* bounded by it — glitch cascades may run through
        // logically-constant nets — which is why the paper uses dynamic
        // analysis; we only require DTA to respect the full bound.
        let hw = MacHardware::small();
        let profile = characterize_timing(&hw, &quick_cfg());
        let full_bound: f64 = {
            let sta = gatesim::Sta::new(hw.mult_netlist(), hw.lib());
            let mult_max = sta.critical_path_ps();
            let adder_max = profile
                .adder_from_product_ps
                .iter()
                .cloned()
                .fold(0.0, f64::max);
            mult_max + adder_max
        };
        for t in &profile.per_weight {
            let bound = sta_bound_per_weight(&hw, t.code);
            assert!(
                bound <= full_bound + 1e-6,
                "weight {}: specialized bound {} exceeds full bound {}",
                t.code,
                bound,
                full_bound
            );
            assert!(
                t.max_delay_ps <= full_bound + 1e-6,
                "weight {}: DTA {} exceeds full bound {}",
                t.code,
                t.max_delay_ps,
                full_bound
            );
        }
    }

    #[test]
    fn zero_weight_sta_bound_is_zero() {
        let hw = MacHardware::small();
        assert_eq!(sta_bound_per_weight(&hw, 0), 0.0);
    }

    #[test]
    fn specialized_sta_varies_across_weights() {
        let hw = MacHardware::small();
        let bounds: Vec<f64> = hw
            .weight_codes()
            .iter()
            .map(|&c| sta_bound_per_weight(&hw, c))
            .collect();
        let min = bounds.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bounds.iter().cloned().fold(0.0, f64::max);
        assert!(max > min, "expected per-weight spread in STA bounds");
    }
}
