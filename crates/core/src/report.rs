//! Experiment result types with paper-style formatting.

use std::fmt;

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Network-dataset label (e.g. "LeNet-5-CIFAR-10 (synthetic)").
    pub network: String,
    /// Baseline quantized accuracy.
    pub acc_orig: f64,
    /// Accuracy after the full proposed flow.
    pub acc_prop: f64,
    /// Baseline total power on Standard HW, mW.
    pub std_orig_mw: f64,
    /// Proposed total power on Standard HW (incl. voltage scaling), mW.
    pub std_prop_mw: f64,
    /// Baseline total power on Optimized HW, mW.
    pub opt_orig_mw: f64,
    /// Proposed total power on Optimized HW (incl. voltage scaling), mW.
    pub opt_prop_mw: f64,
    /// Number of selected weight values.
    pub weights: usize,
    /// Number of selected activation values.
    pub acts: usize,
    /// Original maximum MAC delay, ps.
    pub max_delay_orig_ps: f64,
    /// Maximum MAC delay after selection, ps.
    pub max_delay_prop_ps: f64,
    /// Voltage scaling label, e.g. "0.71/0.8".
    pub vdd_label: String,
    /// Share of the baseline Standard-HW power saved by voltage scaling
    /// alone (paper column "VS HW"), percent.
    pub vs_std_pct: f64,
    /// Share of the baseline Optimized-HW power saved by voltage
    /// scaling alone (paper column "VO HW"), percent.
    pub vs_opt_pct: f64,
}

impl Table1Row {
    /// Power reduction on Standard HW, percent.
    #[must_use]
    pub fn std_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.std_prop_mw / self.std_orig_mw)
    }

    /// Power reduction on Optimized HW, percent.
    #[must_use]
    pub fn opt_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.opt_prop_mw / self.opt_orig_mw)
    }

    /// Max-delay reduction, ps.
    #[must_use]
    pub fn delay_reduction_ps(&self) -> f64 {
        self.max_delay_orig_ps - self.max_delay_prop_ps
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<34} {:>6.1}% {:>6.1}% | {:>8.1} {:>8.1} {:>6.1}% | {:>8.1} {:>8.1} {:>6.1}% | {:>4} {:>4} | {:>5.0} ps | {:>9} | {:>5.1}% {:>5.1}%",
            self.network,
            100.0 * self.acc_orig,
            100.0 * self.acc_prop,
            self.std_orig_mw,
            self.std_prop_mw,
            self.std_reduction_pct(),
            self.opt_orig_mw,
            self.opt_prop_mw,
            self.opt_reduction_pct(),
            self.weights,
            self.acts,
            self.delay_reduction_ps(),
            self.vdd_label,
            self.vs_std_pct,
            self.vs_opt_pct,
        )
    }
}

/// Header line matching [`Table1Row`]'s Display layout.
#[must_use]
pub fn table1_header() -> String {
    format!(
        "{:<34} {:>7} {:>7} | {:>8} {:>8} {:>7} | {:>8} {:>8} {:>7} | {:>4} {:>4} | {:>8} | {:>9} | {:>6} {:>6}\n{}",
        "Network-Dataset",
        "AccO",
        "AccP",
        "StdOrig",
        "StdProp",
        "Red",
        "OptOrig",
        "OptProp",
        "Red",
        "Wei",
        "Act",
        "DelayRed",
        "Voltage",
        "VS HW",
        "VO HW",
        "-".repeat(150)
    )
}

/// One bar group of Fig. 7 (Baseline / Pruned / Proposed on Optimized
/// HW, with the dynamic/leakage split and accuracy).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Entry {
    /// Network label.
    pub network: String,
    /// `(variant label, dynamic mW, leakage mW, accuracy)` triples.
    pub points: Vec<(String, f64, f64, f64)>,
}

impl fmt::Display for Fig7Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (Optimized HW)", self.network)?;
        for (label, dyn_mw, leak_mw, acc) in &self.points {
            writeln!(
                f,
                "  {:<10} dyn {:>8.2} mW  leak {:>7.2} mW  total {:>8.2} mW  acc {:>5.1}%",
                label,
                dyn_mw,
                leak_mw,
                dyn_mw + leak_mw,
                100.0 * acc
            )?;
        }
        Ok(())
    }
}

/// One curve of Fig. 8 (power-threshold sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Series {
    /// Network label.
    pub network: String,
    /// `(threshold µW or NaN for "None", #weights, dynamic mW, leakage
    /// mW, accuracy)` per sweep point.
    pub points: Vec<(f64, usize, f64, f64, f64)>,
}

impl fmt::Display for Fig8Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — power threshold sweep (Optimized HW)", self.network)?;
        for (thr, n, dyn_mw, leak_mw, acc) in &self.points {
            let label = if thr.is_nan() {
                "None".to_string()
            } else {
                format!("{thr:.0} µW")
            };
            writeln!(
                f,
                "  thr {:<9} weights {:>3}  dyn {:>8.2} mW  leak {:>7.2} mW  acc {:>5.1}%",
                label,
                n,
                dyn_mw,
                leak_mw,
                100.0 * acc
            )?;
        }
        Ok(())
    }
}

/// One curve of Fig. 9 (max-delay / activation-count sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Series {
    /// Network label.
    pub network: String,
    /// `(delay threshold ps, #activation values, #weight values,
    /// accuracy)` per sweep point.
    pub points: Vec<(f64, usize, usize, f64)>,
}

impl fmt::Display for Fig9Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — max-delay sweep", self.network)?;
        for (thr, acts, weights, acc) in &self.points {
            writeln!(
                f,
                "  {:>5.0} ps  activations {:>3}  weights {:>3}  acc {:>5.1}%",
                thr,
                acts,
                weights,
                100.0 * acc
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Table1Row {
        Table1Row {
            network: "LeNet-5".into(),
            acc_orig: 0.807,
            acc_prop: 0.784,
            std_orig_mw: 281.6,
            std_prop_mw: 152.1,
            opt_orig_mw: 280.4,
            opt_prop_mw: 73.1,
            weights: 32,
            acts: 176,
            max_delay_orig_ps: 180.0,
            max_delay_prop_ps: 140.0,
            vdd_label: "0.71/0.8".into(),
            vs_std_pct: 13.7,
            vs_opt_pct: 6.4,
        }
    }

    #[test]
    fn reductions_match_paper_arithmetic() {
        let r = row();
        assert!((r.std_reduction_pct() - 46.0).abs() < 0.1);
        assert!((r.opt_reduction_pct() - 73.9).abs() < 0.1);
        assert_eq!(r.delay_reduction_ps(), 40.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let text = row().to_string();
        assert!(text.contains("LeNet-5"));
        assert!(text.contains("0.71/0.8"));
        assert!(text.contains("73.9"));
    }

    #[test]
    fn header_and_row_render() {
        let h = table1_header();
        assert!(h.contains("Network-Dataset"));
        assert!(h.contains("VO HW"));
    }

    #[test]
    fn fig_series_display() {
        let s = Fig8Series {
            network: "x".into(),
            points: vec![(f64::NAN, 255, 10.0, 2.0, 0.8), (900.0, 86, 8.0, 2.0, 0.79)],
        };
        let text = s.to_string();
        assert!(text.contains("None"));
        assert!(text.contains("900"));
    }
}
