//! Joint weight/activation selection by delay threshold (paper §III-B,
//! Fig. 6).
//!
//! Every `(weight, activation-from, activation-to)` combination with a
//! composed delay above the threshold must be eliminated by removing
//! either the weight value or one of the two activation values. Because
//! a removal kills many combinations at once, finding the optimal
//! removal sequence is hard; the paper removes a random member of the
//! currently worst combination, repeats until no combination exceeds
//! the threshold, and restarts the whole process several times (20 in
//! the experiments), keeping the best outcome.

use crate::chars::WeightTimingProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for the randomized delay selection.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySelectionConfig {
    /// Delay threshold, ps: all surviving combinations must be at or
    /// below it.
    pub threshold_ps: f64,
    /// Number of randomized restarts (paper: 20).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Weight codes that must never be removed (zero by default: it is
    /// the pruning target and never sensitizes multiplier paths).
    pub protected_weights: Vec<i32>,
    /// Relative odds of removing an activation instead of the weight
    /// when eliminating a combination (1 = uniform as in the paper's
    /// plain description). Weights are scarce after the power-threshold
    /// stage — the paper's Table I keeps all 32 power-selected weights
    /// through the delay stage — so biasing removals toward activations
    /// reproduces that outcome.
    pub activation_bias: u32,
}

impl Default for DelaySelectionConfig {
    fn default() -> Self {
        DelaySelectionConfig {
            threshold_ps: f64::INFINITY,
            restarts: 20,
            seed: 0xde1a_75e1,
            protected_weights: vec![0],
            activation_bias: 4,
        }
    }
}

/// Result of a delay selection.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySelection {
    /// Surviving weight codes (ascending).
    pub weights: Vec<i32>,
    /// Surviving activation codes (ascending).
    pub activations: Vec<i32>,
    /// The applied threshold, ps.
    pub threshold_ps: f64,
    /// Upper bound on the max delay of the surviving combinations, ps
    /// (includes the adder's partial-sum STA floor).
    pub achieved_max_ps: f64,
}

impl DelaySelection {
    /// Number of surviving weight codes.
    #[must_use]
    pub fn weight_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of surviving activation codes.
    #[must_use]
    pub fn activation_count(&self) -> usize {
        self.activations.len()
    }
}

/// Runs the randomized iterative removal over `restarts` attempts and
/// returns the selection keeping the most values (ties favour more
/// activations, matching the paper's preference to keep the activation
/// space large).
///
/// `candidate_weights` is the weight set entering this stage (typically
/// the power-selected weights); the activation candidates are all
/// `2^act_bits` codes.
///
/// # Panics
///
/// Panics if the profile's stored slow-combination floor is above the
/// threshold (the candidate list would be incomplete) or if
/// `candidate_weights` is empty.
#[must_use]
pub fn select_by_delay(
    profile: &WeightTimingProfile,
    candidate_weights: &[i32],
    act_levels: usize,
    cfg: &DelaySelectionConfig,
) -> DelaySelection {
    assert!(!candidate_weights.is_empty(), "no candidate weights");
    assert!(
        profile.slow_floor_ps <= cfg.threshold_ps,
        "profile slow floor {} is above threshold {} — recharacterize with a lower floor",
        profile.slow_floor_ps,
        cfg.threshold_ps
    );

    // Collect offending combinations once, sorted by descending delay so
    // a single pass always confronts the currently-worst combination.
    let mut combos: Vec<(f32, i32, u8, u8)> = Vec::new();
    for &w in candidate_weights {
        if let Ok(idx) = profile.per_weight.binary_search_by_key(&w, |t| t.code) {
            for &(f, t, d) in &profile.per_weight[idx].slow {
                if f64::from(d) > cfg.threshold_ps {
                    combos.push((d, w, f, t));
                }
            }
        }
    }
    combos.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite delays"));

    let protected: HashSet<i32> = cfg.protected_weights.iter().copied().collect();
    let mut best: Option<(usize, usize, DelaySelection)> = None;

    for restart in 0..cfg.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(restart as u64 * 0x9e37));
        let mut live_w: HashSet<i32> = candidate_weights.iter().copied().collect();
        let mut live_a: HashSet<i32> = (0..act_levels as i32).collect();

        for &(_, w, f, t) in &combos {
            if !live_w.contains(&w)
                || !live_a.contains(&(f as i32))
                || !live_a.contains(&(t as i32))
            {
                continue; // already eliminated
            }
            // Remove one participant at random (never a protected
            // weight; weight 0 has no slow combos anyway), with
            // activation removals weighted `activation_bias : 1`.
            let bias = cfg.activation_bias.max(1) as usize;
            let mut options: Vec<u8> = Vec::with_capacity(1 + 2 * bias);
            if !protected.contains(&w) {
                options.push(0);
            }
            // Interleaved [1, 2, 1, 2, …] — the index → choice mapping
            // is part of the seeded-run reproducibility contract.
            #[allow(clippy::same_item_push)]
            for _ in 0..bias {
                options.push(1);
                if t != f {
                    options.push(2);
                }
            }
            match options[rng.random_range(0..options.len())] {
                0 => {
                    live_w.remove(&w);
                }
                1 => {
                    live_a.remove(&(f as i32));
                }
                _ => {
                    live_a.remove(&(t as i32));
                }
            }
        }

        // Achieved bound: the worst surviving combination (or the stored
        // floor for combos we never materialized), never below the
        // adder's psum path.
        let mut achieved = profile.psum_floor_ps.max(profile.slow_floor_ps);
        for &(d, w, f, t) in &combos {
            if live_w.contains(&w) && live_a.contains(&(f as i32)) && live_a.contains(&(t as i32)) {
                achieved = achieved.max(f64::from(d));
            }
        }

        let mut weights: Vec<i32> = live_w.into_iter().collect();
        weights.sort_unstable();
        let mut activations: Vec<i32> = live_a.into_iter().collect();
        activations.sort_unstable();
        // Weights are scarcer than activations (dozens vs hundreds of
        // candidates), so they weigh more in the score.
        let score = (4 * weights.len() + activations.len(), activations.len());
        let candidate = DelaySelection {
            weights,
            activations,
            threshold_ps: cfg.threshold_ps,
            achieved_max_ps: achieved,
        };
        match &best {
            Some((s, a, _)) if (score.0, score.1) <= (*s, *a) => {}
            _ => best = Some((score.0, score.1, candidate)),
        }
    }

    best.expect("at least one restart ran").2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::{WeightTiming, WeightTimingProfile};

    /// Hand-built profile mirroring the paper's Fig. 6 example:
    /// combinations (w1,a5,a8,99), (w1,a2,a5,97), (w3,a5,a7,95) with a
    /// threshold of 90.
    fn fig6_profile() -> WeightTimingProfile {
        let mk = |code: i32, slow: Vec<(u8, u8, f32)>| WeightTiming {
            code,
            max_delay_ps: slow.iter().map(|s| f64::from(s.2)).fold(50.0, f64::max),
            histogram: vec![0; 128],
            slow,
        };
        WeightTimingProfile {
            per_weight: vec![
                mk(0, vec![]),
                mk(1, vec![(2, 5, 97.0), (5, 8, 99.0)]),
                mk(2, vec![]),
                mk(3, vec![(5, 7, 95.0)]),
            ],
            psum_floor_ps: 40.0,
            adder_from_product_ps: vec![10.0; 8],
            slow_floor_ps: 80.0,
        }
    }

    fn cfg(threshold: f64) -> DelaySelectionConfig {
        DelaySelectionConfig {
            threshold_ps: threshold,
            restarts: 20,
            seed: 3,
            protected_weights: vec![0],
            activation_bias: 4,
        }
    }

    #[test]
    fn all_surviving_combos_meet_threshold() {
        let profile = fig6_profile();
        let sel = select_by_delay(&profile, &[0, 1, 2, 3], 16, &cfg(90.0));
        // Check directly against the profile.
        for &w in &sel.weights {
            let idx = profile
                .per_weight
                .binary_search_by_key(&w, |t| t.code)
                .unwrap();
            for &(f, t, d) in &profile.per_weight[idx].slow {
                let alive =
                    sel.activations.contains(&(f as i32)) && sel.activations.contains(&(t as i32));
                assert!(
                    !alive || f64::from(d) <= 90.0,
                    "surviving combo (w={w}, {f}->{t}, {d}) violates threshold"
                );
            }
        }
        assert!(sel.achieved_max_ps <= 90.0);
    }

    #[test]
    fn protected_weight_survives() {
        let sel = select_by_delay(&fig6_profile(), &[0, 1, 2, 3], 16, &cfg(90.0));
        assert!(sel.weights.contains(&0));
    }

    #[test]
    fn loose_threshold_removes_nothing() {
        let sel = select_by_delay(&fig6_profile(), &[0, 1, 2, 3], 16, &cfg(200.0));
        assert_eq!(sel.weight_count(), 4);
        assert_eq!(sel.activation_count(), 16);
        assert!(sel.achieved_max_ps <= 99.0 + 1e-6);
    }

    #[test]
    fn restarts_find_a_small_removal_set() {
        // At threshold 90, removing just a5 kills all three combos; with
        // 20 restarts at least one should find a 1-removal solution (or
        // an equally-sized one).
        let sel = select_by_delay(&fig6_profile(), &[0, 1, 2, 3], 16, &cfg(90.0));
        let removed = (4 - sel.weight_count()) + (16 - sel.activation_count());
        assert!(
            removed <= 2,
            "expected a near-optimal removal set, removed {removed} values"
        );
    }

    #[test]
    fn achieved_bound_respects_psum_floor() {
        let mut profile = fig6_profile();
        profile.psum_floor_ps = 85.0;
        let sel = select_by_delay(&profile, &[0, 1, 2, 3], 16, &cfg(90.0));
        assert!(sel.achieved_max_ps >= 85.0);
    }

    #[test]
    #[should_panic(expected = "slow floor")]
    fn threshold_below_floor_is_rejected() {
        let _ = select_by_delay(&fig6_profile(), &[0, 1], 16, &cfg(70.0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = select_by_delay(&fig6_profile(), &[0, 1, 2, 3], 16, &cfg(90.0));
        let b = select_by_delay(&fig6_profile(), &[0, 1, 2, 3], 16, &cfg(90.0));
        assert_eq!(a, b);
    }
}
