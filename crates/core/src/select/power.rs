//! Weight selection by average-power threshold (paper §III-A3).

use crate::chars::WeightPowerProfile;

/// Result of a power-threshold weight selection.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSelection {
    /// The threshold applied, µW.
    pub threshold_uw: f64,
    /// The selected weight codes (always includes 0).
    pub weights: Vec<i32>,
}

impl PowerSelection {
    /// Number of selected weight codes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the selection is empty (never true in practice: zero is
    /// always kept).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Selects the weight codes whose characterized average power is at most
/// `threshold_uw` (zero is always kept).
#[must_use]
pub fn select_by_power(profile: &WeightPowerProfile, threshold_uw: f64) -> PowerSelection {
    PowerSelection {
        threshold_uw,
        weights: profile.codes_below(threshold_uw),
    }
}

/// The power threshold that keeps (approximately) `count` weight codes
/// — used to reproduce the paper's reported "#selected weights" (e.g.
/// 900 µW → 86 values, 800 µW → 36 values in the paper's library; the
/// absolute µW differ here but the count↔threshold mapping is the same
/// mechanism).
///
/// # Panics
///
/// Panics if `count` is zero or exceeds the number of characterized
/// codes.
#[must_use]
pub fn threshold_for_count(profile: &WeightPowerProfile, count: usize) -> f64 {
    let mut powers: Vec<f64> = profile
        .codes()
        .iter()
        .map(|&c| profile.power_uw(c))
        .collect();
    assert!(
        count > 0 && count <= powers.len(),
        "count {count} out of range 1..={}",
        powers.len()
    );
    powers.sort_by(|a, b| a.partial_cmp(b).expect("finite powers"));
    powers[count - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::bins::PsumBinning;
    use crate::chars::power::{characterize_power, PowerConfig};
    use crate::chars::MacHardware;
    use systolic::stats::TransitionStats;

    fn profile() -> WeightPowerProfile {
        let hw = MacHardware::small();
        let mut stats = TransitionStats::new();
        for a in 0..15u8 {
            stats.record_activation(a, a + 1, 5);
        }
        let samples: Vec<(i32, i32)> = (0..200)
            .map(|i| (i % 100 - 50, (i * 3) % 100 - 50))
            .collect();
        let binning = PsumBinning::from_samples(&samples, 6, 12, 0);
        characterize_power(
            &hw,
            &stats,
            &binning,
            &PowerConfig {
                samples_per_weight: 30,
                seed: 2,
                clock_ps: 200.0,
                weight_stride: 1,
                baseline_fj_per_cycle: 0.0,
            },
        )
    }

    #[test]
    fn tighter_threshold_selects_fewer_weights() {
        let p = profile();
        let t_loose = threshold_for_count(&p, 12);
        let t_tight = threshold_for_count(&p, 5);
        let loose = select_by_power(&p, t_loose);
        let tight = select_by_power(&p, t_tight);
        assert!(tight.len() <= loose.len());
        assert!(tight.weights.contains(&0));
    }

    #[test]
    fn threshold_for_count_brackets_count() {
        let p = profile();
        for target in [3usize, 7, 12] {
            let t = threshold_for_count(&p, target);
            let sel = select_by_power(&p, t);
            // Ties can add a few extra codes but never fewer.
            assert!(sel.len() >= target, "target {target}, got {}", sel.len());
        }
    }

    #[test]
    fn selected_weights_are_subset_of_codes() {
        let p = profile();
        let sel = select_by_power(&p, threshold_for_count(&p, 6));
        for w in &sel.weights {
            assert!(p.codes().contains(w));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_count_panics() {
        let p = profile();
        let _ = threshold_for_count(&p, 0);
    }
}
