//! Weight and activation selection.
//!
//! * [`power`] — weight selection by average-power threshold (paper
//!   §III-A3).
//! * [`delay`] — joint weight/activation selection by delay threshold
//!   via randomized iterative removal with restarts (paper §III-B,
//!   Fig. 6).

pub mod delay;
pub mod power;

pub use delay::{select_by_delay, DelaySelection, DelaySelectionConfig};
pub use power::{select_by_power, threshold_for_count, PowerSelection};
