//! The end-to-end PowerPruning flow and the experiment drivers behind
//! every table and figure of the paper.
//!
//! The flow (paper §III-C):
//!
//! 1. Quantization-aware training of the baseline network.
//! 2. Systolic execution to collect activation/partial-sum transition
//!    statistics (Fig. 4), then gate-level power characterization of
//!    every weight value (Fig. 2).
//! 3. Conventional magnitude pruning + retraining.
//! 4. Weight selection by power threshold + retraining (Fig. 8).
//! 5. Timing characterization (Fig. 3), then joint weight/activation
//!    selection by delay threshold + retraining (Fig. 9).
//! 6. Voltage scaling of the freed timing slack (Table I columns).
//!
//! Each step lives in a [`stages`] module behind the small
//! [`stages::Stage`] trait over a shared [`stages::PipelineCtx`]; the
//! [`Pipeline`] driver here only composes them. This keeps every stage
//! independently testable and lets future work cache, shard or
//! distribute stages without touching the orchestration.

mod config;
pub mod stages;

pub use config::{NetworkKind, PipelineConfig, Scale};

use crate::chars::{MacHardware, PsumBinning, WeightPowerProfile, WeightTimingProfile};
use crate::report::{Fig7Entry, Fig8Series, Fig9Series, Table1Row};
use crate::select::power::{select_by_power, threshold_for_count};
use crate::voltage::VoltageModel;
use nn::data::Dataset;
use nn::layers::GemmCapture;
use nn::model::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stages::characterize::{CaptureStage, CharacterizeStage, PrepareStage, TimingStage};
use stages::scale::{MeasureInput, MeasurePowerStage, VoltageScaleStage};
use stages::select::{
    cached_prune_retrain, delay_window, retrain_with_retry, DelaySelectInput, DelaySelectStage,
    PowerSelectInput, PowerSelectStage,
};
use stages::{PipelineCtx, Stage};
use std::sync::LazyLock;
use systolic::{HwVariant, MacEnergyModel, SystolicArray, TransitionStats};

/// One registered wall-clock histogram per pipeline stage (the registry
/// has no labels, so each stage gets its own metric name), plus the
/// whole-request histogram the service percentiles come from.
macro_rules! stage_seconds {
    ($name:ident, $metric:literal) => {
        static $name: LazyLock<obs::metrics::Histogram> =
            LazyLock::new(|| obs::metrics::histogram($metric, obs::metrics::LATENCY_SECONDS));
    };
}

stage_seconds!(PREPARE_SECONDS, "pipeline_prepare_seconds");
stage_seconds!(CAPTURE_SECONDS, "pipeline_capture_seconds");
stage_seconds!(CHARACTERIZE_SECONDS, "pipeline_characterize_seconds");
stage_seconds!(TIMING_SECONDS, "pipeline_timing_seconds");
stage_seconds!(REQUEST_SECONDS, "pipeline_request_seconds");

/// A trained network with its datasets.
#[derive(Debug)]
pub struct Prepared {
    /// The (quantization-aware trained) network.
    pub net: Network,
    /// Training split.
    pub train_data: Dataset,
    /// Test split.
    pub test_data: Dataset,
    /// Baseline test accuracy after QAT.
    pub accuracy: f64,
}

/// Hardware characterization products shared by the experiments.
#[derive(Debug)]
pub struct Characterization {
    /// Transition statistics from systolic execution.
    pub stats: TransitionStats,
    /// Partial-sum binning and bin-transition distribution.
    pub binning: PsumBinning,
    /// Per-weight power profile (Fig. 2).
    pub power_profile: WeightPowerProfile,
    /// Energy model handed to the array simulator.
    pub energy_model: MacEnergyModel,
}

/// The end-to-end experiment driver.
#[derive(Debug)]
pub struct Pipeline {
    /// Configuration.
    pub cfg: PipelineConfig,
    hw: MacHardware,
    array: SystolicArray,
    voltage: VoltageModel,
    cache: Option<std::sync::Arc<crate::cache::CharCache>>,
}

impl Pipeline {
    /// Creates a pipeline at the given scale with the paper's 8-bit MAC.
    ///
    /// When `cfg.cache` is set (the default), the characterization
    /// artifact store described by the environment is attached — see
    /// [`crate::cache::CharCache::from_env`] for the knobs.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Self {
        let cache = if cfg.cache {
            crate::cache::CharCache::from_env()
        } else {
            None
        };
        Pipeline::with_cache(cfg, cache)
    }

    /// Creates a pipeline with an explicit artifact store directory
    /// instead of the environment-selected one — used by tests, benches
    /// and the `charstore` CLI. `cfg.cache = false` and the
    /// `POWERPRUNING_CACHE=off` kill switch both still disable caching.
    #[must_use]
    pub fn with_cache_dir(cfg: PipelineConfig, dir: impl AsRef<std::path::Path>) -> Self {
        Pipeline::with_cache_dir_remote(cfg, dir, None)
    }

    /// [`Pipeline::with_cache_dir`] with an optional remote object tier
    /// (`host:port` of a `charserve` daemon) behind the local store —
    /// the `charstore warm --remote` path, and the way a fleet worker
    /// with an empty local store answers every stage from a warmed
    /// daemon. The same cache kill switches apply.
    #[must_use]
    pub fn with_cache_dir_remote(
        cfg: PipelineConfig,
        dir: impl AsRef<std::path::Path>,
        remote: Option<&str>,
    ) -> Self {
        let cache = if cfg.cache && !crate::cache::CharCache::disabled_by_env() {
            crate::cache::CharCache::open_with_remote(dir, remote).ok()
        } else {
            None
        };
        Pipeline::with_cache(cfg, cache)
    }

    fn with_cache(cfg: PipelineConfig, cache: Option<crate::cache::CharCache>) -> Self {
        Pipeline::with_cache_arc(cfg, cache.map(std::sync::Arc::new))
    }

    /// Creates a pipeline over an already-shared artifact cache — the
    /// `charserve` daemon path, where every worker thread serves
    /// requests through one store instance and one set of counters.
    /// Attaches the cache unconditionally: a service explicitly handed
    /// a store must keep answering from it regardless of `cfg.cache` or
    /// the environment kill switch.
    #[must_use]
    pub fn with_shared_cache(
        cfg: PipelineConfig,
        cache: std::sync::Arc<crate::cache::CharCache>,
    ) -> Self {
        Pipeline::with_cache_arc(cfg, Some(cache))
    }

    fn with_cache_arc(
        cfg: PipelineConfig,
        cache: Option<std::sync::Arc<crate::cache::CharCache>>,
    ) -> Self {
        Pipeline {
            hw: MacHardware::paper_default(),
            array: SystolicArray::new(cfg.array_config()),
            voltage: VoltageModel::finfet15(),
            cache,
            cfg,
        }
    }

    /// The characterized MAC hardware.
    #[must_use]
    pub fn hardware(&self) -> &MacHardware {
        &self.hw
    }

    /// The systolic array simulator.
    #[must_use]
    pub fn array(&self) -> &SystolicArray {
        &self.array
    }

    /// The attached artifact cache, if caching is enabled.
    #[must_use]
    pub fn cache(&self) -> Option<&crate::cache::CharCache> {
        self.cache.as_deref()
    }

    /// The shared stage context of this pipeline.
    #[must_use]
    pub fn ctx(&self) -> PipelineCtx<'_> {
        PipelineCtx {
            cfg: &self.cfg,
            hw: &self.hw,
            array: &self.array,
            voltage: &self.voltage,
            cache: self.cache.as_deref(),
        }
    }

    /// Trains the quantization-aware baseline for a network kind.
    #[must_use]
    pub fn prepare(&self, kind: NetworkKind) -> Prepared {
        let _span = obs::span(PrepareStage.name());
        PREPARE_SECONDS.time(|| PrepareStage.run(&self.ctx(), kind))
    }

    /// Captures the quantized GEMMs of a forward pass over a fixed
    /// evaluation batch.
    #[must_use]
    pub fn capture(&self, prepared: &mut Prepared) -> Vec<GemmCapture> {
        let _span = obs::span(CaptureStage.name());
        CAPTURE_SECONDS.time(|| CaptureStage.run(&self.ctx(), prepared))
    }

    /// Runs statistics collection + power characterization from captured
    /// GEMMs (paper Figs. 2 and 4).
    #[must_use]
    pub fn characterize(&self, captures: &[GemmCapture]) -> Characterization {
        let _span = obs::span(CharacterizeStage.name());
        CHARACTERIZE_SECONDS.time(|| CharacterizeStage.run(&self.ctx(), captures))
    }

    /// Runs the timing characterization with the given slow-combination
    /// floor (paper Fig. 3).
    #[must_use]
    pub fn characterize_timing(&self, slow_floor_ps: f64) -> WeightTimingProfile {
        let _span = obs::span(TimingStage.name());
        TIMING_SECONDS.time(|| TimingStage.run(&self.ctx(), slow_floor_ps))
    }

    /// Serves one full characterization request — the unit the
    /// `charserve` daemon deduplicates: baseline training, GEMM
    /// capture, power characterization and the probe-floor timing pass,
    /// every stage consulting the attached cache through the same
    /// lookup → compute → store path the standalone pipeline uses.
    ///
    /// A stored [`crate::cache::RequestManifest`] under the request key
    /// answers the whole request without touching a single stage; a
    /// computed request writes that manifest so the next identical
    /// request (from any process sharing the store) is a pure store
    /// read. The returned [`crate::cache::CharacterizationRun`] reports
    /// the training-epoch and gate-transition cost paid — exactly zero
    /// for any request answered from a warm store; under concurrent
    /// *distinct* computations in one process the counters are
    /// process-global, so a computing request reports an upper bound on
    /// its own work (see [`crate::cache::CharacterizationRun`]).
    #[must_use]
    pub fn characterization_request(&self, kind: NetworkKind) -> crate::cache::CharacterizationRun {
        let mut span = obs::span("characterization_request");
        span.field("kind", format!("{kind:?}"));
        let started = std::time::Instant::now();
        let run = self.characterization_request_inner(kind);
        REQUEST_SECONDS.observe_duration(started.elapsed());
        span.field("manifest_hit", run.manifest_hit);
        run
    }

    fn characterization_request_inner(
        &self,
        kind: NetworkKind,
    ) -> crate::cache::CharacterizationRun {
        let request_key = crate::cache::request_key(&self.cfg, kind);
        if let Some(cache) = self.cache() {
            if let Some(manifest) = cache.lookup_manifest(request_key) {
                return crate::cache::CharacterizationRun {
                    request_key,
                    manifest,
                    manifest_hit: true,
                    training_epochs: 0,
                    sim_transitions: 0,
                };
            }
        }
        let epochs_before = nn::train::epochs_run();
        let transitions_before = gatesim::sim_transitions();
        let ctx = self.ctx();
        let mut prepared = self.prepare(kind);
        let training = crate::cache::training_key(&ctx, kind);
        // Capture key before the capture runs: the key commits to the
        // exact network state the forward pass reads.
        let capture = crate::cache::capture_key(&ctx, &mut prepared);
        let captures = self.capture(&mut prepared);
        let characterization = crate::cache::characterization_key(&ctx, &captures);
        let chars = self.characterize(&captures);
        let timing = crate::cache::timing_key(&ctx, f64::MAX);
        let _ = self.characterize_timing(f64::MAX);
        let manifest = crate::cache::RequestManifest {
            training,
            capture,
            characterization,
            timing,
            accuracy: prepared.accuracy,
            captures: captures.len() as u64,
            power_codes: chars.power_profile.codes().len() as u64,
        };
        if let Some(cache) = self.cache() {
            cache.store_manifest(&ctx, request_key, &manifest);
        }
        crate::cache::CharacterizationRun {
            request_key,
            manifest,
            manifest_hit: false,
            training_epochs: nn::train::epochs_run() - epochs_before,
            sim_transitions: gatesim::sim_transitions() - transitions_before,
        }
    }

    /// Measures total power on both hardware variants, mW.
    #[must_use]
    pub fn measure_power(
        &self,
        captures: &[GemmCapture],
        model: &MacEnergyModel,
    ) -> (systolic::NetworkEnergyReport, systolic::NetworkEnergyReport) {
        MeasurePowerStage.run(&self.ctx(), MeasureInput { captures, model })
    }

    /// Runs the complete proposed flow for one network and produces its
    /// Table I row.
    #[must_use]
    pub fn run_table1_row(&self, kind: NetworkKind) -> Table1Row {
        let ctx = self.ctx();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf00d ^ (kind as u64));

        // 1. Baseline QAT.
        let mut prepared = self.prepare(kind);
        let acc_orig = prepared.accuracy;
        let captures_orig = self.capture(&mut prepared);

        // 2. Characterize and measure the baseline.
        let chars = self.characterize(&captures_orig);
        let (std_orig, opt_orig) = self.measure_power(&captures_orig, &chars.energy_model);

        // 3. Conventional pruning.
        let _ = cached_prune_retrain(&ctx, &mut prepared, self.cfg.prune_sparsity, &mut rng);

        // 4. Weight selection by power threshold (targeting the paper's
        //    per-network weight-value count).
        let power_sel = PowerSelectStage.run(
            &ctx,
            PowerSelectInput {
                profile: &chars.power_profile,
                target: kind.paper_weight_target(),
            },
        );
        let _ = retrain_with_retry(
            &ctx,
            &mut prepared,
            Some(&power_sel.weights),
            None,
            f64::NEG_INFINITY,
            &mut rng,
        );

        // 5. Timing characterization + delay sweep.
        let probe = self.characterize_timing(f64::MAX);
        let window = delay_window(&ctx, &probe);
        let timing = self.characterize_timing(window.floor_ps);

        let mut best_sel: Option<crate::select::DelaySelection> = None;
        let mut best_acc = acc_orig;
        let mut best_state = prepared.net.snapshot();
        let mut threshold_ps = window.base_max_rounded_ps - self.cfg.delay_step_ps;
        for _ in 0..self.cfg.max_delay_steps {
            if threshold_ps < window.floor_ps.max(timing.psum_floor_ps) {
                break;
            }
            let sel = DelaySelectStage.run(
                &ctx,
                DelaySelectInput {
                    timing: &timing,
                    candidates: &power_sel.weights,
                    threshold_ps,
                },
            );
            let acc = retrain_with_retry(
                &ctx,
                &mut prepared,
                Some(&sel.weights),
                Some(&sel.activations),
                acc_orig,
                &mut rng,
            );
            if acc + self.cfg.accuracy_drop_tolerance < acc_orig {
                // Accuracy dropped noticeably: roll back to the previous
                // point (weights *and* restriction sets) and stop.
                prepared.net.restore(&best_state);
                match &best_sel {
                    Some(prev) => {
                        prepared.net.set_weight_restriction(Some(nn::ValueSet::new(
                            prev.weights.iter().copied(),
                        )));
                        prepared
                            .net
                            .set_activation_restriction(Some(nn::ValueSet::new(
                                prev.activations.iter().copied(),
                            )));
                    }
                    None => {
                        prepared.net.set_weight_restriction(Some(nn::ValueSet::new(
                            power_sel.weights.iter().copied(),
                        )));
                        prepared.net.set_activation_restriction(None);
                    }
                }
                break;
            }
            best_acc = acc;
            best_state = prepared.net.snapshot();
            best_sel = Some(sel);
            threshold_ps -= self.cfg.delay_step_ps;
        }

        let (weights, acts, achieved_ps) = match &best_sel {
            Some(sel) => (
                sel.weight_count(),
                sel.activation_count(),
                sel.threshold_ps.max(timing.psum_floor_ps),
            ),
            None => (
                power_sel.weights.len(),
                self.hw.act_levels(),
                window.base_max_rounded_ps,
            ),
        };

        // 6. Proposed power (restricted network) + voltage scaling.
        let captures_prop = self.capture(&mut prepared);
        let (std_prop_raw, opt_prop_raw) = self.measure_power(&captures_prop, &chars.energy_model);
        let scaling = VoltageScaleStage.run(&ctx, (window.base_max_rounded_ps, achieved_ps));
        let scaled_model = chars
            .energy_model
            .scaled(scaling.dynamic_factor, scaling.leakage_factor);
        let (std_prop, opt_prop) = self.measure_power(&captures_prop, &scaled_model);

        Table1Row {
            network: kind.label().to_string(),
            acc_orig,
            acc_prop: best_acc,
            std_orig_mw: std_orig.total_power_mw(),
            std_prop_mw: std_prop.total_power_mw(),
            opt_orig_mw: opt_orig.total_power_mw(),
            opt_prop_mw: opt_prop.total_power_mw(),
            weights,
            acts,
            max_delay_orig_ps: window.base_max_rounded_ps,
            max_delay_prop_ps: achieved_ps,
            vdd_label: scaling.label(),
            vs_std_pct: 100.0 * (std_prop_raw.total_power_mw() - std_prop.total_power_mw())
                / std_orig.total_power_mw(),
            vs_opt_pct: 100.0 * (opt_prop_raw.total_power_mw() - opt_prop.total_power_mw())
                / opt_orig.total_power_mw(),
        }
    }

    /// Fig. 7: Baseline vs conventional pruning vs proposed, on
    /// Optimized HW.
    #[must_use]
    pub fn compare_conventional(&self, kind: NetworkKind) -> Fig7Entry {
        let ctx = self.ctx();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0x716 ^ (kind as u64));
        let mut prepared = self.prepare(kind);
        let captures = self.capture(&mut prepared);
        let chars = self.characterize(&captures);

        let mut points = Vec::new();
        let opt =
            self.array
                .run_network_energy(&captures, &chars.energy_model, HwVariant::Optimized);
        points.push((
            "Baseline".to_string(),
            opt.dynamic_power_mw(),
            opt.leakage_power_mw(),
            prepared.accuracy,
        ));

        let acc_pruned =
            cached_prune_retrain(&ctx, &mut prepared, self.cfg.prune_sparsity, &mut rng);
        let captures_pruned = self.capture(&mut prepared);
        let opt_pruned = self.array.run_network_energy(
            &captures_pruned,
            &chars.energy_model,
            HwVariant::Optimized,
        );
        points.push((
            "Pruned".to_string(),
            opt_pruned.dynamic_power_mw(),
            opt_pruned.leakage_power_mw(),
            acc_pruned,
        ));

        let sel = PowerSelectStage.run(
            &ctx,
            PowerSelectInput {
                profile: &chars.power_profile,
                target: kind.paper_weight_target(),
            },
        );
        let acc_prop = retrain_with_retry(
            &ctx,
            &mut prepared,
            Some(&sel.weights),
            None,
            f64::NEG_INFINITY,
            &mut rng,
        );
        let captures_prop = self.capture(&mut prepared);
        let opt_prop = self.array.run_network_energy(
            &captures_prop,
            &chars.energy_model,
            HwVariant::Optimized,
        );
        points.push((
            "Proposed".to_string(),
            opt_prop.dynamic_power_mw(),
            opt_prop.leakage_power_mw(),
            acc_prop,
        ));

        Fig7Entry {
            network: kind.label().to_string(),
            points,
        }
    }

    /// Fig. 8: sequential power-threshold sweep (the paper's ladder
    /// None → 900 → 850 → 825 → 800 µW, expressed as the equivalent
    /// weight-value counts 255/86/61/48/36).
    #[must_use]
    pub fn power_threshold_sweep(&self, kind: NetworkKind) -> Fig8Series {
        let ctx = self.ctx();
        let counts = [255usize, 86, 61, 48, 36];
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf18 ^ (kind as u64));
        let mut prepared = self.prepare(kind);
        let captures = self.capture(&mut prepared);
        let chars = self.characterize(&captures);

        let mut points = Vec::new();
        let opt =
            self.array
                .run_network_energy(&captures, &chars.energy_model, HwVariant::Optimized);
        points.push((
            f64::NAN,
            chars.power_profile.codes().len(),
            opt.dynamic_power_mw(),
            opt.leakage_power_mw(),
            prepared.accuracy,
        ));

        let baseline_acc = prepared.accuracy;
        for &count in &counts[1..] {
            let count = count.min(chars.power_profile.codes().len());
            let threshold = threshold_for_count(&chars.power_profile, count);
            let sel = select_by_power(&chars.power_profile, threshold);
            let acc = retrain_with_retry(
                &ctx,
                &mut prepared,
                Some(&sel.weights),
                None,
                baseline_acc,
                &mut rng,
            );
            let caps = self.capture(&mut prepared);
            let power =
                self.array
                    .run_network_energy(&caps, &chars.energy_model, HwVariant::Optimized);
            points.push((
                threshold,
                sel.weights.len(),
                power.dynamic_power_mw(),
                power.leakage_power_mw(),
                acc,
            ));
        }
        Fig8Series {
            network: kind.label().to_string(),
            points,
        }
    }

    /// Fig. 9: sequential max-delay sweep at a fixed power-selected
    /// weight set.
    #[must_use]
    pub fn delay_sweep(&self, kind: NetworkKind) -> Fig9Series {
        let ctx = self.ctx();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xf19 ^ (kind as u64));
        let mut prepared = self.prepare(kind);
        let captures = self.capture(&mut prepared);
        let chars = self.characterize(&captures);

        // Paper: weight threshold 825 µW for the first three networks,
        // 900 µW for EfficientNet — i.e. counts 48 and 86.
        let count = match kind {
            NetworkKind::EfficientNetLite => 86usize,
            _ => 48,
        };
        let power_sel = PowerSelectStage.run(
            &ctx,
            PowerSelectInput {
                profile: &chars.power_profile,
                target: count,
            },
        );
        let acc0 = retrain_with_retry(
            &ctx,
            &mut prepared,
            Some(&power_sel.weights),
            None,
            f64::NEG_INFINITY,
            &mut rng,
        );

        let probe = self.characterize_timing(f64::MAX);
        let window = delay_window(&ctx, &probe);
        let timing = self.characterize_timing(window.floor_ps);

        let mut points = vec![(
            window.base_max_rounded_ps,
            self.hw.act_levels(),
            power_sel.weights.len(),
            acc0,
        )];
        let mut threshold_ps = window.base_max_rounded_ps - self.cfg.delay_step_ps;
        for _ in 0..self.cfg.max_delay_steps {
            if threshold_ps < window.floor_ps.max(timing.psum_floor_ps) {
                break;
            }
            let sel = DelaySelectStage.run(
                &ctx,
                DelaySelectInput {
                    timing: &timing,
                    candidates: &power_sel.weights,
                    threshold_ps,
                },
            );
            let acc = retrain_with_retry(
                &ctx,
                &mut prepared,
                Some(&sel.weights),
                Some(&sel.activations),
                acc0,
                &mut rng,
            );
            points.push((
                threshold_ps,
                sel.activation_count(),
                sel.weight_count(),
                acc,
            ));
            threshold_ps -= self.cfg.delay_step_ps;
        }
        Fig9Series {
            network: kind.label().to_string(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stages::characterize::dataset_spec;
    use super::*;

    fn micro_pipeline() -> Pipeline {
        Pipeline::new(PipelineConfig::for_scale(Scale::Micro))
    }

    #[test]
    fn prepare_trains_above_chance() {
        let p = micro_pipeline();
        let prepared = p.prepare(NetworkKind::LeNet5);
        // 10 classes; QAT micro training should beat chance.
        assert!(
            prepared.accuracy > 0.15,
            "baseline accuracy {} at chance",
            prepared.accuracy
        );
    }

    #[test]
    fn capture_produces_gemms_with_valid_codes() {
        let p = micro_pipeline();
        let mut prepared = p.prepare(NetworkKind::LeNet5);
        let captures = p.capture(&mut prepared);
        assert!(!captures.is_empty());
        for c in &captures {
            assert!(c.weight_codes.iter().all(|&w| w >= -127));
        }
    }

    #[test]
    fn characterization_produces_full_profile() {
        let p = micro_pipeline();
        let mut prepared = p.prepare(NetworkKind::LeNet5);
        let captures = p.capture(&mut prepared);
        let chars = p.characterize(&captures);
        assert_eq!(chars.power_profile.codes().len(), 255);
        assert!(chars.power_profile.power_uw(0) < chars.power_profile.power_uw(-105));
        let (std_p, opt_p) = p.measure_power(&captures, &chars.energy_model);
        assert!(opt_p.total_power_mw() <= std_p.total_power_mw());
    }

    #[test]
    fn dataset_specs_differ_between_train_and_test() {
        let p = micro_pipeline();
        let a = dataset_spec(&p.ctx(), NetworkKind::ResNet20, true);
        let b = dataset_spec(&p.ctx(), NetworkKind::ResNet20, false);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn resnet50_micro_uses_reduced_classes() {
        let p = micro_pipeline();
        let spec = dataset_spec(&p.ctx(), NetworkKind::ResNet50, true);
        assert_eq!(spec.classes, 20);
    }

    #[test]
    fn stages_report_names() {
        use super::stages::characterize::{CharacterizeStage, PrepareStage, TimingStage};
        use super::stages::scale::{MeasurePowerStage, VoltageScaleStage};
        use super::stages::select::{DelaySelectStage, PowerSelectStage};
        use super::stages::Stage;
        assert_eq!(Stage::<NetworkKind>::name(&PrepareStage), "prepare");
        assert_eq!(
            Stage::<&[nn::layers::GemmCapture]>::name(&CharacterizeStage),
            "characterize"
        );
        assert_eq!(Stage::<f64>::name(&TimingStage), "timing");
        assert_eq!(
            Stage::<super::stages::select::PowerSelectInput>::name(&PowerSelectStage),
            "select-power"
        );
        assert_eq!(
            Stage::<super::stages::select::DelaySelectInput>::name(&DelaySelectStage),
            "select-delay"
        );
        assert_eq!(
            Stage::<super::stages::scale::MeasureInput>::name(&MeasurePowerStage),
            "measure-power"
        );
        assert_eq!(
            Stage::<(f64, f64)>::name(&VoltageScaleStage),
            "voltage-scale"
        );
    }

    #[test]
    fn voltage_stage_scales_with_slack() {
        let p = micro_pipeline();
        use super::stages::scale::VoltageScaleStage;
        use super::stages::Stage;
        let none = VoltageScaleStage.run(&p.ctx(), (180.0, 180.0));
        let some = VoltageScaleStage.run(&p.ctx(), (180.0, 150.0));
        assert!(some.dynamic_factor <= none.dynamic_factor);
    }
}
