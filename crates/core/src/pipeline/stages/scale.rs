//! Measurement and voltage-scaling stages: total systolic power on both
//! hardware variants and the conversion of freed timing slack into
//! supply-voltage savings (Table I).

use super::{PipelineCtx, Stage};
use crate::voltage::VoltageScaling;
use nn::layers::GemmCapture;
use systolic::{HwVariant, MacEnergyModel, NetworkEnergyReport};

/// Measures total power on both hardware variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasurePowerStage;

/// Input of [`MeasurePowerStage`].
#[derive(Debug, Clone, Copy)]
pub struct MeasureInput<'a> {
    /// Captured GEMMs of the network under measurement.
    pub captures: &'a [GemmCapture],
    /// The per-weight energy model to integrate.
    pub model: &'a MacEnergyModel,
}

impl Stage<MeasureInput<'_>> for MeasurePowerStage {
    type Output = (NetworkEnergyReport, NetworkEnergyReport);

    fn name(&self) -> &'static str {
        "measure-power"
    }

    fn run(
        &self,
        ctx: &PipelineCtx<'_>,
        input: MeasureInput<'_>,
    ) -> (NetworkEnergyReport, NetworkEnergyReport) {
        (
            ctx.array
                .run_network_energy(input.captures, input.model, HwVariant::Standard),
            ctx.array
                .run_network_energy(input.captures, input.model, HwVariant::Optimized),
        )
    }
}

/// Converts achieved delay slack into a supply-voltage operating point.
#[derive(Debug, Clone, Copy, Default)]
pub struct VoltageScaleStage;

impl Stage<(f64, f64)> for VoltageScaleStage {
    type Output = VoltageScaling;

    fn name(&self) -> &'static str {
        "voltage-scale"
    }

    /// `input` is `(baseline_delay_ps, achieved_delay_ps)`.
    fn run(&self, ctx: &PipelineCtx<'_>, input: (f64, f64)) -> VoltageScaling {
        VoltageScaling::from_delays(ctx.voltage, input.0, input.1)
    }
}
