//! Selection stages: weight selection by power threshold (Fig. 8) and
//! the joint weight/activation delay sweep (Fig. 9), plus the shared
//! retraining helper both sweeps use.

use super::{PipelineCtx, Stage};
use crate::chars::{WeightPowerProfile, WeightTimingProfile};
use crate::pipeline::Prepared;
use crate::retrain::restricted_retrain;
use crate::select::delay::{select_by_delay, DelaySelectionConfig};
use crate::select::power::{select_by_power, threshold_for_count};
use crate::select::{DelaySelection, PowerSelection};
use rand::rngs::StdRng;

/// Weight selection by power threshold, targeting a weight-value count.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerSelectStage;

/// Input of [`PowerSelectStage`]: the power profile and the target
/// number of weight values to keep.
#[derive(Debug, Clone, Copy)]
pub struct PowerSelectInput<'a> {
    /// The characterized per-weight power profile.
    pub profile: &'a WeightPowerProfile,
    /// Target number of kept weight values (clamped to the profile).
    pub target: usize,
}

impl Stage<PowerSelectInput<'_>> for PowerSelectStage {
    type Output = PowerSelection;

    fn name(&self) -> &'static str {
        "select-power"
    }

    fn run(&self, _ctx: &PipelineCtx<'_>, input: PowerSelectInput<'_>) -> PowerSelection {
        let target = input.target.min(input.profile.codes().len());
        let threshold = threshold_for_count(input.profile, target);
        select_by_power(input.profile, threshold)
    }
}

/// Joint weight/activation selection at one delay threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelaySelectStage;

/// Input of [`DelaySelectStage`].
#[derive(Debug, Clone, Copy)]
pub struct DelaySelectInput<'a> {
    /// The timing profile to select against.
    pub timing: &'a WeightTimingProfile,
    /// Candidate weight codes (the power-selected set).
    pub candidates: &'a [i32],
    /// Delay threshold, ps.
    pub threshold_ps: f64,
}

impl Stage<DelaySelectInput<'_>> for DelaySelectStage {
    type Output = DelaySelection;

    fn name(&self) -> &'static str {
        "select-delay"
    }

    fn run(&self, ctx: &PipelineCtx<'_>, input: DelaySelectInput<'_>) -> DelaySelection {
        select_by_delay(
            input.timing,
            input.candidates,
            ctx.hw.act_levels(),
            &DelaySelectionConfig {
                threshold_ps: input.threshold_ps,
                restarts: ctx.cfg.restarts(),
                seed: ctx.cfg.seed ^ 0x5e1ec7,
                protected_weights: vec![0],
                activation_bias: 4,
            },
        )
    }
}

/// The delay-sweep search window derived from an unfloored probe
/// characterization: the rounded baseline maximum delay and the lowest
/// threshold the sweep may visit.
#[derive(Debug, Clone, Copy)]
pub struct DelayWindow {
    /// Baseline maximum composed delay, rounded up to the sweep step.
    pub base_max_rounded_ps: f64,
    /// Lowest candidate threshold (never below the psum STA floor).
    pub floor_ps: f64,
}

/// Computes the sweep window from a probe profile (one characterized
/// with `slow_floor_ps = f64::MAX`, i.e. histogram-only).
#[must_use]
pub fn delay_window(ctx: &PipelineCtx<'_>, probe: &WeightTimingProfile) -> DelayWindow {
    let base_max = probe
        .max_delay_over(&ctx.hw.weight_codes())
        .max(probe.psum_floor_ps);
    let step = ctx.cfg.delay_step_ps;
    let base_max_rounded_ps = (base_max / step).ceil() * step;
    let floor_ps = (base_max_rounded_ps - (ctx.cfg.max_delay_steps as f64 + 1.0) * step)
        .max(probe.psum_floor_ps);
    DelayWindow {
        base_max_rounded_ps,
        floor_ps,
    }
}

/// Retrains with the given restriction sets, giving the selection one
/// extra retraining round if accuracy lands below the tolerance —
/// restricted retraining oscillates on the BN networks at small epoch
/// budgets (the paper retrains to convergence at each point).
#[allow(clippy::too_many_arguments)]
pub fn retrain_with_retry(
    ctx: &PipelineCtx<'_>,
    prepared: &mut Prepared,
    weights: Option<&[i32]>,
    activations: Option<&[i32]>,
    reference_acc: f64,
    rng: &mut StdRng,
) -> f64 {
    let retrain_cfg = ctx.cfg.retrain_config();
    let mut acc = restricted_retrain(
        &mut prepared.net,
        &prepared.train_data,
        &prepared.test_data,
        weights,
        activations,
        &retrain_cfg,
        rng,
    );
    if acc + ctx.cfg.accuracy_drop_tolerance < reference_acc {
        acc = restricted_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            weights,
            activations,
            &retrain_cfg,
            rng,
        );
    }
    acc
}
