//! Selection stages: weight selection by power threshold (Fig. 8) and
//! the joint weight/activation delay sweep (Fig. 9), plus the shared
//! retraining helper both sweeps use.

use super::{PipelineCtx, Stage};
use crate::cache::{retrain_key, RetrainMode};
use crate::chars::{WeightPowerProfile, WeightTimingProfile};
use crate::pipeline::Prepared;
use crate::retrain::{prune_retrain, restricted_retrain};
use crate::select::delay::{select_by_delay, DelaySelectionConfig};
use crate::select::power::{select_by_power, threshold_for_count};
use crate::select::{DelaySelection, PowerSelection};
use nn::quant::ValueSet;
use rand::rngs::StdRng;

/// Weight selection by power threshold, targeting a weight-value count.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerSelectStage;

/// Input of [`PowerSelectStage`]: the power profile and the target
/// number of weight values to keep.
#[derive(Debug, Clone, Copy)]
pub struct PowerSelectInput<'a> {
    /// The characterized per-weight power profile.
    pub profile: &'a WeightPowerProfile,
    /// Target number of kept weight values (clamped to the profile).
    pub target: usize,
}

impl Stage<PowerSelectInput<'_>> for PowerSelectStage {
    type Output = PowerSelection;

    fn name(&self) -> &'static str {
        "select-power"
    }

    fn run(&self, _ctx: &PipelineCtx<'_>, input: PowerSelectInput<'_>) -> PowerSelection {
        let target = input.target.min(input.profile.codes().len());
        let threshold = threshold_for_count(input.profile, target);
        select_by_power(input.profile, threshold)
    }
}

/// Joint weight/activation selection at one delay threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelaySelectStage;

/// Input of [`DelaySelectStage`].
#[derive(Debug, Clone, Copy)]
pub struct DelaySelectInput<'a> {
    /// The timing profile to select against.
    pub timing: &'a WeightTimingProfile,
    /// Candidate weight codes (the power-selected set).
    pub candidates: &'a [i32],
    /// Delay threshold, ps.
    pub threshold_ps: f64,
}

impl Stage<DelaySelectInput<'_>> for DelaySelectStage {
    type Output = DelaySelection;

    fn name(&self) -> &'static str {
        "select-delay"
    }

    fn run(&self, ctx: &PipelineCtx<'_>, input: DelaySelectInput<'_>) -> DelaySelection {
        select_by_delay(
            input.timing,
            input.candidates,
            ctx.hw.act_levels(),
            &DelaySelectionConfig {
                threshold_ps: input.threshold_ps,
                restarts: ctx.cfg.restarts(),
                seed: ctx.cfg.seed ^ 0x5e1ec7,
                protected_weights: vec![0],
                activation_bias: 4,
            },
        )
    }
}

/// The delay-sweep search window derived from an unfloored probe
/// characterization: the rounded baseline maximum delay and the lowest
/// threshold the sweep may visit.
#[derive(Debug, Clone, Copy)]
pub struct DelayWindow {
    /// Baseline maximum composed delay, rounded up to the sweep step.
    pub base_max_rounded_ps: f64,
    /// Lowest candidate threshold (never below the psum STA floor).
    pub floor_ps: f64,
}

/// Computes the sweep window from a probe profile (one characterized
/// with `slow_floor_ps = f64::MAX`, i.e. histogram-only).
#[must_use]
pub fn delay_window(ctx: &PipelineCtx<'_>, probe: &WeightTimingProfile) -> DelayWindow {
    let base_max = probe
        .max_delay_over(&ctx.hw.weight_codes())
        .max(probe.psum_floor_ps);
    let step = ctx.cfg.delay_step_ps;
    let base_max_rounded_ps = (base_max / step).ceil() * step;
    let floor_ps = (base_max_rounded_ps - (ctx.cfg.max_delay_steps as f64 + 1.0) * step)
        .max(probe.psum_floor_ps);
    DelayWindow {
        base_max_rounded_ps,
        floor_ps,
    }
}

/// Cache-aware restricted retraining: keys the call on the entering
/// network state, the requested restriction sets, the retrain
/// configuration and the RNG stream position ([`retrain_key`]); a hit
/// installs the restrictions, loads the post-retrain state bit-exactly
/// and resumes the RNG at the exit position the original run recorded —
/// zero training epochs. A miss computes through
/// [`restricted_retrain`] and stores the artifact. Uncached contexts
/// fall straight through to the compute path.
pub fn cached_restricted_retrain(
    ctx: &PipelineCtx<'_>,
    prepared: &mut Prepared,
    weights: Option<&[i32]>,
    activations: Option<&[i32]>,
    rng: &mut StdRng,
) -> f64 {
    let retrain_cfg = ctx.cfg.retrain_config();
    let Some(cache) = ctx.cache else {
        return restricted_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            weights,
            activations,
            &retrain_cfg,
            rng,
        );
    };
    let key = retrain_key(
        ctx,
        &mut prepared.net,
        RetrainMode::Restricted {
            weights,
            activations,
        },
        &retrain_cfg,
        rng,
    );
    // The stored state covers parameters and buffers only; the
    // restrictions must be installed here exactly as the compute path
    // installs them, so a hit leaves the network indistinguishable from
    // a recompute.
    prepared.net.quantize = true;
    if let Some(w) = weights {
        prepared
            .net
            .set_weight_restriction(Some(ValueSet::new(w.iter().copied())));
    }
    if let Some(a) = activations {
        prepared
            .net
            .set_activation_restriction(Some(ValueSet::new(a.iter().copied())));
    }
    if let Some((acc, exit_rng)) = cache.lookup_retrain(&mut prepared.net, key) {
        *rng = StdRng::from_state(exit_rng);
        return acc;
    }
    let acc = restricted_retrain(
        &mut prepared.net,
        &prepared.train_data,
        &prepared.test_data,
        weights,
        activations,
        &retrain_cfg,
        rng,
    );
    cache.store_retrain(ctx, key, &mut prepared.net, acc, rng);
    acc
}

/// Cache-aware conventional pruning baseline: [`prune_retrain`] behind
/// the same key discipline as [`cached_restricted_retrain`], with the
/// requested sparsity committed in place of the restriction sets.
pub fn cached_prune_retrain(
    ctx: &PipelineCtx<'_>,
    prepared: &mut Prepared,
    sparsity: f64,
    rng: &mut StdRng,
) -> f64 {
    let retrain_cfg = ctx.cfg.retrain_config();
    let Some(cache) = ctx.cache else {
        return prune_retrain(
            &mut prepared.net,
            &prepared.train_data,
            &prepared.test_data,
            sparsity,
            &retrain_cfg,
            rng,
        );
    };
    let key = retrain_key(
        ctx,
        &mut prepared.net,
        RetrainMode::Prune { sparsity },
        &retrain_cfg,
        rng,
    );
    prepared.net.quantize = true;
    if let Some((acc, exit_rng)) = cache.lookup_retrain(&mut prepared.net, key) {
        *rng = StdRng::from_state(exit_rng);
        return acc;
    }
    let acc = prune_retrain(
        &mut prepared.net,
        &prepared.train_data,
        &prepared.test_data,
        sparsity,
        &retrain_cfg,
        rng,
    );
    cache.store_retrain(ctx, key, &mut prepared.net, acc, rng);
    acc
}

/// Retrains with the given restriction sets, giving the selection one
/// extra retraining round if accuracy lands below the tolerance —
/// restricted retraining oscillates on the BN networks at small epoch
/// budgets (the paper retrains to convergence at each point).
///
/// Each retraining round goes through [`cached_restricted_retrain`], so
/// on a warm store the whole call — including the retry decision, which
/// is a pure function of the first round's (bit-identical) accuracy —
/// replays from the cache without training.
pub fn retrain_with_retry(
    ctx: &PipelineCtx<'_>,
    prepared: &mut Prepared,
    weights: Option<&[i32]>,
    activations: Option<&[i32]>,
    reference_acc: f64,
    rng: &mut StdRng,
) -> f64 {
    let mut acc = cached_restricted_retrain(ctx, prepared, weights, activations, rng);
    if acc + ctx.cfg.accuracy_drop_tolerance < reference_acc {
        acc = cached_restricted_retrain(ctx, prepared, weights, activations, rng);
    }
    acc
}
