//! Preparation and characterization stages: baseline QAT training, GEMM
//! capture, statistics collection, per-weight power characterization
//! (Fig. 2) and per-weight timing characterization (Fig. 3).

use super::{PipelineCtx, Stage};
use crate::chars::{
    characterize_power, characterize_timing, PowerConfig, PsumBinning, TimingConfig,
    WeightTimingProfile,
};
use crate::pipeline::{Characterization, NetworkKind, Prepared, Scale};
use nn::data::SyntheticSpec;
use nn::layers::GemmCapture;
use nn::model::Network;
use nn::models;
use nn::train::{evaluate, train};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthetic dataset specification for a network kind and split.
pub(crate) fn dataset_spec(ctx: &PipelineCtx<'_>, kind: NetworkKind, train: bool) -> SyntheticSpec {
    let cfg = ctx.cfg;
    let samples = if train {
        cfg.train_samples()
    } else {
        cfg.test_samples()
    };
    let seed = cfg.seed ^ if train { 0x11 } else { 0x22 } ^ (kind as u64) << 4;
    let size = cfg.img_size();
    let mut spec = match kind {
        NetworkKind::LeNet5 | NetworkKind::ResNet20 => {
            SyntheticSpec::cifar10_like(size, samples, seed)
        }
        NetworkKind::ResNet50 => {
            let mut spec = SyntheticSpec::cifar100_like(size, samples, seed);
            if cfg.scale != Scale::Full {
                // 100 classes are not learnable at mini sample
                // counts; keep the class structure but narrower.
                spec.classes = 20;
            }
            spec
        }
        NetworkKind::EfficientNetLite => SyntheticSpec::imagenet_like(size, samples, seed),
    };
    spec.noise = cfg.noise();
    spec
}

fn build_network(
    ctx: &PipelineCtx<'_>,
    kind: NetworkKind,
    classes: usize,
    rng: &mut StdRng,
) -> Network {
    let size = ctx.cfg.img_size();
    match ctx.cfg.scale {
        Scale::Micro => models::tiny_cnn("micro", 3, size, classes, rng),
        Scale::Mini => match kind {
            NetworkKind::LeNet5 => models::lenet5(3, size, classes, rng),
            NetworkKind::ResNet20 => models::resnet("resnet20-mini", 3, classes, 1, 8, rng),
            NetworkKind::ResNet50 => models::resnet50_mini(3, classes, 1, 8, rng),
            NetworkKind::EfficientNetLite => models::efficientnet_lite_mini(3, classes, rng),
        },
        Scale::Full => match kind {
            NetworkKind::LeNet5 => models::lenet5(3, size, classes, rng),
            NetworkKind::ResNet20 => models::resnet20(3, classes, rng),
            NetworkKind::ResNet50 => models::resnet50_mini(3, classes, 2, 16, rng),
            NetworkKind::EfficientNetLite => models::efficientnet_lite_mini(3, classes, rng),
        },
    }
}

/// The deterministic, cheap part of preparation: generated datasets
/// plus the untrained network skeleton (quantization-aware, accuracy
/// zeroed). [`PrepareStage`] trains it; the cache loads a stored
/// trained state over it instead. The returned RNG is positioned
/// exactly after network construction, so training continues the same
/// stream the pre-cache implementation used.
pub(crate) fn untrained_prepared(ctx: &PipelineCtx<'_>, kind: NetworkKind) -> (Prepared, StdRng) {
    let train_data = dataset_spec(ctx, kind, true).generate();
    let test_data = dataset_spec(ctx, kind, false).generate();
    let mut rng = StdRng::seed_from_u64(ctx.cfg.seed ^ (kind as u64));
    let mut net = build_network(ctx, kind, train_data.classes(), &mut rng);
    net.quantize = true;
    (
        Prepared {
            net,
            train_data,
            test_data,
            accuracy: 0.0,
        },
        rng,
    )
}

/// Trains the quantization-aware baseline for a network kind.
///
/// The trained state and test accuracy are a pure function of the
/// configuration, so an attached [`crate::cache::CharCache`] is
/// consulted first (key: [`crate::cache::training_key`]) — a hit skips
/// every training epoch and loads the bit-exact network state instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepareStage;

impl Stage<NetworkKind> for PrepareStage {
    type Output = Prepared;

    fn name(&self) -> &'static str {
        "prepare"
    }

    fn run(&self, ctx: &PipelineCtx<'_>, kind: NetworkKind) -> Prepared {
        let Some(cache) = ctx.cache else {
            return prepare_uncached(ctx, kind);
        };
        let key = crate::cache::training_key(ctx, kind);
        cache.cached_training(ctx, kind, key, || prepare_uncached(ctx, kind))
    }
}

/// The training body shared by the cached and uncached paths of
/// [`PrepareStage`].
fn prepare_uncached(ctx: &PipelineCtx<'_>, kind: NetworkKind) -> Prepared {
    let (mut prepared, mut rng) = untrained_prepared(ctx, kind);
    let _ = train(
        &mut prepared.net,
        &prepared.train_data,
        &ctx.cfg.train_config(ctx.cfg.baseline_epochs()),
        &mut rng,
    );
    prepared.accuracy = evaluate(&mut prepared.net, &prepared.test_data, 64);
    prepared
}

/// Captures the quantized GEMMs of a forward pass over a fixed
/// evaluation batch.
///
/// A capture is a pure function of the network state and the input
/// batch, so an attached cache is consulted first (key:
/// [`crate::cache::capture_key`]) — a hit replays the stored operand
/// streams without running the forward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureStage;

impl Stage<&mut Prepared> for CaptureStage {
    type Output = Vec<GemmCapture>;

    fn name(&self) -> &'static str {
        "capture"
    }

    fn run(&self, ctx: &PipelineCtx<'_>, prepared: &mut Prepared) -> Vec<GemmCapture> {
        let Some(cache) = ctx.cache else {
            return capture_uncached(ctx, prepared);
        };
        let key = crate::cache::capture_key(ctx, prepared);
        cache.cached_captures(ctx, key, || capture_uncached(ctx, prepared))
    }
}

/// The forward-capture body shared by the cached and uncached paths of
/// [`CaptureStage`].
fn capture_uncached(ctx: &PipelineCtx<'_>, prepared: &mut Prepared) -> Vec<GemmCapture> {
    let (x, _) = prepared.test_data.head(ctx.cfg.capture_batch());
    let (_, captures) = prepared.net.forward_capture(&x);
    captures
}

/// Statistics collection + per-weight power characterization from
/// captured GEMMs (paper Figs. 2 and 4), batched on
/// [`gatesim::BatchSim`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CharacterizeStage;

impl Stage<&[GemmCapture]> for CharacterizeStage {
    type Output = Characterization;

    fn name(&self) -> &'static str {
        "characterize"
    }

    fn run(&self, ctx: &PipelineCtx<'_>, captures: &[GemmCapture]) -> Characterization {
        // The whole artifact (statistics included) is a pure function
        // of the hashed inputs, so a warmed store skips the systolic
        // stats pass *and* every BatchSim settle/transition round-trip.
        // Key derivation hashes every captured code stream, so it only
        // runs when a cache is actually attached.
        let Some(cache) = ctx.cache else {
            return characterize_uncached(ctx, captures);
        };
        let key = crate::cache::characterization_key(ctx, captures);
        cache.cached_characterization(ctx, key, || characterize_uncached(ctx, captures))
    }
}

/// The gate-level characterization body shared by the cached and
/// uncached paths of [`CharacterizeStage`].
fn characterize_uncached(ctx: &PipelineCtx<'_>, captures: &[GemmCapture]) -> Characterization {
    let cfg = ctx.cfg;
    let stats = ctx.array.run_network_stats(captures);
    let binning = PsumBinning::from_samples(
        stats.psum_samples(),
        cfg.bins(),
        ctx.array.config().acc_bits,
        cfg.seed ^ 0xb135,
    );
    let power_profile = characterize_power(
        ctx.hw,
        &stats,
        &binning,
        &PowerConfig {
            samples_per_weight: cfg.power_samples(),
            seed: cfg.seed ^ 0x909,
            clock_ps: ctx.array.config().clock_ps,
            weight_stride: cfg.weight_stride(),
            baseline_fj_per_cycle: 90.0,
        },
    );
    let leakage = ctx.hw.mac().netlist().leakage_nw(ctx.hw.lib());
    let energy_model = power_profile.to_energy_model(0.3, leakage);
    Characterization {
        stats,
        binning,
        power_profile,
        energy_model,
    }
}

/// Per-weight timing characterization with a slow-combination floor
/// (paper Fig. 3), batched on [`gatesim::BatchSim`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingStage;

impl Stage<f64> for TimingStage {
    type Output = WeightTimingProfile;

    fn name(&self) -> &'static str {
        "timing"
    }

    fn run(&self, ctx: &PipelineCtx<'_>, slow_floor_ps: f64) -> WeightTimingProfile {
        let Some(cache) = ctx.cache else {
            return timing_uncached(ctx, slow_floor_ps);
        };
        let key = crate::cache::timing_key(ctx, slow_floor_ps);
        cache.cached_timing(ctx, key, || timing_uncached(ctx, slow_floor_ps))
    }
}

/// The gate-level timing body shared by the cached and uncached paths
/// of [`TimingStage`].
fn timing_uncached(ctx: &PipelineCtx<'_>, slow_floor_ps: f64) -> WeightTimingProfile {
    let (exhaustive, samples) = ctx.cfg.timing_exhaustive();
    characterize_timing(
        ctx.hw,
        &TimingConfig {
            exhaustive,
            samples,
            seed: ctx.cfg.seed ^ 0x7171,
            slow_floor_ps,
            weight_stride: ctx.cfg.weight_stride(),
        },
    )
}
