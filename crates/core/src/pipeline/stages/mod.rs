//! Pipeline stages: each step of the PowerPruning flow as a small,
//! independently invokable unit over a shared [`PipelineCtx`].
//!
//! The [`Pipeline`](crate::pipeline::Pipeline) driver composes these
//! stages into the paper's experiments; future work can cache, shard or
//! distribute individual stages without touching the others because
//! every stage only sees the context and its explicit input.
//!
//! * [`characterize`] — baseline training, GEMM capture, power/timing
//!   characterization (paper Figs. 2–4).
//! * [`select`] — weight selection by power, joint weight/activation
//!   selection by delay, and the shared retraining helpers (Figs. 8–9).
//! * [`scale`] — systolic power measurement and supply-voltage scaling
//!   of freed timing slack (Table I).

pub mod characterize;
pub mod scale;
pub mod select;

use crate::cache::CharCache;
use crate::chars::MacHardware;
use crate::pipeline::PipelineConfig;
use crate::voltage::VoltageModel;
use systolic::SystolicArray;

/// Shared, read-only context handed to every stage: the configuration
/// plus the long-lived hardware models of the run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineCtx<'a> {
    /// Experiment configuration.
    pub cfg: &'a PipelineConfig,
    /// The characterized MAC hardware.
    pub hw: &'a MacHardware,
    /// The systolic array simulator.
    pub array: &'a SystolicArray,
    /// The supply-voltage model used for slack conversion.
    pub voltage: &'a VoltageModel,
    /// The characterization artifact cache, when enabled. Stages that
    /// produce pure-function artifacts consult it before simulating.
    pub cache: Option<&'a CharCache>,
}

/// One step of the flow: a pure-ish function from `Input` to `Output`
/// over the shared context.
///
/// The input type is a trait parameter (not an associated type) so
/// stages can borrow their input (`&[GemmCapture]`, `&WeightPowerProfile`,
/// …) without generic-associated-type machinery.
pub trait Stage<Input> {
    /// The stage's result.
    type Output;

    /// Stable name for logs and progress reporting.
    fn name(&self) -> &'static str;

    /// Runs the stage.
    fn run(&self, ctx: &PipelineCtx<'_>, input: Input) -> Self::Output;
}
