//! Pipeline configuration: experiment scale, per-stage budgets and the
//! four evaluation networks.

use crate::retrain::RetrainConfig;
use nn::train::TrainConfig;
use systolic::ArrayConfig;

/// The four network/dataset combinations of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// LeNet-5 on the CIFAR-10 stand-in.
    LeNet5,
    /// ResNet-20 on the CIFAR-10 stand-in.
    ResNet20,
    /// ResNet-50-style bottleneck net on the CIFAR-100 stand-in.
    ResNet50,
    /// EfficientNet-B0-Lite-style net on the ImageNet stand-in.
    EfficientNetLite,
}

impl NetworkKind {
    /// All four evaluation networks, in Table I order.
    #[must_use]
    pub fn all() -> [NetworkKind; 4] {
        [
            NetworkKind::LeNet5,
            NetworkKind::ResNet20,
            NetworkKind::ResNet50,
            NetworkKind::EfficientNetLite,
        ]
    }

    /// Paper-style label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::LeNet5 => "LeNet-5-CIFAR-10 (synthetic)",
            NetworkKind::ResNet20 => "ResNet-20-CIFAR-10 (synthetic)",
            NetworkKind::ResNet50 => "ResNet-50-CIFAR-100 (synthetic)",
            NetworkKind::EfficientNetLite => "EfficientNet-B0-Lite-ImageNet (synthetic)",
        }
    }

    /// The paper's Table I target for "#selected weight values".
    #[must_use]
    pub fn paper_weight_target(self) -> usize {
        match self {
            NetworkKind::LeNet5 | NetworkKind::ResNet20 => 32,
            NetworkKind::ResNet50 => 40,
            NetworkKind::EfficientNetLite => 76,
        }
    }
}

/// Experiment scale: how much compute each pipeline stage spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Seconds-level smoke runs for tests (tiny nets, strided
    /// characterization, sampled timing).
    Micro,
    /// The default for benches: faithful topologies at reduced size,
    /// full 255-code characterization, exhaustive timing.
    Mini,
    /// Paper-sized topologies and sample counts (long-running).
    Full,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed; every stage derives its own stream.
    pub seed: u64,
    /// Accuracy-drop tolerance for the delay sweep (paper: ~5%).
    pub accuracy_drop_tolerance: f64,
    /// Delay sweep granularity, ps (paper: 10 ps).
    pub delay_step_ps: f64,
    /// Maximum number of delay-sweep steps.
    pub max_delay_steps: usize,
    /// Magnitude-pruning sparsity for the conventional baseline.
    pub prune_sparsity: f64,
    /// Consult the persistent characterization artifact store
    /// ([`crate::cache::CharCache`]) before running gate-level
    /// characterization, and populate it afterwards. Defaults to on;
    /// the `POWERPRUNING_CACHE=off` environment variable disables the
    /// cache even when this is set.
    pub cache: bool,
}

impl PipelineConfig {
    /// Configuration for a scale with paper-like defaults elsewhere.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        PipelineConfig {
            scale,
            seed: 0xdac2023,
            accuracy_drop_tolerance: 0.05,
            // The paper uses a 10 ps search granularity and notes it
            // "can be lowered if necessary"; our composed-delay
            // distribution is tighter than the paper's synthesized
            // netlist, so Mini sweeps at 5 ps resolution.
            delay_step_ps: match scale {
                Scale::Mini => 5.0,
                _ => 10.0,
            },
            max_delay_steps: match scale {
                Scale::Micro => 2,
                Scale::Mini => 5,
                Scale::Full => 5,
            },
            prune_sparsity: 0.5,
            cache: true,
        }
    }

    pub(crate) fn img_size(&self) -> usize {
        match self.scale {
            Scale::Micro => 8,
            // 20 px keeps LeNet-5's flatten stage at 2×2×16 (16 px would
            // starve it to a single spatial position).
            Scale::Mini => 20,
            Scale::Full => 32,
        }
    }

    pub(crate) fn train_samples(&self) -> usize {
        match self.scale {
            Scale::Micro => 240,
            Scale::Mini => 480,
            Scale::Full => 4000,
        }
    }

    pub(crate) fn test_samples(&self) -> usize {
        match self.scale {
            Scale::Micro => 48,
            Scale::Mini => 160,
            Scale::Full => 1000,
        }
    }

    pub(crate) fn baseline_epochs(&self) -> usize {
        match self.scale {
            Scale::Micro => 5,
            Scale::Mini => 8,
            Scale::Full => 30,
        }
    }

    pub(crate) fn retrain_epochs(&self) -> usize {
        match self.scale {
            Scale::Micro => 1,
            Scale::Mini => 3,
            Scale::Full => 10,
        }
    }

    pub(crate) fn capture_batch(&self) -> usize {
        match self.scale {
            Scale::Micro => 6,
            Scale::Mini => 16,
            Scale::Full => 64,
        }
    }

    pub(crate) fn power_samples(&self) -> usize {
        match self.scale {
            Scale::Micro => 24,
            Scale::Mini => 2500,
            Scale::Full => 10_000,
        }
    }

    pub(crate) fn weight_stride(&self) -> usize {
        match self.scale {
            Scale::Micro => 16,
            _ => 1,
        }
    }

    pub(crate) fn timing_exhaustive(&self) -> (bool, usize) {
        match self.scale {
            Scale::Micro => (false, 192),
            Scale::Mini => (false, 12_288),
            Scale::Full => (true, 0),
        }
    }

    pub(crate) fn bins(&self) -> usize {
        match self.scale {
            Scale::Micro => 8,
            _ => 50,
        }
    }

    pub(crate) fn array_config(&self) -> ArrayConfig {
        match self.scale {
            Scale::Micro => ArrayConfig::small(16, 16),
            Scale::Mini => ArrayConfig::small(32, 32),
            Scale::Full => ArrayConfig::paper_64x64(),
        }
    }

    pub(crate) fn restarts(&self) -> usize {
        match self.scale {
            Scale::Micro => 4,
            _ => 20,
        }
    }

    pub(crate) fn train_config(&self, epochs: usize) -> TrainConfig {
        TrainConfig {
            epochs,
            batch_size: 16,
            // The batch-norm-free LeNet-5 needs the lower rate at
            // Mini/Full scale; the tiny Micro net converges faster at
            // the higher one.
            lr: match self.scale {
                Scale::Micro => 0.05,
                _ => 0.02,
            },
            momentum: 0.9,
            weight_decay: 5e-4,
            lr_decay: 0.9,
            clip_norm: Some(5.0),
        }
    }

    pub(crate) fn retrain_config(&self) -> RetrainConfig {
        RetrainConfig {
            train: TrainConfig {
                lr: match self.scale {
                    Scale::Micro => 0.02,
                    _ => 0.01,
                },
                ..self.train_config(self.retrain_epochs())
            },
            eval_batch: 64,
        }
    }

    /// Pixel-noise amplitude of the synthetic datasets: hard enough at
    /// Mini/Full scale that accuracy responds to value-set restriction
    /// (the paper's baselines sit at 74–92%, not at 100%).
    pub(crate) fn noise(&self) -> f32 {
        match self.scale {
            Scale::Micro => 0.08,
            Scale::Mini | Scale::Full => 0.55,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::for_scale(Scale::Mini)
    }
}
