//! Warm-start caching of every expensive pipeline stage.
//!
//! All four artifact-producing stages are pure functions of their
//! inputs, so each gets a content-addressed key and a typed wire codec:
//!
//! * baseline QAT **training** ([`training_key`]) — commits to the
//!   network kind, both dataset specifications, every optimizer and
//!   quantization hyperparameter, the derived RNG seeds and the epoch
//!   budget; the artifact is the trained network's bit-exact inference
//!   state (`nn::serialize::save_state`) plus its test accuracy.
//! * GEMM **capture** ([`capture_key`]) — commits to the complete
//!   network state (parameters, batch-norm buffers, quantizer ranges
//!   and restriction sets) and the captured input batch; the artifact
//!   is the quantized operand streams (`nn::serialize::write_captures`).
//! * power **characterization** ([`characterization_key`]) and
//!   **timing** ([`timing_key`]) — as before, committing to the cell
//!   library, netlist structures, seeds, budgets and capture content.
//! * sweep-point **retraining** ([`retrain_key`]) — commits to the
//!   entering network state (parameters, buffers, installed
//!   restrictions), the requested mode (pruning sparsity or the value
//!   sets to install), the full retrain configuration and the exact RNG
//!   stream position; the artifact is the post-retrain network state,
//!   the measured accuracy and the **exit** RNG state, so a hit resumes
//!   the sweep bit-identically without replaying a single epoch.
//!
//! Keys are derived through [`KeyFields`], an order-insensitive named
//! field builder: the digest depends on *which* fields carry *which*
//! values, never on the order a key function happens to list them in.
//!
//! Environment knobs (read by [`CharCache::from_env`]):
//!
//! * `POWERPRUNING_CACHE=off|0|false` — disable the cache entirely.
//! * `POWERPRUNING_CACHE_DIR=<dir>` — store root (default
//!   `.powerpruning-cache` under the working directory).
//! * `POWERPRUNING_REMOTE_STORE=<host:port>` — attach a remote object
//!   tier behind the local store: `get` misses are answered from a
//!   `charserve` daemon's object endpoint (fetched containers are
//!   re-checksummed client-side and land in the local disk tier) and
//!   local `put`s are write-through-published, so a fleet of workers
//!   shares one warm cache without a shared filesystem. A dead daemon
//!   degrades every operation to local-only.
//!
//! A key hit is provably the same computation, so a warmed store lets a
//! second pipeline run skip baseline training entirely (zero epochs,
//! observable via `nn::train::epochs_run`) and every `BatchSim`
//! settle/transition round-trip (zero transitions, observable via
//! `gatesim::sim_transitions`). Decode failures (corruption, version
//! skew) degrade to a miss and the artifact is recomputed and
//! rewritten.

use crate::chars::{MacHardware, PsumBinning, WeightPowerProfile};
use crate::pipeline::stages::characterize::{dataset_spec, untrained_prepared};
use crate::pipeline::stages::PipelineCtx;
use crate::pipeline::{Characterization, NetworkKind, Prepared};
use crate::retrain::RetrainConfig;
use crate::WeightTimingProfile;
use charstore::container::find;
use charstore::wire::{self, Reader};
use charstore::{Digest128, Hasher128, Section, Store};
use gatesim::{CellKind, CellLibrary};
use nn::layers::GemmCapture;
use nn::model::Network;
use rand::rngs::StdRng;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock};
use systolic::MacEnergyModel;

/// Per-artifact-kind registry counters: the typed `lookup_*` methods
/// know which stage's artifact they answer, so `/metrics` can break
/// cache effectiveness down by stage where the per-instance
/// [`CacheCounters`] only totals.
struct StageCacheMetrics {
    hits: obs::metrics::Counter,
    misses: obs::metrics::Counter,
}

macro_rules! stage_cache_metrics {
    ($name:ident, $hits:literal, $misses:literal) => {
        static $name: LazyLock<StageCacheMetrics> = LazyLock::new(|| StageCacheMetrics {
            hits: obs::metrics::counter($hits),
            misses: obs::metrics::counter($misses),
        });
    };
}

stage_cache_metrics!(
    TRAINING_CACHE,
    "charcache_training_hits_total",
    "charcache_training_misses_total"
);
stage_cache_metrics!(
    CAPTURES_CACHE,
    "charcache_captures_hits_total",
    "charcache_captures_misses_total"
);
stage_cache_metrics!(
    CHARACTERIZATION_CACHE,
    "charcache_characterization_hits_total",
    "charcache_characterization_misses_total"
);
stage_cache_metrics!(
    TIMING_CACHE,
    "charcache_timing_hits_total",
    "charcache_timing_misses_total"
);
stage_cache_metrics!(
    RETRAIN_CACHE,
    "charcache_retrain_hits_total",
    "charcache_retrain_misses_total"
);

/// Default store directory (relative to the working directory).
pub const DEFAULT_CACHE_DIR: &str = ".powerpruning-cache";

/// Environment variable naming a `charserve` object endpoint
/// (`host:port`) to attach as the store's remote tier.
pub const REMOTE_STORE_ENV: &str = "POWERPRUNING_REMOTE_STORE";

/// Version of the characterization *algorithms* folded into every
/// cache key. The keys commit to all inputs, but a persistent
/// default-on cache must also be invalidated when the computation
/// itself changes: **bump this constant whenever any PR changes the
/// observable output of the characterize or timing stages for
/// unchanged inputs** (sampling loops, binning, energy composition,
/// the hardcoded baseline energy, …). Old artifacts then simply stop
/// matching and are recomputed.
pub const ARTIFACT_ALGO_VERSION: u32 = 1;

/// Section ids of the characterization container.
mod section {
    pub const PROVENANCE: u32 = 1;
    pub const STATS: u32 = 2;
    pub const BINNING: u32 = 3;
    pub const POWER_PROFILE: u32 = 4;
    pub const ENERGY_MODEL: u32 = 5;
    pub const TIMING_PROFILE: u32 = 6;
    pub const NET_STATE: u32 = 7;
    pub const ACCURACY: u32 = 8;
    pub const CAPTURES: u32 = 9;
    pub const MANIFEST: u32 = 10;
    pub const RNG_STATE: u32 = 11;
}

/// An order-insensitive named-field cache-key builder.
///
/// Every committed input is pushed as a `(name, typed value)` pair;
/// [`KeyFields::finalize`] sorts the fields by name before hashing, so
/// the digest is a function of the field *set* — reordering the `push`
/// calls in a key function can never silently change (or preserve!) a
/// key, while any value or name change always moves it. Values carry a
/// type tag, so e.g. `u64(1)` and `f64` with the same bit pattern under
/// the same name cannot collide.
///
/// # Panics
///
/// [`KeyFields::finalize`] panics on duplicate field names — an
/// ambiguous key would silently drop a commitment, which is exactly the
/// bug class this builder exists to prevent.
#[derive(Debug, Clone, Default)]
pub struct KeyFields {
    fields: Vec<(String, Vec<u8>)>,
}

impl KeyFields {
    /// An empty field set.
    #[must_use]
    pub fn new() -> Self {
        KeyFields::default()
    }

    fn push(&mut self, name: &str, tag: u8, payload: &[u8]) {
        let mut value = Vec::with_capacity(payload.len() + 1);
        value.push(tag);
        value.extend_from_slice(payload);
        self.fields.push((name.to_string(), value));
    }

    /// Commits a `u32` field.
    pub fn u32(&mut self, name: &str, v: u32) {
        self.push(name, 1, &v.to_le_bytes());
    }

    /// Commits a `u64` field.
    pub fn u64(&mut self, name: &str, v: u64) {
        self.push(name, 2, &v.to_le_bytes());
    }

    /// Commits a `usize` field (as little-endian `u64`).
    pub fn usize(&mut self, name: &str, v: usize) {
        self.push(name, 3, &(v as u64).to_le_bytes());
    }

    /// Commits an `f64` field by exact bit pattern.
    pub fn f64(&mut self, name: &str, v: f64) {
        self.push(name, 4, &v.to_bits().to_le_bytes());
    }

    /// Commits an `f32` field by exact bit pattern.
    pub fn f32(&mut self, name: &str, v: f32) {
        self.push(name, 5, &v.to_bits().to_le_bytes());
    }

    /// Commits a `bool` field.
    pub fn bool(&mut self, name: &str, v: bool) {
        self.push(name, 6, &[u8::from(v)]);
    }

    /// Commits a string field.
    pub fn str(&mut self, name: &str, v: &str) {
        self.push(name, 7, v.as_bytes());
    }

    /// Commits a sub-digest field (for composite inputs hashed
    /// separately, e.g. a network state or an input batch).
    pub fn digest(&mut self, name: &str, d: Digest128) {
        self.push(name, 8, &d.0);
    }

    /// Derives the key under a domain-separation tag.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name (see the type docs).
    #[must_use]
    pub fn finalize(&self, domain: &str) -> Digest128 {
        let mut sorted: Vec<&(String, Vec<u8>)> = self.fields.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for pair in sorted.windows(2) {
            assert_ne!(
                pair[0].0, pair[1].0,
                "duplicate cache-key field `{}`",
                pair[0].0
            );
        }
        let mut h = Hasher128::new(domain);
        h.write_usize(sorted.len());
        for (name, value) in sorted {
            h.write_str(name);
            h.write_bytes(value);
        }
        h.finalize()
    }
}

fn hash_library(h: &mut Hasher128, lib: &CellLibrary) {
    for &kind in CellKind::all() {
        let p = lib.params(kind);
        h.write_u8(kind as u8);
        h.write_f64(p.delay_ps);
        h.write_f64(p.energy_fj);
        h.write_f64(p.leakage_nw);
    }
}

fn hash_hardware(h: &mut Hasher128, hw: &MacHardware) {
    h.write_u32(ARTIFACT_ALGO_VERSION);
    hash_library(h, hw.lib());
    h.update(&hw.mac().netlist().structural_digest().0);
    h.update(&hw.mult_netlist().structural_digest().0);
    h.write_usize(hw.weight_bits());
    h.write_usize(hw.act_bits());
    h.write_usize(hw.acc_bits());
}

/// The cache key of the combined statistics + power characterization
/// artifact produced by the pipeline's characterize stage.
///
/// Commits to the cell library, the MAC and multiplier netlist
/// structures, the systolic array geometry, every seed and budget the
/// stage derives from the configuration, and the full content of the
/// captured GEMM streams the statistics are collected from.
#[must_use]
pub fn characterization_key(ctx: &PipelineCtx<'_>, captures: &[GemmCapture]) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.characterization.v1");
    hash_hardware(&mut h, ctx.hw);
    let array = ctx.array.config();
    h.write_usize(array.rows);
    h.write_usize(array.cols);
    h.write_f64(array.clock_ps);
    h.write_usize(array.acc_bits);
    let cfg = ctx.cfg;
    h.write_u64(cfg.seed);
    h.write_usize(cfg.bins());
    h.write_usize(cfg.power_samples());
    h.write_usize(cfg.weight_stride());
    h.write_usize(captures.len());
    let mut scratch = Vec::new();
    for c in captures {
        h.write_str(&c.layer);
        h.write_usize(c.m);
        h.write_usize(c.k);
        h.write_usize(c.n);
        // i8 codes share the u8 byte representation; one reused scratch
        // buffer instead of an allocation per capture.
        scratch.clear();
        scratch.extend(c.weight_codes.iter().map(|&w| w as u8));
        h.write_bytes(&scratch);
        h.write_bytes(&c.act_codes);
    }
    h.finalize()
}

/// The cache key of the timing characterization artifact.
///
/// Commits to the cell library, both netlist structures, and every
/// field of the effective timing configuration (including the
/// slow-combination floor, which changes which transitions are stored
/// individually).
#[must_use]
pub fn timing_key(ctx: &PipelineCtx<'_>, slow_floor_ps: f64) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.timing.v1");
    hash_hardware(&mut h, ctx.hw);
    let (exhaustive, samples) = ctx.cfg.timing_exhaustive();
    h.write_bool(exhaustive);
    h.write_usize(samples);
    h.write_u64(ctx.cfg.seed);
    h.write_f64(slow_floor_ps);
    h.write_usize(ctx.cfg.weight_stride());
    h.finalize()
}

/// The cache key of the baseline QAT training artifact produced by the
/// pipeline's prepare stage.
///
/// Commits to the network kind, the train/test dataset specifications
/// (classes, resolution, channels, sample counts, noise, seeds), the
/// network-build seed, every optimizer hyperparameter of the baseline
/// training configuration (epochs, batch size, learning-rate schedule,
/// momentum, weight decay, gradient clipping) and the quantization-aware
/// flag. The experiment scale is committed explicitly because the
/// network topology is a function of it.
#[must_use]
pub fn training_key(ctx: &PipelineCtx<'_>, kind: NetworkKind) -> Digest128 {
    let cfg = ctx.cfg;
    let mut k = KeyFields::new();
    k.u32("algo_version", ARTIFACT_ALGO_VERSION);
    k.str("scale", &format!("{:?}", cfg.scale));
    k.str("network", &format!("{kind:?}"));
    k.u64("net_seed", cfg.seed ^ (kind as u64));
    for (split, spec) in [
        ("train", dataset_spec(ctx, kind, true)),
        ("test", dataset_spec(ctx, kind, false)),
    ] {
        k.usize(&format!("{split}.classes"), spec.classes);
        k.usize(&format!("{split}.size"), spec.size);
        k.usize(&format!("{split}.channels"), spec.channels);
        k.usize(&format!("{split}.samples"), spec.samples);
        k.f32(&format!("{split}.noise"), spec.noise);
        k.u64(&format!("{split}.seed"), spec.seed);
    }
    let tc = cfg.train_config(cfg.baseline_epochs());
    k.usize("opt.epochs", tc.epochs);
    k.usize("opt.batch_size", tc.batch_size);
    k.f32("opt.lr", tc.lr);
    k.f32("opt.momentum", tc.momentum);
    k.f32("opt.weight_decay", tc.weight_decay);
    k.f32("opt.lr_decay", tc.lr_decay);
    k.bool("opt.clip", tc.clip_norm.is_some());
    k.f32("opt.clip_norm", tc.clip_norm.unwrap_or(0.0));
    k.bool("quantize", true);
    k.finalize("powerpruning.training.v1")
}

/// Digest of a network's complete inference state: layer-qualified
/// parameter names, shapes and exact `f32` bits, plus every
/// non-trainable buffer (batch-norm running statistics).
fn network_state_digest(net: &mut Network) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.netstate.v1");
    let mut scratch: Vec<u8> = Vec::new();
    net.visit_params(&mut |p| {
        h.write_str(&p.name);
        h.write_usize(p.value.shape().len());
        for &d in p.value.shape() {
            h.write_usize(d);
        }
        scratch.clear();
        scratch.extend(p.value.data().iter().flat_map(|v| v.to_le_bytes()));
        h.write_bytes(&scratch);
    });
    net.visit_buffers(&mut |b| {
        scratch.clear();
        scratch.extend(b.iter().flat_map(|v| v.to_le_bytes()));
        h.write_bytes(&scratch);
    });
    h.finalize()
}

/// Digest of a network's value-set restrictions and quantizer ranges —
/// the knobs the selection stages install between captures.
fn network_restriction_digest(net: &mut Network) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.restrictions.v1");
    let write_set = |h: &mut Hasher128, allowed: &Option<nn::ValueSet>| match allowed {
        None => h.write_bool(false),
        Some(set) => {
            h.write_bool(true);
            h.write_usize(set.codes().len());
            for &c in set.codes() {
                h.write_i64(i64::from(c));
            }
        }
    };
    net.visit_weight_quant(&mut |wq| {
        write_set(&mut h, &wq.allowed);
    });
    net.visit_act_quant(&mut |aq| {
        h.write_u32(aq.range.to_bits());
        write_set(&mut h, &aq.allowed);
    });
    h.finalize()
}

/// The cache key of the GEMM capture artifact produced by the
/// pipeline's capture stage.
///
/// Commits to the complete network state ([`network_state_digest`] over
/// parameters and buffers), the installed value-set restrictions and
/// quantizer ranges, and the exact input batch the captures stream
/// (shape and `f32` bits of the test-set head). The capture forward
/// pass is always quantization-aware, so the `quantize` flag is not an
/// input.
#[must_use]
pub fn capture_key(ctx: &PipelineCtx<'_>, prepared: &mut Prepared) -> Digest128 {
    let mut k = KeyFields::new();
    k.u32("algo_version", ARTIFACT_ALGO_VERSION);
    let name = prepared.net.name().to_string();
    k.str("net.name", &name);
    k.digest("net.state", network_state_digest(&mut prepared.net));
    k.digest(
        "net.restrictions",
        network_restriction_digest(&mut prepared.net),
    );
    let (x, _) = prepared.test_data.head(ctx.cfg.capture_batch());
    let mut h = Hasher128::new("powerpruning.capture-input.v1");
    h.write_usize(x.shape().len());
    for &d in x.shape() {
        h.write_usize(d);
    }
    let bytes: Vec<u8> = x.data().iter().flat_map(|v| v.to_le_bytes()).collect();
    h.write_bytes(&bytes);
    k.digest("input", h.finalize());
    k.usize("capture_batch", ctx.cfg.capture_batch());
    k.finalize("powerpruning.capture.v1")
}

/// Which retraining flavour a [`retrain_key`] commits to — the two call
/// shapes of `crate::retrain`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrainMode<'a> {
    /// [`crate::retrain::prune_retrain`]: magnitude pruning to the given
    /// sparsity, then masked retraining.
    Prune {
        /// Requested pruned fraction.
        sparsity: f64,
    },
    /// [`crate::retrain::restricted_retrain`]: retraining with the given
    /// value-set restrictions installed (`None` leaves the network's
    /// current restriction in place — which the entering restriction
    /// digest already commits to).
    Restricted {
        /// Weight value set to install, if any.
        weights: Option<&'a [i32]>,
        /// Activation value set to install, if any.
        activations: Option<&'a [i32]>,
    },
}

fn value_codes_digest(codes: &[i32]) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.valueset.v1");
    h.write_usize(codes.len());
    for &c in codes {
        h.write_i64(i64::from(c));
    }
    h.finalize()
}

/// The cache key of one retraining call — the commit-to-state discipline
/// applied to the sweeps' inner loops.
///
/// A retraining run is a pure function of the **entering** network state
/// ([`network_state_digest`] over parameters and buffers, plus the
/// already-installed restriction sets and quantizer ranges), the
/// requested mode (sparsity for the pruned baseline; the weight and
/// activation value sets for restricted retraining), every optimizer
/// hyperparameter of the [`RetrainConfig`], and the **exact RNG stream
/// position** (training consumes draws for batch shuffling, so the same
/// net at a different stream position is a different computation). The
/// stored artifact carries the exit RNG state so a hit can resume the
/// stream bit-identically — without that, every downstream sweep-point
/// key would diverge on a warm run.
#[must_use]
pub fn retrain_key(
    ctx: &PipelineCtx<'_>,
    net: &mut Network,
    mode: RetrainMode<'_>,
    cfg: &RetrainConfig,
    rng: &StdRng,
) -> Digest128 {
    let mut k = KeyFields::new();
    k.u32("algo_version", ARTIFACT_ALGO_VERSION);
    k.str("scale", &format!("{:?}", ctx.cfg.scale));
    let name = net.name().to_string();
    k.str("net.name", &name);
    k.digest("net.state", network_state_digest(net));
    k.digest("net.restrictions", network_restriction_digest(net));
    match mode {
        RetrainMode::Prune { sparsity } => {
            k.str("mode", "prune");
            k.f64("sparsity", sparsity);
        }
        RetrainMode::Restricted {
            weights,
            activations,
        } => {
            k.str("mode", "restricted");
            k.bool("weights.set", weights.is_some());
            k.digest(
                "weights.codes",
                value_codes_digest(weights.unwrap_or_default()),
            );
            k.bool("activations.set", activations.is_some());
            k.digest(
                "activations.codes",
                value_codes_digest(activations.unwrap_or_default()),
            );
        }
    }
    k.usize("opt.epochs", cfg.train.epochs);
    k.usize("opt.batch_size", cfg.train.batch_size);
    k.f32("opt.lr", cfg.train.lr);
    k.f32("opt.momentum", cfg.train.momentum);
    k.f32("opt.weight_decay", cfg.train.weight_decay);
    k.f32("opt.lr_decay", cfg.train.lr_decay);
    k.bool("opt.clip", cfg.train.clip_norm.is_some());
    k.f32("opt.clip_norm", cfg.train.clip_norm.unwrap_or(0.0));
    k.usize("eval_batch", cfg.eval_batch);
    let s = rng.state();
    for (i, &word) in s.iter().enumerate() {
        k.u64(&format!("rng.s{i}"), word);
    }
    k.finalize("powerpruning.retrain.v1")
}

/// The cache key of a full characterization *request* — the unit the
/// `charserve` daemon deduplicates and answers from the store.
///
/// Commits to the experiment scale, the network kind, the master seed
/// and every per-stage budget the scale derives (sample counts, epoch
/// budget, capture batch, characterization sampling, timing sampling,
/// binning, stride, image size, dataset noise). Unlike the per-stage
/// keys it is computable from the [`crate::pipeline::PipelineConfig`]
/// alone — no trained network, captures or hardware models needed — so
/// a server front-end can answer a repeated request without
/// constructing a pipeline.
#[must_use]
pub fn request_key(cfg: &crate::pipeline::PipelineConfig, kind: NetworkKind) -> Digest128 {
    let mut k = KeyFields::new();
    k.u32("algo_version", ARTIFACT_ALGO_VERSION);
    k.str("scale", &format!("{:?}", cfg.scale));
    k.str("network", &format!("{kind:?}"));
    k.u64("seed", cfg.seed);
    k.usize("budget.baseline_epochs", cfg.baseline_epochs());
    k.usize("budget.train_samples", cfg.train_samples());
    k.usize("budget.test_samples", cfg.test_samples());
    k.usize("budget.capture_batch", cfg.capture_batch());
    k.usize("budget.power_samples", cfg.power_samples());
    k.usize("budget.weight_stride", cfg.weight_stride());
    k.usize("budget.bins", cfg.bins());
    let (exhaustive, samples) = cfg.timing_exhaustive();
    k.bool("budget.timing_exhaustive", exhaustive);
    k.usize("budget.timing_samples", samples);
    k.usize("budget.img_size", cfg.img_size());
    k.f32("noise", cfg.noise());
    k.finalize("powerpruning.request.v1")
}

/// The stored answer record of one characterization request: the four
/// stage artifact keys plus the headline observables a client needs.
/// Written under [`request_key`] after a request computes, so the next
/// identical request is answered straight from the store without even
/// rebuilding the pipeline's hardware models.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestManifest {
    /// Key of the baseline-training artifact.
    pub training: Digest128,
    /// Key of the GEMM-capture artifact.
    pub capture: Digest128,
    /// Key of the power-characterization artifact.
    pub characterization: Digest128,
    /// Key of the timing artifact (probe floor).
    pub timing: Digest128,
    /// Baseline test accuracy after QAT.
    pub accuracy: f64,
    /// Number of captured GEMMs.
    pub captures: u64,
    /// Number of characterized weight codes.
    pub power_codes: u64,
}

impl RequestManifest {
    /// The four stage keys in pipeline order, labelled.
    #[must_use]
    pub fn stage_keys(&self) -> [(&'static str, Digest128); 4] {
        [
            ("training", self.training),
            ("capture", self.capture),
            ("characterization", self.characterization),
            ("timing", self.timing),
        ]
    }
}

fn encode_manifest(ctx: &PipelineCtx<'_>, m: &RequestManifest) -> Vec<Section> {
    let mut buf = Vec::new();
    for (_, key) in m.stage_keys() {
        buf.extend_from_slice(&key.0);
    }
    wire::put_f64(&mut buf, m.accuracy);
    wire::put_u64(&mut buf, m.captures);
    wire::put_u64(&mut buf, m.power_codes);
    vec![
        provenance_section(ctx, "request-manifest"),
        Section::new(section::MANIFEST, buf),
    ]
}

fn decode_manifest(sections: &[Section]) -> io::Result<RequestManifest> {
    let mut r = required(sections, section::MANIFEST)?;
    let digest = |r: &mut Reader<'_>| -> io::Result<Digest128> {
        let mut d = Digest128([0; 16]);
        d.0.copy_from_slice(r.take(16)?);
        Ok(d)
    };
    let training = digest(&mut r)?;
    let capture = digest(&mut r)?;
    let characterization = digest(&mut r)?;
    let timing = digest(&mut r)?;
    let accuracy = r.f64()?;
    let captures = r.u64()?;
    let power_codes = r.u64()?;
    r.finish()?;
    Ok(RequestManifest {
        training,
        capture,
        characterization,
        timing,
        accuracy,
        captures,
        power_codes,
    })
}

/// What serving one characterization request did: the request key, the
/// manifest (stage keys + observables), and how much work it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationRun {
    /// The request key ([`request_key`]).
    pub request_key: Digest128,
    /// Stage keys and observables.
    pub manifest: RequestManifest,
    /// Whether the request was answered straight from a stored
    /// manifest (no pipeline stage even consulted).
    pub manifest_hit: bool,
    /// Training epochs observed while serving this request. Measured
    /// from the process-global `nn::train::epochs_run()` counter, so
    /// under concurrent *distinct* computations in one process it is an
    /// upper bound on this request's own work; it is exactly zero for
    /// any request answered from a warm store.
    pub training_epochs: u64,
    /// Gate-level transitions observed while serving this request
    /// (process-global `gatesim::sim_transitions()`; same upper-bound
    /// caveat, same exact zero on warm answers).
    pub sim_transitions: u64,
}

fn provenance_section(ctx: &PipelineCtx<'_>, kind: &str) -> Section {
    let mut buf = Vec::new();
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    for (k, v) in [
        ("artifact", kind.to_string()),
        ("crate_version", env!("CARGO_PKG_VERSION").to_string()),
        ("scale", format!("{:?}", ctx.cfg.scale)),
        ("seed", format!("{:#x}", ctx.cfg.seed)),
        ("mac", ctx.hw.mac().netlist().name().to_string()),
        ("created_unix", created.to_string()),
    ] {
        wire::put_str(&mut buf, k);
        wire::put_str(&mut buf, &v);
    }
    Section::new(section::PROVENANCE, buf)
}

/// Parses a provenance section into `(key, value)` pairs — the CLI's
/// `stat` view. Unknown layouts yield an empty list rather than an
/// error (provenance is informational, never load-bearing).
#[must_use]
pub fn decode_provenance(sections: &[Section]) -> Vec<(String, String)> {
    let Some(s) = find(sections, section::PROVENANCE) else {
        return Vec::new();
    };
    let mut r = Reader::new(&s.bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let Ok(k) = r.str() else { return Vec::new() };
        let Ok(v) = r.str() else { return Vec::new() };
        out.push((k, v));
    }
    out
}

fn encode_characterization(ctx: &PipelineCtx<'_>, chars: &Characterization) -> Vec<Section> {
    let mut stats = Vec::new();
    chars.stats.write_to(&mut stats);
    let mut binning = Vec::new();
    chars.binning.write_to(&mut binning);
    let mut power = Vec::new();
    chars.power_profile.write_to(&mut power);
    let mut energy = Vec::new();
    chars.energy_model.write_to(&mut energy);
    vec![
        provenance_section(ctx, "characterization"),
        Section::new(section::STATS, stats),
        Section::new(section::BINNING, binning),
        Section::new(section::POWER_PROFILE, power),
        Section::new(section::ENERGY_MODEL, energy),
    ]
}

fn required<'a>(sections: &'a [Section], id: u32) -> io::Result<Reader<'a>> {
    find(sections, id)
        .map(|s| Reader::new(&s.bytes))
        .ok_or_else(|| wire::invalid(format!("artifact is missing section {id}")))
}

fn decode_characterization(sections: &[Section]) -> io::Result<Characterization> {
    let mut r = required(sections, section::STATS)?;
    let stats = systolic::TransitionStats::read_from(&mut r)?;
    r.finish()?;
    let mut r = required(sections, section::BINNING)?;
    let binning = PsumBinning::read_from(&mut r)?;
    r.finish()?;
    let mut r = required(sections, section::POWER_PROFILE)?;
    let power_profile = WeightPowerProfile::read_from(&mut r)?;
    r.finish()?;
    let mut r = required(sections, section::ENERGY_MODEL)?;
    let energy_model = MacEnergyModel::read_from(&mut r)?;
    r.finish()?;
    Ok(Characterization {
        stats,
        binning,
        power_profile,
        energy_model,
    })
}

fn encode_timing(ctx: &PipelineCtx<'_>, profile: &WeightTimingProfile) -> Vec<Section> {
    let mut buf = Vec::new();
    profile.write_to(&mut buf);
    vec![
        provenance_section(ctx, "timing"),
        Section::new(section::TIMING_PROFILE, buf),
    ]
}

fn decode_timing(sections: &[Section]) -> io::Result<WeightTimingProfile> {
    let mut r = required(sections, section::TIMING_PROFILE)?;
    let profile = WeightTimingProfile::read_from(&mut r)?;
    r.finish()?;
    Ok(profile)
}

fn encode_training(ctx: &PipelineCtx<'_>, prepared: &mut Prepared) -> Vec<Section> {
    let mut state = Vec::new();
    nn::serialize::save_state(&mut prepared.net, &mut state).expect("Vec writes cannot fail");
    let mut accuracy = Vec::new();
    wire::put_f64(&mut accuracy, prepared.accuracy);
    vec![
        provenance_section(ctx, "training"),
        Section::new(section::NET_STATE, state),
        Section::new(section::ACCURACY, accuracy),
    ]
}

/// Rebuilds a [`Prepared`] from a stored training artifact: datasets
/// and the untrained network skeleton are regenerated deterministically
/// from the configuration (cheap), then the trained state is loaded
/// bit-exactly over it.
fn decode_training(
    ctx: &PipelineCtx<'_>,
    kind: NetworkKind,
    sections: &[Section],
) -> io::Result<Prepared> {
    let state = find(sections, section::NET_STATE)
        .ok_or_else(|| wire::invalid("training artifact is missing the network state"))?;
    let mut r = required(sections, section::ACCURACY)?;
    let accuracy = r.f64()?;
    r.finish()?;
    let (mut prepared, _rng) = untrained_prepared(ctx, kind);
    nn::serialize::load_state(&mut prepared.net, state.bytes.as_slice())?;
    prepared.accuracy = accuracy;
    Ok(prepared)
}

fn encode_captures(ctx: &PipelineCtx<'_>, captures: &[GemmCapture]) -> Vec<Section> {
    let mut buf = Vec::new();
    nn::serialize::write_captures(captures, &mut buf);
    vec![
        provenance_section(ctx, "capture"),
        Section::new(section::CAPTURES, buf),
    ]
}

fn decode_captures(sections: &[Section]) -> io::Result<Vec<GemmCapture>> {
    let mut r = required(sections, section::CAPTURES)?;
    let captures = nn::serialize::read_captures(&mut r)?;
    r.finish()?;
    Ok(captures)
}

/// Decoded retrain artifact: the post-retrain network state (raw
/// `nn::serialize` bytes, applied by the lookup), the test accuracy the
/// retraining measured, and the RNG state at exit.
struct RetrainArtifact {
    state: Vec<u8>,
    accuracy: f64,
    rng_state: [u64; 4],
}

fn encode_retrain(
    ctx: &PipelineCtx<'_>,
    net: &mut Network,
    accuracy: f64,
    rng: &StdRng,
) -> Vec<Section> {
    let mut state = Vec::new();
    nn::serialize::save_state(net, &mut state).expect("Vec writes cannot fail");
    let mut acc = Vec::new();
    wire::put_f64(&mut acc, accuracy);
    let mut rng_buf = Vec::new();
    for word in rng.state() {
        wire::put_u64(&mut rng_buf, word);
    }
    vec![
        provenance_section(ctx, "retrain"),
        Section::new(section::NET_STATE, state),
        Section::new(section::ACCURACY, acc),
        Section::new(section::RNG_STATE, rng_buf),
    ]
}

fn decode_retrain(sections: &[Section]) -> io::Result<RetrainArtifact> {
    let state = find(sections, section::NET_STATE)
        .ok_or_else(|| wire::invalid("retrain artifact is missing the network state"))?
        .bytes
        .clone();
    let mut r = required(sections, section::ACCURACY)?;
    let accuracy = r.f64()?;
    r.finish()?;
    let mut r = required(sections, section::RNG_STATE)?;
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64()?;
    }
    r.finish()?;
    Ok(RetrainArtifact {
        state,
        accuracy,
        rng_state,
    })
}

/// Typed hit/miss counters of one [`CharCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Artifact lookups answered from the store (either tier).
    pub hits: u64,
    /// Lookups that had to fall through to gate-level simulation.
    pub misses: u64,
}

/// The pipeline-facing artifact cache: typed lookups and stores over a
/// shared [`charstore::Store`], plus hit/miss accounting.
///
/// The store is held behind an [`Arc`] so several consumers — the
/// pipeline stages, the `charserve` daemon's front-end and its worker
/// threads — can answer from **one** store instance (one in-memory
/// tier, one set of store counters) instead of each opening their own.
#[derive(Debug)]
pub struct CharCache {
    store: Arc<Store>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CharCache {
    /// Opens a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the store layout.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CharCache> {
        CharCache::open_with_remote(dir, None)
    }

    /// Opens a cache rooted at `dir` with an optional remote object
    /// tier (`host:port` of a `charserve` daemon) behind the local
    /// tiers. Every remote failure degrades to local-only operation, so
    /// attaching a dead endpoint costs counters, never correctness.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the local store layout (the
    /// remote endpoint is not contacted here).
    pub fn open_with_remote(dir: impl AsRef<Path>, remote: Option<&str>) -> io::Result<CharCache> {
        let mut store = Store::open(dir.as_ref())?;
        if let Some(addr) = remote {
            store = store.with_remote(charstore::RemoteTier::new(addr));
        }
        Ok(CharCache::with_store(Arc::new(store)))
    }

    /// Wraps an already-open shared store — the `charserve` daemon path,
    /// where the HTTP front-end and every worker share one store.
    #[must_use]
    pub fn with_store(store: Arc<Store>) -> CharCache {
        CharCache {
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Whether `POWERPRUNING_CACHE` is set to `off`/`0`/`false`. The
    /// env kill switch overrides every configuration path, including
    /// explicit store directories.
    #[must_use]
    pub fn disabled_by_env() -> bool {
        std::env::var("POWERPRUNING_CACHE")
            .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
    }

    /// Opens the cache described by the environment: `None` when
    /// `POWERPRUNING_CACHE` is `off`/`0`/`false` or the store directory
    /// cannot be created (the pipeline silently runs uncached — a cache
    /// must never turn a runnable experiment into an error). A
    /// non-empty `POWERPRUNING_REMOTE_STORE` attaches the remote tier.
    #[must_use]
    pub fn from_env() -> Option<CharCache> {
        if CharCache::disabled_by_env() {
            return None;
        }
        let dir = std::env::var("POWERPRUNING_CACHE_DIR")
            .unwrap_or_else(|_| DEFAULT_CACHE_DIR.to_string());
        let remote = std::env::var(REMOTE_STORE_ENV)
            .ok()
            .filter(|addr| !addr.trim().is_empty());
        CharCache::open_with_remote(dir, remote.as_deref()).ok()
    }

    /// The underlying store (for the CLI and tests).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// A shared handle to the underlying store.
    #[must_use]
    pub fn shared_store(&self) -> Arc<Store> {
        Arc::clone(&self.store)
    }

    /// Snapshot of the typed hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn record<T>(&self, metrics: &StageCacheMetrics, result: Option<T>) -> Option<T> {
        match result {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics.hits.inc();
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics.misses.inc();
                None
            }
        }
    }

    /// Looks up a characterization artifact. Any store miss or decode
    /// failure is a cache miss.
    #[must_use]
    pub fn lookup_characterization(&self, key: Digest128) -> Option<Characterization> {
        let decoded = self
            .store
            .get(key)
            .and_then(|s| decode_characterization(&s).ok());
        self.record(&CHARACTERIZATION_CACHE, decoded)
    }

    /// Stores a characterization artifact. Failures are swallowed (the
    /// computed artifact is still returned to the caller; only warm
    /// starts are lost).
    pub fn store_characterization(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        chars: &Characterization,
    ) {
        let _ = self.store.put(key, encode_characterization(ctx, chars));
    }

    /// Looks up a timing artifact. Any store miss or decode failure is
    /// a cache miss.
    #[must_use]
    pub fn lookup_timing(&self, key: Digest128) -> Option<WeightTimingProfile> {
        let decoded = self.store.get(key).and_then(|s| decode_timing(&s).ok());
        self.record(&TIMING_CACHE, decoded)
    }

    /// Stores a timing artifact (failures swallowed, as above).
    pub fn store_timing(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        profile: &WeightTimingProfile,
    ) {
        let _ = self.store.put(key, encode_timing(ctx, profile));
    }

    /// Looks up a baseline training artifact, rebuilding the
    /// [`Prepared`] bundle (datasets regenerated, trained state loaded
    /// bit-exactly). Any store miss or decode failure — including a
    /// structure mismatch after a model-code change — is a cache miss.
    #[must_use]
    pub fn lookup_training(
        &self,
        ctx: &PipelineCtx<'_>,
        kind: NetworkKind,
        key: Digest128,
    ) -> Option<Prepared> {
        let decoded = self
            .store
            .get(key)
            .and_then(|s| decode_training(ctx, kind, &s).ok());
        self.record(&TRAINING_CACHE, decoded)
    }

    /// Stores a baseline training artifact (failures swallowed; only
    /// warm starts are lost). Takes the network mutably because state
    /// serialization visits parameters through `&mut` hooks.
    pub fn store_training(&self, ctx: &PipelineCtx<'_>, key: Digest128, prepared: &mut Prepared) {
        let sections = encode_training(ctx, prepared);
        let _ = self.store.put(key, sections);
    }

    /// Looks up a GEMM capture artifact. Any store miss or decode
    /// failure is a cache miss.
    #[must_use]
    pub fn lookup_captures(&self, key: Digest128) -> Option<Vec<GemmCapture>> {
        let decoded = self.store.get(key).and_then(|s| decode_captures(&s).ok());
        self.record(&CAPTURES_CACHE, decoded)
    }

    /// Stores a GEMM capture artifact (failures swallowed, as above).
    pub fn store_captures(&self, ctx: &PipelineCtx<'_>, key: Digest128, captures: &[GemmCapture]) {
        let _ = self.store.put(key, encode_captures(ctx, captures));
    }

    /// Looks up a retrain artifact and, on a hit, loads the post-retrain
    /// state over `net` bit-exactly, returning the stored test accuracy
    /// and the exit RNG state (for the caller to resume its stream at
    /// the position the original retraining left it).
    ///
    /// Any store miss or decode failure is a cache miss. A state-load
    /// failure (e.g. structure skew after a model-code change) restores
    /// the entering parameters and buffers before reporting the miss, so
    /// the recompute path never starts from a half-loaded network.
    #[must_use]
    pub fn lookup_retrain(&self, net: &mut Network, key: Digest128) -> Option<(f64, [u64; 4])> {
        let applied = self
            .store
            .get(key)
            .and_then(|s| decode_retrain(&s).ok())
            .and_then(|artifact| {
                let params = net.snapshot();
                let mut buffers: Vec<Vec<f32>> = Vec::new();
                net.visit_buffers(&mut |b| buffers.push(b.clone()));
                match nn::serialize::load_state(net, artifact.state.as_slice()) {
                    Ok(()) => Some((artifact.accuracy, artifact.rng_state)),
                    Err(_) => {
                        net.restore(&params);
                        let mut idx = 0usize;
                        net.visit_buffers(&mut |b| {
                            if let Some(saved) = buffers.get(idx) {
                                b.copy_from_slice(saved);
                            }
                            idx += 1;
                        });
                        None
                    }
                }
            });
        self.record(&RETRAIN_CACHE, applied)
    }

    /// Stores a retrain artifact: the network's post-retrain state, the
    /// measured accuracy and the exit RNG state (failures swallowed, as
    /// above). Takes the network mutably because state serialization
    /// visits parameters through `&mut` hooks.
    pub fn store_retrain(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        net: &mut Network,
        accuracy: f64,
        rng: &StdRng,
    ) {
        let _ = self.store.put(key, encode_retrain(ctx, net, accuracy, rng));
    }

    /// Looks up a stored request manifest. Deliberately does **not**
    /// touch the stage hit/miss counters — a manifest answers a whole
    /// request, not a stage, and the service accounts for requests
    /// itself.
    #[must_use]
    pub fn lookup_manifest(&self, key: Digest128) -> Option<RequestManifest> {
        self.store.get(key).and_then(|s| decode_manifest(&s).ok())
    }

    /// Stores a request manifest (failures swallowed; only warm answers
    /// are lost).
    pub fn store_manifest(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        manifest: &RequestManifest,
    ) {
        let _ = self.store.put(key, encode_manifest(ctx, manifest));
    }

    /// The lookup → compute → store spine for the baseline-training
    /// artifact: one code path shared by
    /// [`crate::pipeline::stages::characterize::PrepareStage`] and the
    /// characterization service.
    pub fn cached_training(
        &self,
        ctx: &PipelineCtx<'_>,
        kind: NetworkKind,
        key: Digest128,
        compute: impl FnOnce() -> Prepared,
    ) -> Prepared {
        if let Some(hit) = self.lookup_training(ctx, kind, key) {
            return hit;
        }
        let mut fresh = compute();
        self.store_training(ctx, key, &mut fresh);
        fresh
    }

    /// The lookup → compute → store spine for the GEMM-capture artifact.
    pub fn cached_captures(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        compute: impl FnOnce() -> Vec<GemmCapture>,
    ) -> Vec<GemmCapture> {
        if let Some(hit) = self.lookup_captures(key) {
            return hit;
        }
        let fresh = compute();
        self.store_captures(ctx, key, &fresh);
        fresh
    }

    /// The lookup → compute → store spine for the power-characterization
    /// artifact.
    pub fn cached_characterization(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        compute: impl FnOnce() -> Characterization,
    ) -> Characterization {
        if let Some(hit) = self.lookup_characterization(key) {
            return hit;
        }
        let fresh = compute();
        self.store_characterization(ctx, key, &fresh);
        fresh
    }

    /// The lookup → compute → store spine for the timing artifact.
    pub fn cached_timing(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        compute: impl FnOnce() -> WeightTimingProfile,
    ) -> WeightTimingProfile {
        if let Some(hit) = self.lookup_timing(key) {
            return hit;
        }
        let fresh = compute();
        self.store_timing(ctx, key, &fresh);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig, Scale};

    fn micro_ctx_pipeline() -> Pipeline {
        let mut cfg = PipelineConfig::for_scale(Scale::Micro);
        cfg.cache = false;
        Pipeline::new(cfg)
    }

    #[test]
    fn keys_commit_to_configuration() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let base = timing_key(&ctx, 100.0);
        assert_eq!(base, timing_key(&ctx, 100.0));
        assert_ne!(base, timing_key(&ctx, 101.0));

        let mut cfg2 = *p.ctx().cfg;
        cfg2.seed ^= 1;
        let p2 = Pipeline::new(cfg2);
        assert_ne!(base, timing_key(&p2.ctx(), 100.0));
    }

    #[test]
    fn characterization_key_commits_to_captures() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let mut capture = GemmCapture {
            layer: "l0".into(),
            weight_codes: vec![1, -2, 3, -4],
            act_codes: vec![9, 8, 7, 6],
            m: 2,
            k: 2,
            n: 2,
        };
        let a = characterization_key(&ctx, std::slice::from_ref(&capture));
        assert_eq!(
            a,
            characterization_key(&ctx, std::slice::from_ref(&capture))
        );
        capture.weight_codes[0] = 2;
        assert_ne!(
            a,
            characterization_key(&ctx, std::slice::from_ref(&capture))
        );
    }

    #[test]
    fn timing_and_characterization_keys_never_collide() {
        // Domain separation: even with degenerate inputs the two
        // artifact kinds key into disjoint spaces.
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        assert_ne!(timing_key(&ctx, 0.0), characterization_key(&ctx, &[]));
    }

    #[test]
    fn key_fields_are_order_insensitive_and_value_sensitive() {
        let mut a = KeyFields::new();
        a.u64("seed", 7);
        a.str("network", "LeNet5");
        a.f32("noise", 0.08);
        let mut b = KeyFields::new();
        b.f32("noise", 0.08);
        b.u64("seed", 7);
        b.str("network", "LeNet5");
        assert_eq!(a.finalize("test.v1"), b.finalize("test.v1"));
        // Any value change moves the key; so does the domain.
        let mut c = KeyFields::new();
        c.u64("seed", 8);
        c.str("network", "LeNet5");
        c.f32("noise", 0.08);
        assert_ne!(a.finalize("test.v1"), c.finalize("test.v1"));
        assert_ne!(a.finalize("test.v1"), a.finalize("test.v2"));
        // Same bits under a different type tag must not collide.
        let mut d = KeyFields::new();
        d.u64("x", 1);
        let mut e = KeyFields::new();
        e.usize("x", 1);
        assert_ne!(d.finalize("t"), e.finalize("t"));
    }

    #[test]
    #[should_panic(expected = "duplicate cache-key field")]
    fn key_fields_reject_duplicate_names() {
        let mut k = KeyFields::new();
        k.u64("seed", 1);
        k.u64("seed", 2);
        let _ = k.finalize("test");
    }

    #[test]
    fn training_key_commits_to_kind_seed_and_scale() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let base = training_key(&ctx, NetworkKind::LeNet5);
        assert_eq!(base, training_key(&ctx, NetworkKind::LeNet5));
        assert_ne!(base, training_key(&ctx, NetworkKind::ResNet20));

        let mut cfg2 = *ctx.cfg;
        cfg2.seed ^= 1;
        let p2 = Pipeline::new(cfg2);
        assert_ne!(base, training_key(&p2.ctx(), NetworkKind::LeNet5));

        let mut cfg3 = PipelineConfig::for_scale(Scale::Mini);
        cfg3.cache = false;
        let p3 = Pipeline::new(cfg3);
        assert_ne!(base, training_key(&p3.ctx(), NetworkKind::LeNet5));
    }

    #[test]
    fn capture_key_commits_to_network_state_and_restrictions() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let mut prepared = p.prepare(NetworkKind::LeNet5);
        let base = capture_key(&ctx, &mut prepared);
        assert_eq!(base, capture_key(&ctx, &mut prepared));

        // Installing a restriction moves the key; clearing restores it.
        prepared
            .net
            .set_weight_restriction(Some(nn::ValueSet::new([-1, 0, 1])));
        assert_ne!(base, capture_key(&ctx, &mut prepared));
        prepared.net.set_weight_restriction(None);
        assert_eq!(base, capture_key(&ctx, &mut prepared));

        // Perturbing a single parameter bit moves the key.
        prepared.net.visit_params(&mut |p| {
            if let Some(v) = p.value.data_mut().first_mut() {
                *v += 0.5;
            }
        });
        assert_ne!(base, capture_key(&ctx, &mut prepared));
    }

    #[test]
    fn request_key_commits_to_scale_network_and_seed() {
        let cfg = {
            let mut cfg = PipelineConfig::for_scale(Scale::Micro);
            cfg.cache = false;
            cfg
        };
        let base = request_key(&cfg, NetworkKind::LeNet5);
        assert_eq!(base, request_key(&cfg, NetworkKind::LeNet5));
        assert_ne!(base, request_key(&cfg, NetworkKind::ResNet20));
        let mut cfg2 = cfg;
        cfg2.seed ^= 1;
        assert_ne!(base, request_key(&cfg2, NetworkKind::LeNet5));
        let mut mini = PipelineConfig::for_scale(Scale::Mini);
        mini.cache = false;
        assert_ne!(base, request_key(&mini, NetworkKind::LeNet5));
        // Request keys live in their own domain: they can never collide
        // with a stage artifact key.
        let p = micro_ctx_pipeline();
        assert_ne!(base, training_key(&p.ctx(), NetworkKind::LeNet5));
    }

    #[test]
    fn manifest_round_trips_through_its_container() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let manifest = RequestManifest {
            training: training_key(&ctx, NetworkKind::LeNet5),
            capture: timing_key(&ctx, 1.0),
            characterization: characterization_key(&ctx, &[]),
            timing: timing_key(&ctx, f64::MAX),
            accuracy: 0.875,
            captures: 3,
            power_codes: 255,
        };
        let sections = encode_manifest(&ctx, &manifest);
        let decoded = decode_manifest(&sections).expect("decode manifest");
        assert_eq!(decoded, manifest);
        // Provenance rides along and labels the artifact.
        assert!(decode_provenance(&sections)
            .iter()
            .any(|(k, v)| k == "artifact" && v == "request-manifest"));
        // A truncated payload is a decode error (degrades to a miss),
        // never a panic.
        let mut truncated = sections;
        for s in &mut truncated {
            if s.id == section::MANIFEST {
                s.bytes.truncate(20);
            }
        }
        assert!(decode_manifest(&truncated).is_err());
        assert!(decode_manifest(&[]).is_err());
    }

    #[test]
    fn retrain_key_commits_to_state_mode_and_rng_position() {
        use rand::{Rng, SeedableRng};
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let (mut prepared, _) = untrained_prepared(&ctx, NetworkKind::LeNet5);
        let cfg = ctx.cfg.retrain_config();
        let rng = StdRng::seed_from_u64(1);
        let w: &[i32] = &[-2, 0, 2];
        let restricted = RetrainMode::Restricted {
            weights: Some(w),
            activations: None,
        };
        let base = retrain_key(&ctx, &mut prepared.net, restricted, &cfg, &rng);
        assert_eq!(
            base,
            retrain_key(&ctx, &mut prepared.net, restricted, &cfg, &rng)
        );
        // The mode moves the key.
        assert_ne!(
            base,
            retrain_key(
                &ctx,
                &mut prepared.net,
                RetrainMode::Prune { sparsity: 0.5 },
                &cfg,
                &rng
            )
        );
        assert_ne!(
            retrain_key(
                &ctx,
                &mut prepared.net,
                RetrainMode::Prune { sparsity: 0.5 },
                &cfg,
                &rng
            ),
            retrain_key(
                &ctx,
                &mut prepared.net,
                RetrainMode::Prune { sparsity: 0.6 },
                &cfg,
                &rng
            )
        );
        // The requested sets move the key — including None vs Some.
        assert_ne!(
            base,
            retrain_key(
                &ctx,
                &mut prepared.net,
                RetrainMode::Restricted {
                    weights: None,
                    activations: None
                },
                &cfg,
                &rng
            )
        );
        assert_ne!(
            base,
            retrain_key(
                &ctx,
                &mut prepared.net,
                RetrainMode::Restricted {
                    weights: Some(w),
                    activations: Some(w)
                },
                &cfg,
                &rng
            )
        );
        // The RNG stream position moves the key.
        let mut advanced = rng.clone();
        let _: u64 = advanced.random();
        assert_ne!(
            base,
            retrain_key(&ctx, &mut prepared.net, restricted, &cfg, &advanced)
        );
        // The entering network state moves the key.
        prepared.net.visit_params(&mut |p| {
            if let Some(v) = p.value.data_mut().first_mut() {
                *v += 0.5;
            }
        });
        assert_ne!(
            base,
            retrain_key(&ctx, &mut prepared.net, restricted, &cfg, &rng)
        );
    }

    #[test]
    fn retrain_artifact_restores_the_network_bit_exactly() {
        use rand::SeedableRng;
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let (mut prepared, _) = untrained_prepared(&ctx, NetworkKind::LeNet5);
        let dir = std::env::temp_dir().join(format!(
            "powerpruning-retrain-artifact-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CharCache::open(&dir).expect("open cache");
        let rng_exit = StdRng::seed_from_u64(9);
        let key = training_key(&ctx, NetworkKind::LeNet5);

        let mut stored_state = Vec::new();
        nn::serialize::save_state(&mut prepared.net, &mut stored_state).unwrap();
        cache.store_retrain(&ctx, key, &mut prepared.net, 0.75, &rng_exit);

        // Perturb every parameter; the hit must restore the stored bits.
        prepared.net.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v += 1.0;
            }
        });
        let (acc, exit) = cache
            .lookup_retrain(&mut prepared.net, key)
            .expect("stored artifact should hit");
        assert_eq!(acc.to_bits(), 0.75f64.to_bits());
        assert_eq!(exit, rng_exit.state());
        let mut restored = Vec::new();
        nn::serialize::save_state(&mut prepared.net, &mut restored).unwrap();
        assert_eq!(restored, stored_state, "hit did not restore bit-exactly");

        // An absent key is a miss and leaves the network untouched.
        let other = timing_key(&ctx, 1.0);
        assert!(cache.lookup_retrain(&mut prepared.net, other).is_none());
        let mut after_miss = Vec::new();
        nn::serialize::save_state(&mut prepared.net, &mut after_miss).unwrap();
        assert_eq!(after_miss, stored_state);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn provenance_round_trips() {
        let p = micro_ctx_pipeline();
        let sections = vec![provenance_section(&p.ctx(), "unit-test")];
        let pairs = decode_provenance(&sections);
        assert!(pairs
            .iter()
            .any(|(k, v)| k == "artifact" && v == "unit-test"));
        assert!(pairs.iter().any(|(k, _)| k == "created_unix"));
        assert!(decode_provenance(&[]).is_empty());
    }
}
