//! Warm-start caching of characterization artifacts.
//!
//! Power and timing characterization are pure functions of the cell
//! library, the netlist structure, the RNG seeds, the sample budgets
//! and (for power) the captured GEMM streams. This module derives
//! content-addressed keys committing to *all* of those inputs
//! ([`characterization_key`], [`timing_key`]), encodes the artifacts
//! into [`charstore`] containers, and wraps a [`charstore::Store`] in
//! the [`CharCache`] handle the pipeline stages consult before doing
//! any gate-level work.
//!
//! Environment knobs (read by [`CharCache::from_env`]):
//!
//! * `POWERPRUNING_CACHE=off|0|false` — disable the cache entirely.
//! * `POWERPRUNING_CACHE_DIR=<dir>` — store root (default
//!   `.powerpruning-cache` under the working directory).
//!
//! A key hit is provably the same computation, so a warmed store lets a
//! second pipeline run skip every `BatchSim` settle/transition
//! round-trip of characterization. Decode failures (corruption, version
//! skew) degrade to a miss and the artifact is recomputed and
//! rewritten.

use crate::chars::{MacHardware, PsumBinning, WeightPowerProfile};
use crate::pipeline::stages::PipelineCtx;
use crate::pipeline::Characterization;
use crate::WeightTimingProfile;
use charstore::container::find;
use charstore::wire::{self, Reader};
use charstore::{Digest128, Hasher128, Section, Store};
use gatesim::{CellKind, CellLibrary};
use nn::layers::GemmCapture;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use systolic::MacEnergyModel;

/// Default store directory (relative to the working directory).
pub const DEFAULT_CACHE_DIR: &str = ".powerpruning-cache";

/// Version of the characterization *algorithms* folded into every
/// cache key. The keys commit to all inputs, but a persistent
/// default-on cache must also be invalidated when the computation
/// itself changes: **bump this constant whenever any PR changes the
/// observable output of the characterize or timing stages for
/// unchanged inputs** (sampling loops, binning, energy composition,
/// the hardcoded baseline energy, …). Old artifacts then simply stop
/// matching and are recomputed.
pub const ARTIFACT_ALGO_VERSION: u32 = 1;

/// Section ids of the characterization container.
mod section {
    pub const PROVENANCE: u32 = 1;
    pub const STATS: u32 = 2;
    pub const BINNING: u32 = 3;
    pub const POWER_PROFILE: u32 = 4;
    pub const ENERGY_MODEL: u32 = 5;
    pub const TIMING_PROFILE: u32 = 6;
}

fn hash_library(h: &mut Hasher128, lib: &CellLibrary) {
    for &kind in CellKind::all() {
        let p = lib.params(kind);
        h.write_u8(kind as u8);
        h.write_f64(p.delay_ps);
        h.write_f64(p.energy_fj);
        h.write_f64(p.leakage_nw);
    }
}

fn hash_hardware(h: &mut Hasher128, hw: &MacHardware) {
    h.write_u32(ARTIFACT_ALGO_VERSION);
    hash_library(h, hw.lib());
    h.update(&hw.mac().netlist().structural_digest().0);
    h.update(&hw.mult_netlist().structural_digest().0);
    h.write_usize(hw.weight_bits());
    h.write_usize(hw.act_bits());
    h.write_usize(hw.acc_bits());
}

/// The cache key of the combined statistics + power characterization
/// artifact produced by the pipeline's characterize stage.
///
/// Commits to the cell library, the MAC and multiplier netlist
/// structures, the systolic array geometry, every seed and budget the
/// stage derives from the configuration, and the full content of the
/// captured GEMM streams the statistics are collected from.
#[must_use]
pub fn characterization_key(ctx: &PipelineCtx<'_>, captures: &[GemmCapture]) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.characterization.v1");
    hash_hardware(&mut h, ctx.hw);
    let array = ctx.array.config();
    h.write_usize(array.rows);
    h.write_usize(array.cols);
    h.write_f64(array.clock_ps);
    h.write_usize(array.acc_bits);
    let cfg = ctx.cfg;
    h.write_u64(cfg.seed);
    h.write_usize(cfg.bins());
    h.write_usize(cfg.power_samples());
    h.write_usize(cfg.weight_stride());
    h.write_usize(captures.len());
    let mut scratch = Vec::new();
    for c in captures {
        h.write_str(&c.layer);
        h.write_usize(c.m);
        h.write_usize(c.k);
        h.write_usize(c.n);
        // i8 codes share the u8 byte representation; one reused scratch
        // buffer instead of an allocation per capture.
        scratch.clear();
        scratch.extend(c.weight_codes.iter().map(|&w| w as u8));
        h.write_bytes(&scratch);
        h.write_bytes(&c.act_codes);
    }
    h.finalize()
}

/// The cache key of the timing characterization artifact.
///
/// Commits to the cell library, both netlist structures, and every
/// field of the effective timing configuration (including the
/// slow-combination floor, which changes which transitions are stored
/// individually).
#[must_use]
pub fn timing_key(ctx: &PipelineCtx<'_>, slow_floor_ps: f64) -> Digest128 {
    let mut h = Hasher128::new("powerpruning.timing.v1");
    hash_hardware(&mut h, ctx.hw);
    let (exhaustive, samples) = ctx.cfg.timing_exhaustive();
    h.write_bool(exhaustive);
    h.write_usize(samples);
    h.write_u64(ctx.cfg.seed);
    h.write_f64(slow_floor_ps);
    h.write_usize(ctx.cfg.weight_stride());
    h.finalize()
}

fn provenance_section(ctx: &PipelineCtx<'_>, kind: &str) -> Section {
    let mut buf = Vec::new();
    let created = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    for (k, v) in [
        ("artifact", kind.to_string()),
        ("crate_version", env!("CARGO_PKG_VERSION").to_string()),
        ("scale", format!("{:?}", ctx.cfg.scale)),
        ("seed", format!("{:#x}", ctx.cfg.seed)),
        ("mac", ctx.hw.mac().netlist().name().to_string()),
        ("created_unix", created.to_string()),
    ] {
        wire::put_str(&mut buf, k);
        wire::put_str(&mut buf, &v);
    }
    Section::new(section::PROVENANCE, buf)
}

/// Parses a provenance section into `(key, value)` pairs — the CLI's
/// `stat` view. Unknown layouts yield an empty list rather than an
/// error (provenance is informational, never load-bearing).
#[must_use]
pub fn decode_provenance(sections: &[Section]) -> Vec<(String, String)> {
    let Some(s) = find(sections, section::PROVENANCE) else {
        return Vec::new();
    };
    let mut r = Reader::new(&s.bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let Ok(k) = r.str() else { return Vec::new() };
        let Ok(v) = r.str() else { return Vec::new() };
        out.push((k, v));
    }
    out
}

fn encode_characterization(ctx: &PipelineCtx<'_>, chars: &Characterization) -> Vec<Section> {
    let mut stats = Vec::new();
    chars.stats.write_to(&mut stats);
    let mut binning = Vec::new();
    chars.binning.write_to(&mut binning);
    let mut power = Vec::new();
    chars.power_profile.write_to(&mut power);
    let mut energy = Vec::new();
    chars.energy_model.write_to(&mut energy);
    vec![
        provenance_section(ctx, "characterization"),
        Section::new(section::STATS, stats),
        Section::new(section::BINNING, binning),
        Section::new(section::POWER_PROFILE, power),
        Section::new(section::ENERGY_MODEL, energy),
    ]
}

fn required<'a>(sections: &'a [Section], id: u32) -> io::Result<Reader<'a>> {
    find(sections, id)
        .map(|s| Reader::new(&s.bytes))
        .ok_or_else(|| wire::invalid(format!("artifact is missing section {id}")))
}

fn decode_characterization(sections: &[Section]) -> io::Result<Characterization> {
    let mut r = required(sections, section::STATS)?;
    let stats = systolic::TransitionStats::read_from(&mut r)?;
    r.finish()?;
    let mut r = required(sections, section::BINNING)?;
    let binning = PsumBinning::read_from(&mut r)?;
    r.finish()?;
    let mut r = required(sections, section::POWER_PROFILE)?;
    let power_profile = WeightPowerProfile::read_from(&mut r)?;
    r.finish()?;
    let mut r = required(sections, section::ENERGY_MODEL)?;
    let energy_model = MacEnergyModel::read_from(&mut r)?;
    r.finish()?;
    Ok(Characterization {
        stats,
        binning,
        power_profile,
        energy_model,
    })
}

fn encode_timing(ctx: &PipelineCtx<'_>, profile: &WeightTimingProfile) -> Vec<Section> {
    let mut buf = Vec::new();
    profile.write_to(&mut buf);
    vec![
        provenance_section(ctx, "timing"),
        Section::new(section::TIMING_PROFILE, buf),
    ]
}

fn decode_timing(sections: &[Section]) -> io::Result<WeightTimingProfile> {
    let mut r = required(sections, section::TIMING_PROFILE)?;
    let profile = WeightTimingProfile::read_from(&mut r)?;
    r.finish()?;
    Ok(profile)
}

/// Typed hit/miss counters of one [`CharCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Artifact lookups answered from the store (either tier).
    pub hits: u64,
    /// Lookups that had to fall through to gate-level simulation.
    pub misses: u64,
}

/// The pipeline-facing artifact cache: typed lookups and stores over a
/// [`charstore::Store`], plus hit/miss accounting.
#[derive(Debug)]
pub struct CharCache {
    store: Store,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CharCache {
    /// Opens a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the store layout.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CharCache> {
        Ok(CharCache {
            store: Store::open(dir.as_ref())?,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Whether `POWERPRUNING_CACHE` is set to `off`/`0`/`false`. The
    /// env kill switch overrides every configuration path, including
    /// explicit store directories.
    #[must_use]
    pub fn disabled_by_env() -> bool {
        std::env::var("POWERPRUNING_CACHE")
            .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
    }

    /// Opens the cache described by the environment: `None` when
    /// `POWERPRUNING_CACHE` is `off`/`0`/`false` or the store directory
    /// cannot be created (the pipeline silently runs uncached — a cache
    /// must never turn a runnable experiment into an error).
    #[must_use]
    pub fn from_env() -> Option<CharCache> {
        if CharCache::disabled_by_env() {
            return None;
        }
        let dir = std::env::var("POWERPRUNING_CACHE_DIR")
            .unwrap_or_else(|_| DEFAULT_CACHE_DIR.to_string());
        CharCache::open(dir).ok()
    }

    /// The underlying store (for the CLI and tests).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Snapshot of the typed hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn record<T>(&self, result: Option<T>) -> Option<T> {
        match result {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a characterization artifact. Any store miss or decode
    /// failure is a cache miss.
    #[must_use]
    pub fn lookup_characterization(&self, key: Digest128) -> Option<Characterization> {
        let decoded = self
            .store
            .get(key)
            .and_then(|s| decode_characterization(&s).ok());
        self.record(decoded)
    }

    /// Stores a characterization artifact. Failures are swallowed (the
    /// computed artifact is still returned to the caller; only warm
    /// starts are lost).
    pub fn store_characterization(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        chars: &Characterization,
    ) {
        let _ = self.store.put(key, encode_characterization(ctx, chars));
    }

    /// Looks up a timing artifact. Any store miss or decode failure is
    /// a cache miss.
    #[must_use]
    pub fn lookup_timing(&self, key: Digest128) -> Option<WeightTimingProfile> {
        let decoded = self.store.get(key).and_then(|s| decode_timing(&s).ok());
        self.record(decoded)
    }

    /// Stores a timing artifact (failures swallowed, as above).
    pub fn store_timing(
        &self,
        ctx: &PipelineCtx<'_>,
        key: Digest128,
        profile: &WeightTimingProfile,
    ) {
        let _ = self.store.put(key, encode_timing(ctx, profile));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig, Scale};

    fn micro_ctx_pipeline() -> Pipeline {
        let mut cfg = PipelineConfig::for_scale(Scale::Micro);
        cfg.cache = false;
        Pipeline::new(cfg)
    }

    #[test]
    fn keys_commit_to_configuration() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let base = timing_key(&ctx, 100.0);
        assert_eq!(base, timing_key(&ctx, 100.0));
        assert_ne!(base, timing_key(&ctx, 101.0));

        let mut cfg2 = *p.ctx().cfg;
        cfg2.seed ^= 1;
        let p2 = Pipeline::new(cfg2);
        assert_ne!(base, timing_key(&p2.ctx(), 100.0));
    }

    #[test]
    fn characterization_key_commits_to_captures() {
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        let mut capture = GemmCapture {
            layer: "l0".into(),
            weight_codes: vec![1, -2, 3, -4],
            act_codes: vec![9, 8, 7, 6],
            m: 2,
            k: 2,
            n: 2,
        };
        let a = characterization_key(&ctx, std::slice::from_ref(&capture));
        assert_eq!(
            a,
            characterization_key(&ctx, std::slice::from_ref(&capture))
        );
        capture.weight_codes[0] = 2;
        assert_ne!(
            a,
            characterization_key(&ctx, std::slice::from_ref(&capture))
        );
    }

    #[test]
    fn timing_and_characterization_keys_never_collide() {
        // Domain separation: even with degenerate inputs the two
        // artifact kinds key into disjoint spaces.
        let p = micro_ctx_pipeline();
        let ctx = p.ctx();
        assert_ne!(timing_key(&ctx, 0.0), characterization_key(&ctx, &[]));
    }

    #[test]
    fn provenance_round_trips() {
        let p = micro_ctx_pipeline();
        let sections = vec![provenance_section(&p.ctx(), "unit-test")];
        let pairs = decode_provenance(&sections);
        assert!(pairs
            .iter()
            .any(|(k, v)| k == "artifact" && v == "unit-test"));
        assert!(pairs.iter().any(|(k, _)| k == "created_unix"));
        assert!(decode_provenance(&[]).is_empty());
    }
}
