//! Retraining with restricted weight/activation values (paper §III-C).
//!
//! Two retraining flavours appear in the paper's flow:
//!
//! * **Conventional pruning** — weights with small magnitudes are forced
//!   to zero (and held there with a mask across optimizer steps), then
//!   the network is retrained. This is the "Pruned" baseline of Fig. 7
//!   and the first step of the proposed flow.
//! * **Restricted retraining** — the network is retrained while its
//!   weights/activations are projected onto the selected value sets in
//!   the forward pass; the backward pass uses the straight-through
//!   estimator (the projection is skipped when propagating gradients),
//!   exactly as described with reference [15].

use nn::data::Dataset;
use nn::model::Network;
use nn::quant::ValueSet;
use nn::train::{evaluate, train, train_with_hook, TrainConfig};
use rand::rngs::StdRng;

/// Retraining configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainConfig {
    /// Underlying SGD configuration.
    pub train: TrainConfig,
    /// Batch size for evaluation passes.
    pub eval_batch: usize,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            train: TrainConfig {
                epochs: 3,
                lr: 0.02,
                ..TrainConfig::default()
            },
            eval_batch: 64,
        }
    }
}

/// Installs the given restriction sets, retrains quantization-aware, and
/// returns the resulting test accuracy.
///
/// `weights`/`activations` of `None` leave the corresponding restriction
/// unchanged.
pub fn restricted_retrain(
    net: &mut Network,
    train_data: &Dataset,
    test_data: &Dataset,
    weights: Option<&[i32]>,
    activations: Option<&[i32]>,
    cfg: &RetrainConfig,
    rng: &mut StdRng,
) -> f64 {
    net.quantize = true;
    if let Some(w) = weights {
        net.set_weight_restriction(Some(ValueSet::new(w.iter().copied())));
    }
    if let Some(a) = activations {
        net.set_activation_restriction(Some(ValueSet::new(a.iter().copied())));
    }
    let _ = train(net, train_data, &cfg.train, rng);
    evaluate(net, test_data, cfg.eval_batch)
}

/// Forces the smallest-magnitude fraction of each weight tensor to zero
/// and returns per-parameter masks (`true` = pruned) in visit order.
///
/// Each weight tensor prunes exactly `⌊len · sparsity⌋` elements on
/// tie-free magnitudes (ties at the cut threshold are all pruned, so the
/// count can only exceed the floor by the tie multiplicity). `sparsity =
/// 0.0` is a guaranteed no-op: no weight is touched and every mask is
/// all-false.
pub fn magnitude_prune(net: &mut Network, sparsity: f64) -> Vec<Vec<bool>> {
    let sparsity = sparsity.clamp(0.0, 1.0);
    let mut masks = Vec::new();
    net.visit_params(&mut |p| {
        if !p.decay {
            masks.push(Vec::new()); // placeholder for non-weight params
            return;
        }
        let len = p.value.data().len();
        let cut_count = (len as f64 * sparsity) as usize;
        if cut_count == 0 {
            masks.push(vec![false; len]);
            return;
        }
        let mut mags: Vec<f32> = p.value.data().iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
        let threshold = mags[cut_count - 1];
        let mask: Vec<bool> = p
            .value
            .data()
            .iter()
            .map(|v| v.abs() <= threshold)
            .collect();
        for (v, &m) in p.value.data_mut().iter_mut().zip(&mask) {
            if m {
                *v = 0.0;
            }
        }
        masks.push(mask);
    });
    masks
}

/// Re-applies pruning masks (zeroes masked weights) after optimizer
/// updates.
fn apply_masks(net: &mut Network, masks: &[Vec<bool>]) {
    let mut idx = 0usize;
    net.visit_params(&mut |p| {
        if idx < masks.len() && !masks[idx].is_empty() {
            for (v, &m) in p.value.data_mut().iter_mut().zip(&masks[idx]) {
                if m {
                    *v = 0.0;
                }
            }
        }
        idx += 1;
    });
}

/// Conventional pruning baseline: magnitude-prunes to `sparsity`, then
/// retrains while holding pruned weights at zero. Returns the test
/// accuracy.
///
/// The retraining loop is [`train_with_hook`] with a post-step hook
/// re-applying the pruning masks, so its epochs are counted by
/// [`nn::train::epochs_run`] and `nn_training_epochs_total` exactly
/// like every other training flavour.
pub fn prune_retrain(
    net: &mut Network,
    train_data: &Dataset,
    test_data: &Dataset,
    sparsity: f64,
    cfg: &RetrainConfig,
    rng: &mut StdRng,
) -> f64 {
    net.quantize = true;
    let masks = magnitude_prune(net, sparsity);
    let _ = train_with_hook(net, train_data, &cfg.train, rng, |net| {
        apply_masks(net, &masks);
    });
    evaluate(net, test_data, cfg.eval_batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::data::SyntheticSpec;
    use nn::models;
    use rand::SeedableRng;

    fn datasets() -> (Dataset, Dataset) {
        let train = SyntheticSpec {
            classes: 3,
            size: 8,
            channels: 1,
            samples: 150,
            noise: 0.05,
            seed: 10,
        }
        .generate();
        let test = SyntheticSpec {
            classes: 3,
            size: 8,
            channels: 1,
            samples: 60,
            noise: 0.05,
            seed: 20,
        }
        .generate();
        (train, test)
    }

    fn quick_cfg() -> RetrainConfig {
        RetrainConfig {
            train: TrainConfig {
                epochs: 3,
                batch_size: 16,
                lr: 0.05,
                ..TrainConfig::default()
            },
            eval_batch: 32,
        }
    }

    #[test]
    fn magnitude_prune_hits_target_sparsity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = models::tiny_cnn("p", 1, 8, 3, &mut rng);
        let _ = magnitude_prune(&mut net, 0.5);
        let frac = net.zero_weight_fraction();
        assert!(frac >= 0.45, "zero fraction {frac} below target");
    }

    #[test]
    fn prune_retrain_keeps_pruned_weights_zero() {
        let (train_data, test_data) = datasets();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = models::tiny_cnn("p", 1, 8, 3, &mut rng);
        let _ = prune_retrain(
            &mut net,
            &train_data,
            &test_data,
            0.6,
            &quick_cfg(),
            &mut rng,
        );
        let frac = net.zero_weight_fraction();
        assert!(
            frac >= 0.55,
            "sparsity {frac} not maintained through training"
        );
    }

    #[test]
    fn restricted_retrain_learns_with_few_weight_values() {
        let (train_data, test_data) = datasets();
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = models::tiny_cnn("r", 1, 8, 3, &mut rng);
        // Pre-train unrestricted.
        net.quantize = true;
        let _ = train(&mut net, &train_data, &quick_cfg().train, &mut rng);
        let allowed: Vec<i32> = vec![-96, -64, -32, -16, -8, -4, -2, 0, 2, 4, 8, 16, 32, 64, 96];
        let acc = restricted_retrain(
            &mut net,
            &train_data,
            &test_data,
            Some(&allowed),
            None,
            &quick_cfg(),
            &mut rng,
        );
        assert!(acc > 0.45, "restricted accuracy {acc} collapsed");
    }

    #[test]
    fn activation_restriction_is_installed() {
        let (train_data, test_data) = datasets();
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = models::tiny_cnn("a", 1, 8, 3, &mut rng);
        let acts: Vec<i32> = (0..256).step_by(2).collect();
        let acc = restricted_retrain(
            &mut net,
            &train_data,
            &test_data,
            None,
            Some(&acts),
            &quick_cfg(),
            &mut rng,
        );
        assert!((0.0..=1.0).contains(&acc));
    }
}
