//! The versioned on-disk artifact container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic       8 bytes   b"PPCHART1"
//! version     u32       FORMAT_VERSION
//! sections    u32       number of sections (bounded)
//! table       n × { id: u32, len: u64, checksum: u64 }
//! payloads    concatenated section bytes, in table order
//! file_sum    u64       digest of every preceding byte
//! ```
//!
//! The trailing file checksum catches any single flipped byte anywhere
//! in the file (header included); per-section checksums additionally
//! localize corruption and protect readers that only touch one section.
//! Decoding applies the [`crate::wire`] hardening rules: the section
//! count and every length are validated against the actual file size
//! before allocation, and trailing bytes after the checksum are
//! rejected.

use crate::digest::Hasher128;
use crate::wire::{self, Reader};
use std::io;

/// Container magic ("PowerPruning CHaracterization ARTifacts v1").
pub const MAGIC: &[u8; 8] = b"PPCHART1";

/// Current container format version. Bump on any change to the layout,
/// the section payload encodings, or the key/checksum hash.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound on sections per container (a real artifact has < 10).
pub const MAX_SECTIONS: u32 = 64;

/// One typed payload inside a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Section type id; meanings are assigned by the artifact layer.
    pub id: u32,
    /// Opaque payload bytes.
    pub bytes: Vec<u8>,
}

impl Section {
    /// A section from an id and payload.
    #[must_use]
    pub fn new(id: u32, bytes: Vec<u8>) -> Self {
        Section { id, bytes }
    }
}

fn checksum(data: &[u8]) -> u64 {
    let mut h = Hasher128::new("charstore.checksum");
    h.update(data);
    h.finalize().lo64()
}

/// Serializes sections into a checksummed container.
#[must_use]
pub fn encode(sections: &[Section]) -> Vec<u8> {
    assert!(
        sections.len() <= MAX_SECTIONS as usize,
        "too many sections ({})",
        sections.len()
    );
    let payload_len: usize = sections.iter().map(|s| s.bytes.len()).sum();
    let mut out = Vec::with_capacity(16 + sections.len() * 20 + payload_len + 8);
    out.extend_from_slice(MAGIC);
    wire::put_u32(&mut out, FORMAT_VERSION);
    wire::put_u32(&mut out, sections.len() as u32);
    for s in sections {
        wire::put_u32(&mut out, s.id);
        wire::put_u64(&mut out, s.bytes.len() as u64);
        wire::put_u64(&mut out, checksum(&s.bytes));
    }
    for s in sections {
        out.extend_from_slice(&s.bytes);
    }
    let sum = checksum(&out);
    wire::put_u64(&mut out, sum);
    out
}

/// Parses and verifies a container, returning its sections.
///
/// # Errors
///
/// `InvalidData` on bad magic, unknown version, any checksum mismatch,
/// implausible section counts/lengths, or trailing bytes.
pub fn decode(data: &[u8]) -> io::Result<Vec<Section>> {
    // Whole-file integrity first: any flipped byte fails here, before
    // the parser trusts a single header field.
    if data.len() < MAGIC.len() + 4 + 4 + 8 {
        return Err(wire::invalid("container shorter than fixed header"));
    }
    let (body, sum_bytes) = data.split_at(data.len() - 8);
    let stored_sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if checksum(body) != stored_sum {
        return Err(wire::invalid(
            "container checksum mismatch (corrupted file)",
        ));
    }

    let mut r = Reader::new(body);
    if r.take(8)? != MAGIC {
        return Err(wire::invalid("not a charstore container (bad magic)"));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(wire::invalid(format!(
            "unsupported container version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let count = r.u32()?;
    if count > MAX_SECTIONS {
        return Err(wire::invalid(format!(
            "implausible section count {count} (max {MAX_SECTIONS})"
        )));
    }
    if (count as usize) * 20 > r.remaining() {
        return Err(wire::invalid("section table exceeds file size"));
    }
    let mut table = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = r.u32()?;
        let len = r.u64()?;
        let sum = r.u64()?;
        table.push((id, len, sum));
    }
    let declared: u64 = table
        .iter()
        .try_fold(0u64, |acc, &(_, len, _)| acc.checked_add(len))
        .ok_or_else(|| wire::invalid("section lengths overflow"))?;
    if declared != r.remaining() as u64 {
        return Err(wire::invalid(format!(
            "section lengths sum to {declared} but {} payload bytes are present",
            r.remaining()
        )));
    }
    let mut sections = Vec::with_capacity(table.len());
    for (id, len, _sum) in table {
        // The whole-file checksum verified above already covers every
        // payload byte; re-hashing each section here would double the
        // decode cost of the warm-start path for no integrity gain.
        // The per-section sums stay in the format for tools that read
        // a single section without the surrounding file.
        let bytes = r.take(len as usize)?;
        sections.push(Section::new(id, bytes.to_vec()));
    }
    r.finish()?;
    Ok(sections)
}

/// Finds a section by id.
#[must_use]
pub fn find(sections: &[Section], id: u32) -> Option<&Section> {
    sections.iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Section> {
        vec![
            Section::new(1, b"provenance: test".to_vec()),
            Section::new(2, vec![0u8; 301]),
            Section::new(7, (0..=255u8).collect()),
        ]
    }

    #[test]
    fn round_trips() {
        let sections = sample();
        let encoded = encode(&sections);
        assert_eq!(decode(&encoded).unwrap(), sections);
    }

    #[test]
    fn empty_container_round_trips() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<Section>::new());
    }

    #[test]
    fn every_single_flipped_byte_is_detected() {
        let encoded = encode(&sample());
        for i in 0..encoded.len() {
            let mut bad = encoded.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let encoded = encode(&sample());
        for cut in [0, 1, 10, encoded.len() - 1] {
            assert!(decode(&encoded[..cut]).is_err(), "cut to {cut} bytes");
        }
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut encoded = encode(&sample());
        encoded.push(0);
        assert!(decode(&encoded).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut encoded = encode(&sample());
        encoded[0..8].copy_from_slice(b"NOTMAGIC");
        // Fails the file checksum; also repair the checksum to prove the
        // magic check itself fires.
        assert!(decode(&encoded).is_err());
        let body_len = encoded.len() - 8;
        let sum = {
            let mut h = Hasher128::new("charstore.checksum");
            h.update(&encoded[..body_len]);
            h.finalize().lo64()
        };
        encoded[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&encoded).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn find_locates_sections() {
        let sections = sample();
        assert!(find(&sections, 2).is_some());
        assert!(find(&sections, 99).is_none());
    }
}
