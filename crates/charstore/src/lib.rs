//! Persistent content-addressed storage for characterization artifacts.
//!
//! The PowerPruning flow's expensive products — per-weight power and
//! timing profiles — are pure functions of their inputs (cell library,
//! netlist structure, seeds, sample budgets). This crate provides the
//! storage discipline that lets the pipeline characterize **once** and
//! serve every later run from a durable cache:
//!
//! * [`digest`] — stable 128-bit input digests ([`Digest128`],
//!   [`Hasher128`]): artifact keys commit to *everything* that
//!   determined the artifact, so a key hit is provably the same
//!   computation.
//! * [`wire`] — little-endian encoding helpers and a bounds-checked
//!   [`wire::Reader`] hardened against hostile or truncated input.
//! * [`container`] — the versioned on-disk format: magic, version,
//!   section table, per-section and whole-file checksums.
//! * [`store`] — the tiered [`Store`]: in-memory LRU over decoded
//!   sections plus a prefix-sharded directory of container files, with
//!   advisory file locking so concurrent experiment binaries share one
//!   store, an oldest-first [`Store::gc`] sweep, and a re-checksumming
//!   [`Store::verify`] audit. Legacy flat-layout stores migrate into
//!   the sharded layout transparently as they are read.
//! * [`remote`] — the optional third tier: a [`RemoteTier`] client for
//!   a `charserve`-style object endpoint. Local `get` misses fall
//!   through to `GET /object/<key>` (the fetched container is
//!   re-checksummed client-side, so wire corruption degrades to a miss
//!   exactly like disk corruption) and local `put`s are
//!   write-through-published with `PUT /object/<key>`; any remote
//!   failure degrades the store to local-only operation.
//!
//! This crate is domain-agnostic (sections are opaque bytes); the
//! `powerpruning` crate layers typed characterization artifacts and
//! cache-key derivation on top, and `gatesim` uses [`Hasher128`] for
//! netlist structural digests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod container;
pub mod digest;
pub mod remote;
pub mod store;
pub mod wire;

pub use container::{Section, FORMAT_VERSION};
pub use digest::{digest_bytes, Digest128, Hasher128};
pub use remote::RemoteTier;
pub use store::{register_metrics, EntryInfo, GcReport, Store, StoreCounters, VerifyReport};
