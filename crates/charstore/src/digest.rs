//! Stable 128-bit content digests.
//!
//! [`Hasher128`] is a streaming hash in the MurmurHash3-x64-128 family:
//! two 64-bit lanes mixed per 16-byte block, with strong avalanche
//! finalization. It is **not** cryptographic — it keys a cache of
//! deterministic recomputable artifacts, so the threat model is
//! accidental collision, not an adversary. What matters instead is
//! *stability*: digests are persisted on disk as artifact keys, so the
//! byte-for-byte output of this hash is a compatibility promise, pinned
//! by test vectors below. Any change to the mixing constants or the
//! encoding helpers is a store-format break and must bump
//! [`crate::container::FORMAT_VERSION`].

use std::fmt;

/// A 128-bit content digest (the key of a stored artifact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest128(pub [u8; 16]);

impl Digest128 {
    /// The digest as a lowercase 32-character hex string (the on-disk
    /// object file stem).
    #[must_use]
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Parses a 32-character hex string produced by [`Digest128::to_hex`].
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Digest128> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest128(out))
    }

    /// A short human-facing prefix (first 12 hex chars) for listings.
    #[must_use]
    pub fn short(self) -> String {
        self.to_hex()[..12].to_string()
    }

    /// The low 64 bits, used as the container checksum word.
    #[must_use]
    pub fn lo64(self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl fmt::Display for Digest128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Streaming 128-bit hasher with typed little-endian write helpers.
///
/// The typed helpers (`write_u64`, `write_f64`, `write_str`, …) define
/// the *canonical encoding* of hashed inputs: every caller building a
/// cache key goes through them, so two call sites hashing the same
/// logical inputs produce the same digest. Strings and slices are
/// length-prefixed, so concatenation ambiguity ("ab"+"c" vs "a"+"bc")
/// cannot produce colliding keys.
#[derive(Debug, Clone)]
pub struct Hasher128 {
    h1: u64,
    h2: u64,
    buf: [u8; 16],
    buf_len: usize,
    total: u64,
}

impl Hasher128 {
    /// A fresh hasher with a domain-separation tag. Different artifact
    /// kinds use different tags so their key spaces never overlap.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut h = Hasher128 {
            h1: 0x9e37_79b9_7f4a_7c15,
            h2: 0x2545_f491_4f6c_dd1d,
            buf: [0; 16],
            buf_len: 0,
            total: 0,
        };
        h.write_str(domain);
        h
    }

    #[inline]
    fn mix_block(&mut self, block: &[u8; 16]) {
        let mut k1 = u64::from_le_bytes(block[..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(block[8..].try_into().expect("8 bytes"));
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        self.h1 ^= k1;
        self.h1 = self
            .h1
            .rotate_left(27)
            .wrapping_add(self.h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        self.h2 ^= k2;
        self.h2 = self
            .h2
            .rotate_left(31)
            .wrapping_add(self.h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    /// Feeds raw bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 16 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.mix_block(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().expect("16 bytes");
            self.mix_block(&block);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Feeds one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.update(&[v]);
    }

    /// Feeds a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds a little-endian `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds a `usize` as `u64` (platform-independent key).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern (exact, including NaN payloads and
    /// signed zero — two configs differing only in `-0.0` vs `0.0` key
    /// differently, which is the conservative choice for a cache).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Feeds a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.update(s.as_bytes());
    }

    /// Feeds a length-prefixed byte slice.
    pub fn write_bytes(&mut self, b: &[u8]) {
        self.write_u64(b.len() as u64);
        self.update(b);
    }

    /// Finalizes the digest. The hasher can keep being fed afterwards
    /// (finalize is non-destructive), which lets callers derive both a
    /// prefix digest and a full digest from one stream.
    #[must_use]
    pub fn finalize(&self) -> Digest128 {
        let mut h = self.clone();
        if h.buf_len > 0 {
            // Zero-pad the tail block; the total length fed below keeps
            // padded and unpadded streams distinct.
            for b in &mut h.buf[h.buf_len..] {
                *b = 0;
            }
            let block = h.buf;
            h.mix_block(&block);
        }
        let (mut h1, mut h2) = (h.h1, h.h2);
        h1 ^= h.total;
        h2 ^= h.total;
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        h1 = fmix64(h1);
        h2 = fmix64(h2);
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&h1.to_le_bytes());
        out[8..].copy_from_slice(&h2.to_le_bytes());
        Digest128(out)
    }
}

/// One-shot digest of a byte slice under a domain tag.
#[must_use]
pub fn digest_bytes(domain: &str, data: &[u8]) -> Digest128 {
    let mut h = Hasher128::new(domain);
    h.write_bytes(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let d = digest_bytes("t", b"hello");
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest128::from_hex(&hex), Some(d));
        assert_eq!(Digest128::from_hex("zz"), None);
        assert_eq!(Digest128::from_hex(&hex[..30]), None);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Hasher128::new("t");
        h.write_u64(5);
        h.update(b"hello world, this is a long-ish test vector!");
        let mut g = Hasher128::new("t");
        g.write_u64(5);
        for chunk in b"hello world, this is a long-ish test vector!".chunks(3) {
            g.update(chunk);
        }
        assert_eq!(h.finalize(), g.finalize());
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut a = Hasher128::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = Hasher128::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn domains_separate_key_spaces() {
        assert_ne!(digest_bytes("power", b"x"), digest_bytes("timing", b"x"));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let base = b"characterization artifact payload".to_vec();
        let d0 = digest_bytes("t", &base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(d0, digest_bytes("t", &flipped), "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn pinned_vectors_guard_on_disk_stability() {
        // These digests are persisted as store keys: changing the hash
        // silently orphans every existing artifact. If this test fails
        // you changed the hash — bump the container FORMAT_VERSION and
        // re-pin.
        assert_eq!(
            digest_bytes("charstore", b"").to_hex(),
            "047cea6c09f0a3a11833ece5cd3e777b"
        );
        assert_eq!(
            digest_bytes("charstore", b"powerpruning").to_hex(),
            "338a043db813d778468f9d3811e2e069"
        );
        let mut h = Hasher128::new("charstore");
        h.write_u64(0xdac2023);
        h.write_f64(200.0);
        h.write_str("micro");
        assert_eq!(h.finalize().to_hex(), "480d3a0cae5126ebe1c44fe7b9ab87bb");
    }

    #[test]
    fn finalize_is_non_destructive() {
        let mut h = Hasher128::new("t");
        h.write_u64(1);
        let a = h.finalize();
        assert_eq!(a, h.finalize());
        h.write_u64(2);
        assert_ne!(a, h.finalize());
    }
}
