//! The tiered content-addressed artifact store.
//!
//! Tier 1 is an in-memory LRU over decoded section lists (shared
//! `Arc`s, bounded by a byte budget); tier 2 is a directory of
//! checksummed container files named by the artifact key, sharded into
//! 256 subdirectories by the first key byte so directory listings stay
//! cheap as cached pipeline stages multiply entries; an optional tier 3
//! is a [`RemoteTier`] pointing at a `charserve` object endpoint —
//! `get` misses fall through to it (fetched containers are
//! re-checksummed client-side and written into the local disk tier)
//! and `put`s are write-through-published, so a fleet of workers
//! shares one warm cache without a shared filesystem:
//!
//! ```text
//! <root>/
//!   objects/<2-hex-prefix>/<32-hex-digest>.ppc   one container per artifact
//!   .lock                                        advisory lock file
//! ```
//!
//! Stores written by earlier versions used a flat
//! `objects/<32-hex-digest>.ppc` layout. Flat objects remain readable:
//! a lookup that misses the sharded path falls back to the flat path
//! and, on success, migrates the object into its shard with an atomic
//! rename — so an old store heals itself into the new layout one get at
//! a time, with no explicit migration step. [`Store::entries`],
//! [`Store::gc`] and [`Store::verify`] walk both layouts.
//!
//! Concurrency: writers stage into a writer-unique temp file and
//! `rename` it into place (atomic on POSIX), so readers never observe a
//! half-written object. On top of that, every disk mutation takes the
//! advisory file lock — shared for `put` (concurrent writers are safe
//! thanks to the atomic rename), exclusive for [`Store::gc`] so it
//! never deletes an object out from under a concurrent reader holding
//! the shared lock. Multiple experiment binaries can therefore share
//! one store.
//!
//! A corrupted object file (flipped byte, truncation, version skew) is
//! reported as a miss — the caller recomputes and overwrites it — never
//! as an error that kills the pipeline. [`Store::verify`] re-checksums
//! every object on disk for operators who want an explicit audit.

use crate::container::{self, Section};
use crate::digest::Digest128;
use crate::remote::RemoteTier;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Process-global registry mirrors of the per-instance
/// [`StoreCounters`], plus tier latency histograms. The per-instance
/// atomics stay authoritative for `Store::counters()` (tests and the
/// daemon's `/stats` rely on instance-local exactness); these mirrors
/// aggregate across every store in the process for `/metrics`.
struct StoreMetrics {
    mem_hits: obs::metrics::Counter,
    disk_hits: obs::metrics::Counter,
    misses: obs::metrics::Counter,
    puts: obs::metrics::Counter,
    remote_hits: obs::metrics::Counter,
    remote_misses: obs::metrics::Counter,
    remote_publishes: obs::metrics::Counter,
    remote_errors: obs::metrics::Counter,
    get_seconds: obs::metrics::Histogram,
    put_seconds: obs::metrics::Histogram,
    remote_fetch_seconds: obs::metrics::Histogram,
}

static METRICS: LazyLock<StoreMetrics> = LazyLock::new(|| StoreMetrics {
    mem_hits: obs::metrics::counter("charstore_mem_hits_total"),
    disk_hits: obs::metrics::counter("charstore_disk_hits_total"),
    misses: obs::metrics::counter("charstore_misses_total"),
    puts: obs::metrics::counter("charstore_puts_total"),
    remote_hits: obs::metrics::counter("charstore_remote_hits_total"),
    remote_misses: obs::metrics::counter("charstore_remote_misses_total"),
    remote_publishes: obs::metrics::counter("charstore_remote_publishes_total"),
    remote_errors: obs::metrics::counter("charstore_remote_errors_total"),
    get_seconds: obs::metrics::histogram("charstore_get_seconds", obs::metrics::LATENCY_SECONDS),
    put_seconds: obs::metrics::histogram("charstore_put_seconds", obs::metrics::LATENCY_SECONDS),
    remote_fetch_seconds: obs::metrics::histogram(
        "charstore_remote_fetch_seconds",
        obs::metrics::LATENCY_SECONDS,
    ),
});

/// Forces registration of every `charstore_*` metric so it renders in
/// Prometheus exposition (at zero) before any store traffic. Called on
/// [`Store`] construction: a daemon that has served nothing — and whose
/// remote hits all happen in *client* processes — still exposes the
/// full counter set.
pub fn register_metrics() {
    LazyLock::force(&METRICS);
}

/// Default in-memory tier budget: plenty for a full Mini-scale
/// characterization set while staying irrelevant next to the pipeline's
/// own footprint.
pub const DEFAULT_MEM_BUDGET_BYTES: usize = 64 << 20;

const OBJECT_EXT: &str = "ppc";

/// How long the remote tier is skipped after a transport failure. One
/// failed operation pays the connect timeout; everything else inside
/// the window degrades to local-only immediately, so a dead or
/// unroutable daemon costs a sweep one timeout per window instead of
/// one per artifact. Any successful remote operation closes the window
/// early, so a daemon restart is picked up on the next attempt.
const REMOTE_BACKOFF: Duration = Duration::from_secs(5);

/// Monotonic hit/miss counters of one [`Store`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Lookups served from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups served from disk (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing (or a corrupted object).
    pub misses: u64,
    /// Artifacts written.
    pub puts: u64,
    /// Lookups served from the remote tier (validated, then written
    /// into the local disk tier).
    pub remote_hits: u64,
    /// Remote lookups the daemon answered `404` for, or whose bytes
    /// failed the client-side checksum (wire corruption degrades to a
    /// miss, exactly like disk corruption).
    pub remote_misses: u64,
    /// Local puts write-through-published to the remote tier.
    pub remote_publishes: u64,
    /// Remote operations that failed at the transport level (daemon
    /// down, timeout, protocol violation). The store degrades to
    /// local-only on every one of these.
    pub remote_errors: u64,
}

impl StoreCounters {
    /// Total lookups served from any tier.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits + self.remote_hits
    }
}

/// A disk object listed by [`Store::entries`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Artifact key.
    pub key: Digest128,
    /// Container file size in bytes.
    pub bytes: u64,
    /// Last-modified time of the container file.
    pub modified: SystemTime,
}

/// Result of a [`Store::gc`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Objects deleted.
    pub deleted: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Objects (and bytes) surviving the sweep.
    pub kept: usize,
    /// Bytes still stored after the sweep.
    pub kept_bytes: u64,
}

/// Result of a [`Store::verify`] sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Objects examined (every `.ppc` file in either layout).
    pub checked: usize,
    /// Objects whose container decoded with all checksums intact.
    pub ok: usize,
    /// Keys whose object failed to read or decode.
    pub corrupt: Vec<Digest128>,
}

impl VerifyReport {
    /// Whether every object verified clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

#[derive(Debug)]
struct MemEntry {
    sections: Arc<Vec<Section>>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct MemTier {
    map: HashMap<Digest128, MemEntry>,
    bytes: usize,
    tick: u64,
}

impl MemTier {
    fn touch(&mut self, key: &Digest128) -> Option<Arc<Vec<Section>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.sections)
        })
    }

    fn insert(&mut self, key: Digest128, sections: Arc<Vec<Section>>, budget: usize) {
        let bytes: usize = sections.iter().map(|s| s.bytes.len() + 24).sum();
        if bytes > budget {
            return; // larger than the whole tier: disk-only
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            MemEntry {
                sections,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        // Evict least-recently-used entries until under budget. Linear
        // scan per eviction is fine at tens of artifacts.
        while self.bytes > budget {
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
            }
        }
    }

    fn remove(&mut self, key: &Digest128) {
        if let Some(e) = self.map.remove(key) {
            self.bytes -= e.bytes;
        }
    }
}

/// The tiered content-addressed store: memory LRU → local disk →
/// optional remote object endpoint.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    mem_budget: usize,
    mem: Mutex<MemTier>,
    remote: Option<RemoteTier>,
    /// End of the current remote-failure backoff window, if one is open.
    remote_retry_after: Mutex<Option<Instant>>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    remote_hits: AtomicU64,
    remote_misses: AtomicU64,
    remote_publishes: AtomicU64,
    remote_errors: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory layout.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        Store::with_mem_budget(root, DEFAULT_MEM_BUDGET_BYTES)
    }

    /// [`Store::open`] with an explicit in-memory tier budget in bytes
    /// (0 disables the memory tier).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory layout.
    pub fn with_mem_budget(root: impl Into<PathBuf>, mem_budget: usize) -> io::Result<Store> {
        register_metrics();
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        Ok(Store {
            root,
            mem_budget,
            mem: Mutex::new(MemTier::default()),
            remote: None,
            remote_retry_after: Mutex::new(None),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            remote_hits: AtomicU64::new(0),
            remote_misses: AtomicU64::new(0),
            remote_publishes: AtomicU64::new(0),
            remote_errors: AtomicU64::new(0),
        })
    }

    /// Attaches a remote object tier behind the local tiers: `get`
    /// misses fall through to the endpoint (the fetched container is
    /// re-checksummed client-side, written into the local disk tier and
    /// promoted to memory, so the next lookup is local), and every
    /// successful `put` is write-through-published so other workers
    /// sharing the same daemon see it. Every remote failure — daemon
    /// down, timeout, corrupt bytes — degrades to local-only operation
    /// with a counter bump, never an error.
    #[must_use]
    pub fn with_remote(mut self, remote: RemoteTier) -> Store {
        self.remote = Some(remote);
        self
    }

    /// The attached remote tier, if any.
    #[must_use]
    pub fn remote(&self) -> Option<&RemoteTier> {
        self.remote.as_ref()
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of this instance's hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            remote_publishes: self.remote_publishes.load(Ordering::Relaxed),
            remote_errors: self.remote_errors.load(Ordering::Relaxed),
        }
    }

    /// Sharded object path: `objects/<2-hex-prefix>/<32-hex>.ppc`.
    fn object_path(&self, key: Digest128) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{:02x}", key.0[0]))
            .join(format!("{}.{OBJECT_EXT}", key.to_hex()))
    }

    /// Legacy flat object path: `objects/<32-hex>.ppc` (read-only; gets
    /// migrate hits out of it, puts never write to it).
    fn flat_object_path(&self, key: Digest128) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}.{OBJECT_EXT}", key.to_hex()))
    }

    fn lock_file(&self) -> io::Result<fs::File> {
        fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.root.join(".lock"))
    }

    /// Looks up an artifact: memory tier first, then disk (verifying
    /// checksums and promoting to memory), then — when a remote tier is
    /// attached — the remote endpoint (re-checksumming the fetched
    /// bytes and writing them into the local disk tier, so the next
    /// lookup is local). A corrupted or unreadable object counts as a
    /// miss, whichever tier it came from.
    ///
    /// Lookups that find the object at the legacy flat path migrate it
    /// into its shard (atomic rename) so flat-layout stores converge to
    /// the sharded layout as they are read.
    #[must_use]
    pub fn get(&self, key: Digest128) -> Option<Arc<Vec<Section>>> {
        let mut span = obs::span("store_get");
        let result = METRICS.get_seconds.time(|| self.get_inner(key));
        span.field("key", key.to_hex());
        span.field("hit", result.is_some());
        result
    }

    fn get_inner(&self, key: Digest128) -> Option<Arc<Vec<Section>>> {
        if let Some(hit) = self.mem.lock().expect("mem tier poisoned").touch(&key) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            METRICS.mem_hits.inc();
            return Some(hit);
        }
        let loaded = (|| -> io::Result<Arc<Vec<Section>>> {
            // Shared lock: a concurrent gc (exclusive) cannot delete the
            // object between the read and the checksum verification, and
            // a flat-layout migration never races a sweep.
            let lock = self.lock_file()?;
            lock.lock_shared()?;
            let result = (|| -> io::Result<Arc<Vec<Section>>> {
                let sharded = self.object_path(key);
                let (bytes, from_flat) = match fs::read(&sharded) {
                    Ok(b) => (b, false),
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        match fs::read(self.flat_object_path(key)) {
                            Ok(b) => (b, true),
                            // A concurrent reader may have migrated the
                            // object between our two probes; re-check the
                            // sharded path before declaring a miss.
                            Err(e2) if e2.kind() == io::ErrorKind::NotFound => {
                                (fs::read(&sharded)?, false)
                            }
                            Err(e2) => return Err(e2),
                        }
                    }
                    Err(e) => return Err(e),
                };
                let sections = container::decode(&bytes)?;
                if from_flat {
                    // Best-effort migration of a *valid* object: the
                    // rename is atomic, and a racing migrator simply
                    // loses the rename (source already gone).
                    if let Some(shard) = sharded.parent() {
                        if fs::create_dir_all(shard).is_ok() {
                            let _ = fs::rename(self.flat_object_path(key), &sharded);
                        }
                    }
                }
                Ok(Arc::new(sections))
            })();
            let _ = lock.unlock();
            result
        })();
        match loaded {
            Ok(sections) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                METRICS.disk_hits.inc();
                self.mem.lock().expect("mem tier poisoned").insert(
                    key,
                    Arc::clone(&sections),
                    self.mem_budget,
                );
                Some(sections)
            }
            Err(_) => {
                if let Some(sections) = self.fetch_remote(key) {
                    return Some(sections);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                METRICS.misses.inc();
                None
            }
        }
    }

    /// Whether the remote tier is inside its post-failure backoff
    /// window. A skipped operation counts as a remote error — it
    /// degraded to local-only for the same reason the window opened.
    fn remote_backed_off(&self) -> bool {
        let backed_off = matches!(
            *self.remote_retry_after.lock().expect("backoff poisoned"),
            Some(until) if Instant::now() < until
        );
        if backed_off {
            self.remote_errors.fetch_add(1, Ordering::Relaxed);
            METRICS.remote_errors.inc();
        }
        backed_off
    }

    /// Records a remote transport failure: bump the counter and open
    /// (or extend) the backoff window.
    fn remote_failed(&self) {
        self.remote_errors.fetch_add(1, Ordering::Relaxed);
        METRICS.remote_errors.inc();
        *self.remote_retry_after.lock().expect("backoff poisoned") =
            Some(Instant::now() + REMOTE_BACKOFF);
    }

    /// Records a successful remote round trip: close any backoff window.
    fn remote_recovered(&self) {
        *self.remote_retry_after.lock().expect("backoff poisoned") = None;
    }

    /// The remote leg of [`Store::get`]: fetch, validate client-side,
    /// populate the local tiers. `None` on any remote miss, corruption
    /// or transport failure (counted separately — a dead daemon is not
    /// the same signal as an object nobody has computed yet).
    fn fetch_remote(&self, key: Digest128) -> Option<Arc<Vec<Section>>> {
        let remote = self.remote.as_ref()?;
        if self.remote_backed_off() {
            return None;
        }
        let mut span = obs::span("store_remote_fetch");
        span.field("key", key.to_hex());
        let fetch_started = Instant::now();
        let fetched = remote.fetch(key);
        METRICS
            .remote_fetch_seconds
            .observe_duration(fetch_started.elapsed());
        let bytes = match fetched {
            Ok(Some(bytes)) => {
                self.remote_recovered();
                bytes
            }
            Ok(None) => {
                self.remote_recovered();
                self.remote_misses.fetch_add(1, Ordering::Relaxed);
                METRICS.remote_misses.inc();
                return None;
            }
            Err(_) => {
                self.remote_failed();
                return None;
            }
        };
        // The whole-file checksum is re-validated here, client-side: a
        // flipped byte anywhere on the wire (or on the daemon's disk)
        // degrades to a miss exactly like local disk corruption.
        let Ok(sections) = container::decode(&bytes) else {
            self.remote_misses.fetch_add(1, Ordering::Relaxed);
            METRICS.remote_misses.inc();
            return None;
        };
        self.remote_hits.fetch_add(1, Ordering::Relaxed);
        METRICS.remote_hits.inc();
        // Populate the local disk tier with the already-validated bytes
        // (best-effort: a full disk only costs the next lookup a
        // re-fetch), then promote to memory.
        let _ = self.write_encoded(key, &bytes);
        let sections = Arc::new(sections);
        self.mem.lock().expect("mem tier poisoned").insert(
            key,
            Arc::clone(&sections),
            self.mem_budget,
        );
        Some(sections)
    }

    /// Raw container bytes of an object, for serving over the wire:
    /// the disk file read **without** validation — the consumer
    /// re-checksums client-side, so a corrupt file degrades to a miss
    /// at the far end instead of costing this process a decode. Always
    /// reads disk (a put lands there synchronously, and re-encoding a
    /// memory-tier hit would cost a full checksum recomputation per
    /// serve for bytes the page cache already holds). Never consults
    /// the remote tier and touches no hit/miss counters (object
    /// servers account for themselves).
    #[must_use]
    pub fn get_encoded(&self, key: Digest128) -> Option<Vec<u8>> {
        let lock = self.lock_file().ok()?;
        lock.lock_shared().ok()?;
        // Same probe order as `get`: sharded, then flat, then sharded
        // again — a concurrent reader may migrate a flat object between
        // the first two probes (migration runs under the shared lock
        // too), and answering a spurious miss for an object we hold
        // would cost the far end a full recompute.
        let bytes = fs::read(self.object_path(key))
            .or_else(|_| fs::read(self.flat_object_path(key)))
            .or_else(|_| fs::read(self.object_path(key)))
            .ok();
        let _ = lock.unlock();
        bytes
    }

    /// Whether an artifact exists (either tier, either disk layout),
    /// without promoting it.
    #[must_use]
    pub fn contains(&self, key: Digest128) -> bool {
        self.mem
            .lock()
            .expect("mem tier poisoned")
            .map
            .contains_key(&key)
            || self.object_path(key).exists()
            || self.flat_object_path(key).exists()
    }

    /// Stages already-encoded container bytes into the sharded disk
    /// tier under the shared advisory lock, with the writer-unique
    /// temp-file + atomic-rename discipline. Shared by [`Store::put`]
    /// and the remote-hit populate path.
    fn write_encoded(&self, key: Digest128, encoded: &[u8]) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let final_path = self.object_path(key);
        // Unique per process *and* per thread: concurrent writers must
        // never stage into the same temp file.
        let tmp_path = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let lock = self.lock_file()?;
        lock.lock_shared()?;
        let result = (|| -> io::Result<()> {
            if let Some(shard) = final_path.parent() {
                fs::create_dir_all(shard)?;
            }
            fs::write(&tmp_path, encoded)?;
            fs::rename(&tmp_path, &final_path)
        })();
        let _ = lock.unlock();
        if result.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        result
    }

    /// Stores an artifact under `key`, populating both local tiers and
    /// — when a remote tier is attached — write-through-publishing the
    /// encoded container to the endpoint (best-effort: a dead daemon
    /// bumps `remote_errors` and the put still succeeds locally). Safe
    /// against concurrent writers of the same key: both stage to unique
    /// temp files and the last atomic rename wins (contents are
    /// identical by construction — the key commits to the inputs).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from staging or renaming the object file.
    pub fn put(&self, key: Digest128, sections: Vec<Section>) -> io::Result<()> {
        let encoded = container::encode(&sections);
        self.finish_put(key, &encoded, sections)
    }

    /// Ingests an **already-encoded** container: validates every
    /// checksum, then stores the bytes exactly as received. This is the
    /// daemon's `PUT /object/…` path — the received buffer *is* the
    /// canonical encoding, so re-encoding the decoded sections (as
    /// [`Store::put`] must) would only rebuild, byte for byte, an
    /// allocation already in hand.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the container fails validation (the payload is
    /// never stored), or any I/O error from staging the object file.
    pub fn put_encoded(&self, key: Digest128, encoded: &[u8]) -> io::Result<()> {
        let sections = container::decode(encoded)?;
        self.finish_put(key, encoded, sections)
    }

    /// The shared tail of [`Store::put`] / [`Store::put_encoded`]:
    /// stage the bytes, populate the memory tier, publish write-through.
    fn finish_put(&self, key: Digest128, encoded: &[u8], sections: Vec<Section>) -> io::Result<()> {
        let mut span = obs::span("store_put");
        span.field("key", key.to_hex());
        span.field("bytes", encoded.len());
        let put_started = Instant::now();
        self.write_encoded(key, encoded)?;
        METRICS.put_seconds.observe_duration(put_started.elapsed());
        self.puts.fetch_add(1, Ordering::Relaxed);
        METRICS.puts.inc();
        self.mem.lock().expect("mem tier poisoned").insert(
            key,
            Arc::new(sections),
            self.mem_budget,
        );
        if let Some(remote) = &self.remote {
            if !self.remote_backed_off() {
                match remote.publish(key, encoded) {
                    Ok(()) => {
                        self.remote_recovered();
                        self.remote_publishes.fetch_add(1, Ordering::Relaxed);
                        METRICS.remote_publishes.inc();
                    }
                    Err(_) => {
                        self.remote_failed();
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether a directory name is a 2-hex-digit shard.
    fn is_shard_name(name: &str) -> bool {
        name.len() == 2 && name.bytes().all(|b| b.is_ascii_hexdigit())
    }

    /// Collects a directory's entries, treating the directory (or any
    /// entry) vanishing mid-walk as "nothing there" rather than an
    /// error — the same `NotFound` tolerance `entries()` applies to
    /// per-file stats, extended to the directory level so a concurrent
    /// gc or migration can never error a stats or sweep call.
    fn read_dir_tolerant(dir: &Path) -> io::Result<Vec<fs::DirEntry>> {
        let iter = match fs::read_dir(dir) {
            Ok(iter) => iter,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for entry in iter {
            match entry {
                Ok(e) => out.push(e),
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Parses `<32-hex>.ppc` into its key.
    fn entry_key(path: &Path) -> Option<Digest128> {
        if path.extension().and_then(|e| e.to_str()) != Some(OBJECT_EXT) {
            return None;
        }
        path.file_stem()
            .and_then(|s| s.to_str())
            .and_then(Digest128::from_hex)
    }

    /// Lists all disk objects (unordered), across the sharded layout and
    /// any legacy flat objects not yet migrated. A key present in both
    /// layouts (possible only mid-migration) is listed once, from its
    /// shard.
    ///
    /// Takes the shared advisory lock for the walk, so a concurrent gc
    /// (exclusive) can never delete objects between the directory
    /// listing and the per-file `stat` — the read that used to turn a
    /// concurrent sweep into a spurious `NotFound` error.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the objects directories.
    pub fn entries(&self) -> io::Result<Vec<EntryInfo>> {
        let lock = self.lock_file()?;
        lock.lock_shared()?;
        let result = self.entries_unlocked();
        let _ = lock.unlock();
        result
    }

    /// The walk behind [`Store::entries`], without taking the advisory
    /// lock — for callers already holding it ([`Store::gc`] holds the
    /// exclusive lock; acquiring the shared lock on a second descriptor
    /// of the same file would deadlock against ourselves).
    ///
    /// Concurrent same-process mutators are still possible (they hold
    /// the *shared* lock while this walk might run under none via gc's
    /// exclusive one — never both), so a file that vanishes between the
    /// listing and its `stat` (a flat object migrated into its shard by
    /// a concurrent reader) is skipped, not an error: it will be listed
    /// from its new home on the next walk.
    fn entries_unlocked(&self) -> io::Result<Vec<EntryInfo>> {
        let mut seen: HashMap<Digest128, EntryInfo> = HashMap::new();
        let mut record = |entry: &fs::DirEntry, sharded: bool| -> io::Result<()> {
            let path = entry.path();
            let Some(key) = Store::entry_key(&path) else {
                return Ok(());
            };
            let meta = match entry.metadata() {
                Ok(m) => m,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
                Err(e) => return Err(e),
            };
            let info = EntryInfo {
                key,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            };
            if sharded {
                seen.insert(key, info);
            } else {
                seen.entry(key).or_insert(info);
            }
            Ok(())
        };
        for entry in Store::read_dir_tolerant(&self.root.join("objects"))? {
            let path = entry.path();
            let is_shard = path.is_dir()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(Store::is_shard_name);
            if is_shard {
                for sub in Store::read_dir_tolerant(&path)? {
                    record(&sub, true)?;
                }
            } else {
                record(&entry, false)?;
            }
        }
        Ok(seen.into_values().collect())
    }

    /// Total bytes of all disk objects. Shares the `NotFound`-tolerant
    /// walk of [`Store::entries`], so files vanishing under a
    /// concurrent gc or migration shrink the total instead of erroring
    /// the stats call.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the objects directory.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        Ok(self.entries()?.iter().map(|e| e.bytes).sum())
    }

    /// Removes an object from **both** layouts. A key can exist in both
    /// at once: a corrupt flat object is never migrated (decode fails
    /// before the rename), so the recompute-and-put that heals it
    /// writes the sharded copy while the corrupt flat file lingers.
    /// Deleting only one copy would leave gc reporting an empty store
    /// that still fails `verify`.
    fn remove_object(&self, key: Digest128) -> io::Result<()> {
        let mut removed = false;
        for path in [self.object_path(key), self.flat_object_path(key)] {
            match fs::remove_file(&path) {
                Ok(()) => removed = true,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        if removed {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("object {key} not found in either layout"),
            ))
        }
    }

    /// Deletes oldest-first (by modification time) until the disk tier
    /// is at most `max_bytes`. Takes the exclusive advisory lock, so
    /// concurrent readers and writers in other processes are excluded
    /// for the duration of the sweep. Also removes staging temp files
    /// orphaned by crashed writers: a live writer stages only while
    /// holding the shared lock, so any `*.tmp.*` file visible under the
    /// exclusive lock is garbage. Walks every shard as well as the flat
    /// layout.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from listing or deleting objects.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let lock = self.lock_file()?;
        lock.lock()?;
        let result = (|| -> io::Result<GcReport> {
            let sweep_orphans = |dir: &Path| -> io::Result<()> {
                for entry in Store::read_dir_tolerant(dir)? {
                    let path = entry.path();
                    let is_orphan_tmp = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.contains(".tmp."));
                    if is_orphan_tmp {
                        let _ = fs::remove_file(&path);
                    }
                }
                Ok(())
            };
            let objects = self.root.join("objects");
            sweep_orphans(&objects)?;
            for entry in Store::read_dir_tolerant(&objects)? {
                let path = entry.path();
                let is_shard = path.is_dir()
                    && path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(Store::is_shard_name);
                if is_shard {
                    sweep_orphans(&path)?;
                }
            }
            let mut entries = self.entries_unlocked()?;
            entries.sort_by_key(|e| (e.modified, e.key));
            let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
            let mut report = GcReport {
                deleted: 0,
                freed_bytes: 0,
                kept: entries.len(),
                kept_bytes: total,
            };
            let mut mem = self.mem.lock().expect("mem tier poisoned");
            for e in &entries {
                if total <= max_bytes {
                    break;
                }
                // An object that vanished between the listing and the
                // delete (another process's sweep, a same-process
                // migration) is already the outcome gc wanted — count
                // it freed rather than erroring the sweep.
                match self.remove_object(e.key) {
                    Ok(()) => {}
                    Err(err) if err.kind() == io::ErrorKind::NotFound => {}
                    Err(err) => return Err(err),
                }
                mem.remove(&e.key);
                total -= e.bytes;
                report.deleted += 1;
                report.freed_bytes += e.bytes;
                report.kept -= 1;
                report.kept_bytes -= e.bytes;
            }
            Ok(report)
        })();
        let _ = lock.unlock();
        result
    }

    /// Re-checksums every object **file** on disk: reads each container
    /// and runs the full whole-file + per-section checksum validation
    /// of [`container::decode`], without touching the memory tier or
    /// the hit/miss counters. Unlike [`Store::entries`] this does not
    /// dedup a key present in both layouts — a lingering corrupt flat
    /// duplicate of a healed sharded object is still reported, so a
    /// clean `verify` really means no corrupt bytes anywhere.
    ///
    /// Holds the shared advisory lock for the sweep so a concurrent gc
    /// cannot delete objects out from under it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from listing the store. Unreadable or
    /// corrupt *objects* are reported in the [`VerifyReport`], not as
    /// errors.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let lock = self.lock_file()?;
        lock.lock_shared()?;
        let result = (|| -> io::Result<VerifyReport> {
            let mut report = VerifyReport::default();
            let mut files: Vec<PathBuf> = Vec::new();
            let objects = self.root.join("objects");
            for entry in Store::read_dir_tolerant(&objects)? {
                let path = entry.path();
                let is_shard = path.is_dir()
                    && path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(Store::is_shard_name);
                if is_shard {
                    for sub in Store::read_dir_tolerant(&path)? {
                        files.push(sub.path());
                    }
                } else {
                    files.push(path);
                }
            }
            for path in files {
                let Some(key) = Store::entry_key(&path) else {
                    continue;
                };
                report.checked += 1;
                // A concurrent reader (shared locks are compatible) may
                // migrate a flat object after we listed it — re-probe
                // its sharded home before classifying the vanished file
                // as corruption.
                let bytes = fs::read(&path).or_else(|_| fs::read(self.object_path(key)));
                let ok = bytes.is_ok_and(|b| container::decode(&b).is_ok());
                if ok {
                    report.ok += 1;
                } else {
                    report.corrupt.push(key);
                }
            }
            report.corrupt.sort();
            report.corrupt.dedup();
            Ok(report)
        })();
        let _ = lock.unlock();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_store() -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "charstore-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open store");
        (dir, store)
    }

    fn key(n: u8) -> Digest128 {
        crate::digest::digest_bytes("test-key", &[n])
    }

    fn artifact(n: u8, len: usize) -> Vec<Section> {
        vec![
            Section::new(1, vec![n; len]),
            Section::new(2, vec![n ^ 0xff; 8]),
        ]
    }

    #[test]
    fn put_get_round_trips_both_tiers() {
        let (dir, store) = temp_store();
        store.put(key(1), artifact(1, 100)).unwrap();
        // Memory tier hit.
        assert_eq!(*store.get(key(1)).unwrap(), artifact(1, 100));
        assert_eq!(store.counters().mem_hits, 1);
        // Fresh instance: disk tier hit, then promoted.
        let cold = Store::open(&dir).unwrap();
        assert_eq!(*cold.get(key(1)).unwrap(), artifact(1, 100));
        assert_eq!(cold.counters().disk_hits, 1);
        assert_eq!(*cold.get(key(1)).unwrap(), artifact(1, 100));
        assert_eq!(cold.counters().mem_hits, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_key_counts_as_miss() {
        let (dir, store) = temp_store();
        assert!(store.get(key(9)).is_none());
        assert_eq!(store.counters().misses, 1);
        assert!(!store.contains(key(9)));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_object_is_a_miss_not_an_error() {
        let (dir, store) = temp_store();
        store.put(key(2), artifact(2, 64)).unwrap();
        let path = store.object_path(key(2));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let cold = Store::open(&dir).unwrap();
        assert!(cold.get(key(2)).is_none());
        assert_eq!(cold.counters().misses, 1);
        // Recompute-and-overwrite heals the store.
        cold.put(key(2), artifact(2, 64)).unwrap();
        let healed = Store::open(&dir).unwrap();
        assert!(healed.get(key(2)).is_some());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lru_evicts_by_recency_within_budget() {
        let (dir, _) = temp_store();
        // Budget fits two ~1 KiB artifacts but not three.
        let store = Store::with_mem_budget(&dir, 2300).unwrap();
        store.put(key(1), artifact(1, 1000)).unwrap();
        store.put(key(2), artifact(2, 1000)).unwrap();
        let _ = store.get(key(1)); // 1 is now more recent than 2
        store.put(key(3), artifact(3, 1000)).unwrap(); // evicts 2
        {
            let mem = store.mem.lock().unwrap();
            assert!(mem.map.contains_key(&key(1)));
            assert!(!mem.map.contains_key(&key(2)));
            assert!(mem.map.contains_key(&key(3)));
        }
        // Evicted entries are still served from disk.
        assert!(store.get(key(2)).is_some());
        assert_eq!(store.counters().disk_hits, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn oversized_artifact_bypasses_memory_tier() {
        let (dir, _) = temp_store();
        let store = Store::with_mem_budget(&dir, 100).unwrap();
        store.put(key(4), artifact(4, 1000)).unwrap();
        assert!(store.mem.lock().unwrap().map.is_empty());
        assert!(store.get(key(4)).is_some()); // disk
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn entries_and_gc_enforce_byte_budget() {
        let (dir, store) = temp_store();
        for n in 0..4 {
            store.put(key(n), artifact(n, 500)).unwrap();
        }
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 4);
        let per_object = entries[0].bytes;
        let report = store.gc(2 * per_object).unwrap();
        assert_eq!(report.deleted, 2);
        assert_eq!(report.kept, 2);
        assert!(store.disk_bytes().unwrap() <= 2 * per_object);
        // gc also dropped the deleted keys from the memory tier.
        let survivors = store
            .entries()
            .unwrap()
            .iter()
            .map(|e| e.key)
            .collect::<Vec<_>>();
        let mem = store.mem.lock().unwrap();
        for k in mem.map.keys() {
            assert!(survivors.contains(k));
        }
        drop(mem);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_to_zero_clears_the_store() {
        let (dir, store) = temp_store();
        store.put(key(1), artifact(1, 10)).unwrap();
        let report = store.gc(0).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.kept_bytes, 0);
        assert!(store.get(key(1)).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_sweeps_orphaned_staging_files() {
        let (dir, store) = temp_store();
        store.put(key(1), artifact(1, 50)).unwrap();
        // Simulate a writer that crashed between stage and rename.
        let orphan = dir.join("objects").join("deadbeef.tmp.1234.0");
        fs::write(&orphan, b"half-written").unwrap();
        // Orphans are invisible to entries() but reclaimed by gc, even
        // when the byte budget deletes nothing.
        assert_eq!(store.entries().unwrap().len(), 1);
        let report = store.gc(u64::MAX).unwrap();
        assert_eq!(report.deleted, 0);
        assert!(!orphan.exists(), "orphaned temp file survived gc");
        assert!(store.get(key(1)).is_some());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn objects_land_in_two_hex_prefix_shards() {
        let (dir, store) = temp_store();
        for n in 0..8 {
            store.put(key(n), artifact(n, 40)).unwrap();
        }
        for n in 0..8 {
            let k = key(n);
            let path = store.object_path(k);
            assert!(path.exists(), "object {k} not at sharded path");
            let shard = path
                .parent()
                .and_then(|p| p.file_name())
                .and_then(|n| n.to_str())
                .expect("shard dir")
                .to_string();
            assert_eq!(shard, format!("{:02x}", k.0[0]));
        }
        assert_eq!(store.entries().unwrap().len(), 8);
        let _ = fs::remove_dir_all(dir);
    }

    /// Builds a legacy flat-layout store by moving sharded objects up
    /// into `objects/` and removing the shard dirs.
    fn flatten_store(dir: &Path, store: &Store, keys: &[Digest128]) {
        for &k in keys {
            let sharded = store.object_path(k);
            fs::rename(&sharded, store.flat_object_path(k)).unwrap();
            let _ = fs::remove_dir(sharded.parent().unwrap());
        }
        let _ = dir; // layout is relative to the store root
    }

    #[test]
    fn flat_layout_objects_are_read_and_migrated_on_get() {
        let (dir, store) = temp_store();
        let keys: Vec<Digest128> = (0..4).map(key).collect();
        for (n, &k) in keys.iter().enumerate() {
            store.put(k, artifact(n as u8, 64)).unwrap();
        }
        flatten_store(&dir, &store, &keys);

        // A cold instance sees the flat objects…
        let cold = Store::open(&dir).unwrap();
        assert_eq!(cold.entries().unwrap().len(), 4);
        for (n, &k) in keys.iter().enumerate() {
            assert!(cold.contains(k));
            assert_eq!(*cold.get(k).unwrap(), artifact(n as u8, 64));
            // …and each get migrates its object into the shard.
            assert!(cold.object_path(k).exists(), "object {k} not migrated");
            assert!(!cold.flat_object_path(k).exists(), "flat {k} left behind");
        }
        assert_eq!(cold.counters().disk_hits, 4);
        assert_eq!(cold.counters().misses, 0);
        assert_eq!(cold.entries().unwrap().len(), 4);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_deletes_flat_layout_objects_too() {
        let (dir, store) = temp_store();
        let keys: Vec<Digest128> = (0..3).map(key).collect();
        for (n, &k) in keys.iter().enumerate() {
            store.put(k, artifact(n as u8, 128)).unwrap();
        }
        flatten_store(&dir, &store, &keys);
        let cold = Store::open(&dir).unwrap();
        let report = cold.gc(0).unwrap();
        assert_eq!(report.deleted, 3);
        assert_eq!(cold.entries().unwrap().len(), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_clears_stale_flat_copy_alongside_healed_sharded_object() {
        let (dir, store) = temp_store();
        let k = key(5);
        store.put(k, artifact(5, 96)).unwrap();
        flatten_store(&dir, &store, &[k]);

        // Corrupt the flat object: the next get decode-fails (miss, no
        // migration), and the healing put writes the sharded copy while
        // the corrupt flat file lingers — the key now exists in both
        // layouts.
        let flat = store.flat_object_path(k);
        let mut bytes = fs::read(&flat).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&flat, &bytes).unwrap();
        let cold = Store::open(&dir).unwrap();
        assert!(cold.get(k).is_none(), "corrupt flat object must miss");
        cold.put(k, artifact(5, 96)).unwrap();
        assert!(cold.object_path(k).exists());
        assert!(flat.exists(), "stale corrupt flat copy should linger");
        assert_eq!(cold.entries().unwrap().len(), 1, "entries dedup by key");

        // verify checks files, not deduped keys: the corrupt flat
        // duplicate must be flagged even though the sharded copy heals.
        let dirty = cold.verify().unwrap();
        assert_eq!(dirty.checked, 2);
        assert_eq!(dirty.ok, 1);
        assert_eq!(dirty.corrupt, vec![k]);

        // gc to zero must clear *both* copies, and verify stays clean.
        let report = cold.gc(0).unwrap();
        assert_eq!(report.deleted, 1);
        assert!(!cold.object_path(k).exists());
        assert!(!flat.exists(), "gc left the stale flat copy behind");
        let verify = cold.verify().unwrap();
        assert_eq!(verify.checked, 0);
        assert!(verify.is_clean());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn verify_reports_clean_and_corrupt_objects() {
        let (dir, store) = temp_store();
        for n in 0..5 {
            store.put(key(n), artifact(n, 80)).unwrap();
        }
        let clean = store.verify().unwrap();
        assert_eq!(clean.checked, 5);
        assert_eq!(clean.ok, 5);
        assert!(clean.is_clean());

        // Flip a byte in one object: verify flags exactly that key.
        let victim = key(3);
        let path = store.object_path(victim);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let dirty = store.verify().unwrap();
        assert_eq!(dirty.checked, 5);
        assert_eq!(dirty.ok, 4);
        assert_eq!(dirty.corrupt, vec![victim]);
        assert!(!dirty.is_clean());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_get_put_and_gc_leave_store_clean() {
        // The charserve daemon shares one Store between its front-end
        // (gets), its workers (puts) and an operator's gc sweeps. Two
        // threads hammer get/put on the same key against ONE instance
        // while a third repeatedly sweeps everything (`gc --max-bytes
        // 0`): no operation may error, a successful get must always
        // decode to the exact artifact (content-addressing makes a
        // stale-but-valid read legal, a corrupt one never), and the
        // store must verify clean afterwards.
        let (dir, store) = temp_store();
        let expected = artifact(11, 400);
        store.put(key(11), expected.clone()).unwrap();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..150 {
                    store.put(key(11), artifact(11, 400)).unwrap();
                }
                done.store(true, Ordering::Release);
            });
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    if let Some(got) = store.get(key(11)) {
                        assert_eq!(*got, expected, "reader observed a corrupt artifact");
                    }
                }
            });
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    let report = store.gc(0).unwrap();
                    assert!(report.kept_bytes == 0, "gc to zero left bytes behind");
                }
            });
        });
        let report = store.verify().unwrap();
        assert!(
            report.is_clean(),
            "store corrupt after concurrent get/put/gc: {:?}",
            report.corrupt
        );
        // The store still works: a fresh put round-trips on disk.
        store.put(key(11), expected.clone()).unwrap();
        let cold = Store::open(&dir).unwrap();
        assert_eq!(*cold.get(key(11)).unwrap(), expected);
        assert!(Store::open(&dir).unwrap().verify().unwrap().is_clean());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn entries_tolerate_concurrent_migration() {
        // A flat-layout object migrated into its shard between the
        // directory listing and the per-file stat must be skipped (it
        // reappears from its shard on the next walk), not explode the
        // walk — entries() of a store being read concurrently.
        let (dir, store) = temp_store();
        let keys: Vec<Digest128> = (0..6).map(key).collect();
        for (n, &k) in keys.iter().enumerate() {
            store.put(k, artifact(n as u8, 64)).unwrap();
        }
        flatten_store(&dir, &store, &keys);
        let cold = Store::open(&dir).unwrap();
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                for &k in &keys {
                    assert!(cold.get(k).is_some());
                }
                done.store(true, Ordering::Release);
            });
            s.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    // Never errors, and never lists a key twice.
                    let listed = cold.entries().unwrap();
                    assert!(listed.len() <= keys.len());
                    let mut seen: Vec<Digest128> = listed.iter().map(|e| e.key).collect();
                    seen.sort();
                    seen.dedup();
                    assert_eq!(seen.len(), listed.len(), "duplicate key listed");
                }
            });
        });
        assert_eq!(cold.entries().unwrap().len(), keys.len());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_writers_of_same_key_are_safe() {
        let (dir, _) = temp_store();
        let dir2 = dir.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = dir2.clone();
                s.spawn(move || {
                    let store = Store::open(&d).unwrap();
                    for round in 0..10 {
                        store.put(key(7), artifact(7, 300)).unwrap();
                        let got = Store::open(&d).unwrap().get(key(7));
                        assert!(got.is_some(), "round {round}");
                    }
                });
            }
        });
        let _ = fs::remove_dir_all(dir);
    }
}
