//! The two-tier content-addressed artifact store.
//!
//! Tier 1 is an in-memory LRU over decoded section lists (shared
//! `Arc`s, bounded by a byte budget); tier 2 is a directory of
//! checksummed container files named by the artifact key:
//!
//! ```text
//! <root>/
//!   objects/<32-hex-digest>.ppc    one container per artifact
//!   .lock                          advisory lock file
//! ```
//!
//! Concurrency: writers stage into a writer-unique temp file and
//! `rename` it into place (atomic on POSIX), so readers never observe a
//! half-written object. On top of that, every disk mutation takes the
//! advisory file lock — shared for `put` (concurrent writers are safe
//! thanks to the atomic rename), exclusive for [`Store::gc`] so it
//! never deletes an object out from under a concurrent reader holding
//! the shared lock. Multiple experiment binaries can therefore share
//! one store.
//!
//! A corrupted object file (flipped byte, truncation, version skew) is
//! reported as a miss — the caller recomputes and overwrites it — never
//! as an error that kills the pipeline.

use crate::container::{self, Section};
use crate::digest::Digest128;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// Default in-memory tier budget: plenty for a full Mini-scale
/// characterization set while staying irrelevant next to the pipeline's
/// own footprint.
pub const DEFAULT_MEM_BUDGET_BYTES: usize = 64 << 20;

const OBJECT_EXT: &str = "ppc";

/// Monotonic hit/miss counters of one [`Store`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Lookups served from the in-memory tier.
    pub mem_hits: u64,
    /// Lookups served from disk (and promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing (or a corrupted object).
    pub misses: u64,
    /// Artifacts written.
    pub puts: u64,
}

impl StoreCounters {
    /// Total lookups served from either tier.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// A disk object listed by [`Store::entries`].
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Artifact key.
    pub key: Digest128,
    /// Container file size in bytes.
    pub bytes: u64,
    /// Last-modified time of the container file.
    pub modified: SystemTime,
}

/// Result of a [`Store::gc`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Objects deleted.
    pub deleted: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Objects (and bytes) surviving the sweep.
    pub kept: usize,
    /// Bytes still stored after the sweep.
    pub kept_bytes: u64,
}

#[derive(Debug)]
struct MemEntry {
    sections: Arc<Vec<Section>>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct MemTier {
    map: HashMap<Digest128, MemEntry>,
    bytes: usize,
    tick: u64,
}

impl MemTier {
    fn touch(&mut self, key: &Digest128) -> Option<Arc<Vec<Section>>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.sections)
        })
    }

    fn insert(&mut self, key: Digest128, sections: Arc<Vec<Section>>, budget: usize) {
        let bytes: usize = sections.iter().map(|s| s.bytes.len() + 24).sum();
        if bytes > budget {
            return; // larger than the whole tier: disk-only
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(
            key,
            MemEntry {
                sections,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        // Evict least-recently-used entries until under budget. Linear
        // scan per eviction is fine at tens of artifacts.
        while self.bytes > budget {
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
            }
        }
    }

    fn remove(&mut self, key: &Digest128) {
        if let Some(e) = self.map.remove(key) {
            self.bytes -= e.bytes;
        }
    }
}

/// The two-tier content-addressed store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    mem_budget: usize,
    mem: Mutex<MemTier>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory layout.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        Store::with_mem_budget(root, DEFAULT_MEM_BUDGET_BYTES)
    }

    /// [`Store::open`] with an explicit in-memory tier budget in bytes
    /// (0 disables the memory tier).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory layout.
    pub fn with_mem_budget(root: impl Into<PathBuf>, mem_budget: usize) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        Ok(Store {
            root,
            mem_budget,
            mem: Mutex::new(MemTier::default()),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of this instance's hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }

    fn object_path(&self, key: Digest128) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}.{OBJECT_EXT}", key.to_hex()))
    }

    fn lock_file(&self) -> io::Result<fs::File> {
        fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(self.root.join(".lock"))
    }

    /// Looks up an artifact: memory tier first, then disk (verifying
    /// checksums and promoting to memory). A corrupted or unreadable
    /// object counts as a miss.
    #[must_use]
    pub fn get(&self, key: Digest128) -> Option<Arc<Vec<Section>>> {
        if let Some(hit) = self.mem.lock().expect("mem tier poisoned").touch(&key) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        let loaded = (|| -> io::Result<Arc<Vec<Section>>> {
            // Shared lock: a concurrent gc (exclusive) cannot delete the
            // object between the read and the checksum verification.
            let lock = self.lock_file()?;
            lock.lock_shared()?;
            let bytes = fs::read(self.object_path(key));
            let _ = lock.unlock();
            Ok(Arc::new(container::decode(&bytes?)?))
        })();
        match loaded {
            Ok(sections) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.mem.lock().expect("mem tier poisoned").insert(
                    key,
                    Arc::clone(&sections),
                    self.mem_budget,
                );
                Some(sections)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether an artifact exists (either tier), without promoting it.
    #[must_use]
    pub fn contains(&self, key: Digest128) -> bool {
        self.mem
            .lock()
            .expect("mem tier poisoned")
            .map
            .contains_key(&key)
            || self.object_path(key).exists()
    }

    /// Stores an artifact under `key`, populating both tiers. Safe
    /// against concurrent writers of the same key: both stage to unique
    /// temp files and the last atomic rename wins (contents are
    /// identical by construction — the key commits to the inputs).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from staging or renaming the object file.
    pub fn put(&self, key: Digest128, sections: Vec<Section>) -> io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let encoded = container::encode(&sections);
        let final_path = self.object_path(key);
        // Unique per process *and* per thread: concurrent writers must
        // never stage into the same temp file.
        let tmp_path = final_path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let lock = self.lock_file()?;
        lock.lock_shared()?;
        let result = (|| -> io::Result<()> {
            fs::write(&tmp_path, &encoded)?;
            fs::rename(&tmp_path, &final_path)
        })();
        let _ = lock.unlock();
        if result.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        result?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.mem.lock().expect("mem tier poisoned").insert(
            key,
            Arc::new(sections),
            self.mem_budget,
        );
        Ok(())
    }

    /// Lists all disk objects (unordered).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the objects directory.
    pub fn entries(&self) -> io::Result<Vec<EntryInfo>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("objects"))? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(OBJECT_EXT) {
                continue;
            }
            let Some(key) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(Digest128::from_hex)
            else {
                continue;
            };
            let meta = entry.metadata()?;
            out.push(EntryInfo {
                key,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(out)
    }

    /// Total bytes of all disk objects.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from reading the objects directory.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        Ok(self.entries()?.iter().map(|e| e.bytes).sum())
    }

    /// Deletes oldest-first (by modification time) until the disk tier
    /// is at most `max_bytes`. Takes the exclusive advisory lock, so
    /// concurrent readers and writers in other processes are excluded
    /// for the duration of the sweep. Also removes staging temp files
    /// orphaned by crashed writers: a live writer stages only while
    /// holding the shared lock, so any `*.tmp.*` file visible under the
    /// exclusive lock is garbage.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from listing or deleting objects.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let lock = self.lock_file()?;
        lock.lock()?;
        let result = (|| -> io::Result<GcReport> {
            for entry in fs::read_dir(self.root.join("objects"))? {
                let path = entry?.path();
                let is_orphan_tmp = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.contains(".tmp."));
                if is_orphan_tmp {
                    let _ = fs::remove_file(&path);
                }
            }
            let mut entries = self.entries()?;
            entries.sort_by_key(|e| (e.modified, e.key));
            let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
            let mut report = GcReport {
                deleted: 0,
                freed_bytes: 0,
                kept: entries.len(),
                kept_bytes: total,
            };
            let mut mem = self.mem.lock().expect("mem tier poisoned");
            for e in &entries {
                if total <= max_bytes {
                    break;
                }
                fs::remove_file(self.object_path(e.key))?;
                mem.remove(&e.key);
                total -= e.bytes;
                report.deleted += 1;
                report.freed_bytes += e.bytes;
                report.kept -= 1;
                report.kept_bytes -= e.bytes;
            }
            Ok(report)
        })();
        let _ = lock.unlock();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_store() -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "charstore-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open store");
        (dir, store)
    }

    fn key(n: u8) -> Digest128 {
        crate::digest::digest_bytes("test-key", &[n])
    }

    fn artifact(n: u8, len: usize) -> Vec<Section> {
        vec![
            Section::new(1, vec![n; len]),
            Section::new(2, vec![n ^ 0xff; 8]),
        ]
    }

    #[test]
    fn put_get_round_trips_both_tiers() {
        let (dir, store) = temp_store();
        store.put(key(1), artifact(1, 100)).unwrap();
        // Memory tier hit.
        assert_eq!(*store.get(key(1)).unwrap(), artifact(1, 100));
        assert_eq!(store.counters().mem_hits, 1);
        // Fresh instance: disk tier hit, then promoted.
        let cold = Store::open(&dir).unwrap();
        assert_eq!(*cold.get(key(1)).unwrap(), artifact(1, 100));
        assert_eq!(cold.counters().disk_hits, 1);
        assert_eq!(*cold.get(key(1)).unwrap(), artifact(1, 100));
        assert_eq!(cold.counters().mem_hits, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_key_counts_as_miss() {
        let (dir, store) = temp_store();
        assert!(store.get(key(9)).is_none());
        assert_eq!(store.counters().misses, 1);
        assert!(!store.contains(key(9)));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_object_is_a_miss_not_an_error() {
        let (dir, store) = temp_store();
        store.put(key(2), artifact(2, 64)).unwrap();
        let path = store.object_path(key(2));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let cold = Store::open(&dir).unwrap();
        assert!(cold.get(key(2)).is_none());
        assert_eq!(cold.counters().misses, 1);
        // Recompute-and-overwrite heals the store.
        cold.put(key(2), artifact(2, 64)).unwrap();
        let healed = Store::open(&dir).unwrap();
        assert!(healed.get(key(2)).is_some());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn lru_evicts_by_recency_within_budget() {
        let (dir, _) = temp_store();
        // Budget fits two ~1 KiB artifacts but not three.
        let store = Store::with_mem_budget(&dir, 2300).unwrap();
        store.put(key(1), artifact(1, 1000)).unwrap();
        store.put(key(2), artifact(2, 1000)).unwrap();
        let _ = store.get(key(1)); // 1 is now more recent than 2
        store.put(key(3), artifact(3, 1000)).unwrap(); // evicts 2
        {
            let mem = store.mem.lock().unwrap();
            assert!(mem.map.contains_key(&key(1)));
            assert!(!mem.map.contains_key(&key(2)));
            assert!(mem.map.contains_key(&key(3)));
        }
        // Evicted entries are still served from disk.
        assert!(store.get(key(2)).is_some());
        assert_eq!(store.counters().disk_hits, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn oversized_artifact_bypasses_memory_tier() {
        let (dir, _) = temp_store();
        let store = Store::with_mem_budget(&dir, 100).unwrap();
        store.put(key(4), artifact(4, 1000)).unwrap();
        assert!(store.mem.lock().unwrap().map.is_empty());
        assert!(store.get(key(4)).is_some()); // disk
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn entries_and_gc_enforce_byte_budget() {
        let (dir, store) = temp_store();
        for n in 0..4 {
            store.put(key(n), artifact(n, 500)).unwrap();
        }
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 4);
        let per_object = entries[0].bytes;
        let report = store.gc(2 * per_object).unwrap();
        assert_eq!(report.deleted, 2);
        assert_eq!(report.kept, 2);
        assert!(store.disk_bytes().unwrap() <= 2 * per_object);
        // gc also dropped the deleted keys from the memory tier.
        let survivors = store
            .entries()
            .unwrap()
            .iter()
            .map(|e| e.key)
            .collect::<Vec<_>>();
        let mem = store.mem.lock().unwrap();
        for k in mem.map.keys() {
            assert!(survivors.contains(k));
        }
        drop(mem);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_to_zero_clears_the_store() {
        let (dir, store) = temp_store();
        store.put(key(1), artifact(1, 10)).unwrap();
        let report = store.gc(0).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(report.kept_bytes, 0);
        assert!(store.get(key(1)).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_sweeps_orphaned_staging_files() {
        let (dir, store) = temp_store();
        store.put(key(1), artifact(1, 50)).unwrap();
        // Simulate a writer that crashed between stage and rename.
        let orphan = dir.join("objects").join("deadbeef.tmp.1234.0");
        fs::write(&orphan, b"half-written").unwrap();
        // Orphans are invisible to entries() but reclaimed by gc, even
        // when the byte budget deletes nothing.
        assert_eq!(store.entries().unwrap().len(), 1);
        let report = store.gc(u64::MAX).unwrap();
        assert_eq!(report.deleted, 0);
        assert!(!orphan.exists(), "orphaned temp file survived gc");
        assert!(store.get(key(1)).is_some());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_writers_of_same_key_are_safe() {
        let (dir, _) = temp_store();
        let dir2 = dir.clone();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = dir2.clone();
                s.spawn(move || {
                    let store = Store::open(&d).unwrap();
                    for round in 0..10 {
                        store.put(key(7), artifact(7, 300)).unwrap();
                        let got = Store::open(&d).unwrap().get(key(7));
                        assert!(got.is_some(), "round {round}");
                    }
                });
            }
        });
        let _ = fs::remove_dir_all(dir);
    }
}
