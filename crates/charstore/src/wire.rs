//! Little-endian wire encoding with a bounds-checked reader.
//!
//! The writer side is a handful of `put_*` helpers appending to a
//! `Vec<u8>`. The reader side is [`Reader`], which enforces the store's
//! hardening discipline against hostile or truncated input:
//!
//! * every read is bounds-checked against the remaining bytes;
//! * collection lengths must be validated with [`Reader::bounded_len`]
//!   **before** any allocation, so a corrupted `u64` count can never
//!   trigger a huge `Vec::with_capacity`;
//! * [`Reader::finish`] rejects trailing bytes, so a payload cannot
//!   smuggle extra data past its decoder.

use std::io;

/// Shorthand for the `InvalidData` errors every decoder returns.
pub fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as little-endian `u64` (platform-independent).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends a little-endian `i32`.
pub fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` by exact bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends an `f32` by exact bit pattern.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an untrusted byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Consumes exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// `InvalidData` if fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if len > self.remaining() {
            return Err(invalid(format!(
                "truncated input: need {len} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn i32(&mut self) -> io::Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads an `f64` by exact bit pattern.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `f32` by exact bit pattern.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation.
    pub fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads a `u64` count and validates it *before allocation*: the
    /// declared `count` items of `elem_size` bytes minimum each must fit
    /// in the remaining input. Returns the count as `usize`.
    ///
    /// This is the load-bearing hardening primitive: a hostile length
    /// field can at most claim `remaining / elem_size` items, so
    /// `Vec::with_capacity(bounded_len(..)?)` is always bounded by the
    /// input size actually present.
    ///
    /// # Errors
    ///
    /// `InvalidData` if the declared count cannot fit in the remaining
    /// bytes (`elem_size` of 0 is a caller bug and also rejected).
    pub fn bounded_len(&mut self, elem_size: usize) -> io::Result<usize> {
        let count = self.u64()?;
        if elem_size == 0 {
            return Err(invalid("zero-size element in bounded_len"));
        }
        let max = (self.remaining() / elem_size) as u64;
        if count > max {
            return Err(invalid(format!(
                "implausible count {count}: only {} bytes remain ({} elements of {elem_size} bytes)",
                self.remaining(),
                max
            )));
        }
        Ok(count as usize)
    }

    /// Reads a length-prefixed UTF-8 string (bounded).
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation or invalid UTF-8.
    pub fn str(&mut self) -> io::Result<String> {
        let len = self.bounded_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| invalid("invalid UTF-8 string"))
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// `InvalidData` if trailing bytes remain.
    pub fn finish(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(invalid(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdeadbeef);
        put_u64(&mut buf, u64::MAX - 1);
        put_i32(&mut buf, -12345);
        put_f64(&mut buf, -0.0);
        put_f32(&mut buf, f32::NAN);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i32().unwrap(), -12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f32().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // claims 2^64-1 elements
        let mut r = Reader::new(&buf);
        let err = r.bounded_len(8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_is_invalid_data() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1);
        put_u8(&mut buf, 9);
        let mut r = Reader::new(&buf);
        let _ = r.u32().unwrap();
        assert_eq!(r.finish().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bounded_len_accepts_exact_fit() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 3);
        buf.extend_from_slice(&[0u8; 12]); // 3 elements of 4 bytes
        let mut r = Reader::new(&buf);
        assert_eq!(r.bounded_len(4).unwrap(), 3);
    }
}
