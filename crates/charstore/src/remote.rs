//! The remote object tier: a blocking client for a charserve-style
//! object endpoint.
//!
//! [`RemoteTier`] rides the workspace-shared [`httpwire::HttpClient`]
//! — the same keep-alive client core under `charserve::Client` — so a
//! warm-store workload fetching hundreds of objects reuses one TCP
//! connection instead of paying a dial (and, on loopback, a `TIME_WAIT`
//! entry) per object. The wire discipline matches
//! [`crate::wire::Reader`]: every length is validated against a hard
//! cap **before** any buffer is allocated, so a hostile or corrupted
//! `Content-Length` can never trigger a huge allocation.
//!
//! Protocol (see `charserve::server`):
//!
//! * `GET /object/<32-hex-key>` — `200` with the raw checksummed
//!   `PPCHART1` container bytes, `404` when the daemon does not have
//!   the object. The bytes are **not** validated here; the
//!   [`crate::store::Store`] integration re-runs the whole-file
//!   checksum client-side so wire corruption degrades to a miss exactly
//!   like disk corruption does.
//! * `PUT /object/<32-hex-key>` — publishes container bytes; the daemon
//!   validates them before ingesting through its atomic put path.
//!
//! All failures are plain [`io::Error`]s; the store maps them onto its
//! remote counters and degrades to local-only operation. Nothing in
//! this module panics on remote misbehavior.

use crate::digest::Digest128;
use httpwire::{ClientConfig, HttpClient, RequestSpec};
use std::io;
use std::time::Duration;

/// Hard cap on a fetched object body. Matches the daemon's object
/// ingest limit; a `Content-Length` beyond it is rejected before any
/// allocation.
pub const MAX_OBJECT_BYTES: usize = 64 << 20;

/// Default connect timeout: a dead or unroutable daemon must degrade
/// the store to local-only quickly, not hang a pipeline stage.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Default per-connection read/write timeout.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A client for one remote object endpoint (`host:port`). Clones share
/// the keep-alive connection pool.
#[derive(Debug, Clone)]
pub struct RemoteTier {
    http: HttpClient,
}

impl RemoteTier {
    /// A tier client for `addr` (`host:port`) with default timeouts.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> RemoteTier {
        RemoteTier {
            http: HttpClient::new(
                &addr.into(),
                ClientConfig {
                    connect_timeout: DEFAULT_CONNECT_TIMEOUT,
                    io_timeout: DEFAULT_IO_TIMEOUT,
                },
            ),
        }
    }

    /// Overrides both timeouts (tests use short ones). Existing pooled
    /// connections are dropped; the next request re-dials.
    #[must_use]
    pub fn with_timeouts(self, connect: Duration, io: Duration) -> RemoteTier {
        RemoteTier {
            http: HttpClient::new(
                self.http.addr(),
                ClientConfig {
                    connect_timeout: connect,
                    io_timeout: io,
                },
            ),
        }
    }

    /// The configured endpoint address.
    #[must_use]
    pub fn addr(&self) -> &str {
        self.http.addr()
    }

    /// Fetches an object's raw container bytes. `Ok(None)` means the
    /// daemon answered `404` (a clean remote miss); transport failures
    /// and protocol violations are `Err`. The returned bytes are not
    /// validated — the caller re-checksums them. Inside an
    /// [`obs::with_trace`] scope the request carries the trace ID, so
    /// the far daemon's spans join this client's — the cross-tier leg
    /// of request tracing.
    ///
    /// # Errors
    ///
    /// Any connect, I/O or framing error, or a status other than
    /// `200`/`404`.
    pub fn fetch(&self, key: Digest128) -> io::Result<Option<Vec<u8>>> {
        let trace = obs::current_trace().map(|t| t.to_string());
        let path = format!("/object/{key}");
        let response = self
            .http
            .send(&RequestSpec::get(&path, MAX_OBJECT_BYTES).with_trace(trace.as_deref()))?;
        match response.status {
            200 => Ok(Some(response.body)),
            404 => Ok(None),
            other => Err(invalid(format!("object fetch answered {other}"))),
        }
    }

    /// Publishes an object's container bytes to the daemon (which
    /// validates them before ingesting).
    ///
    /// # Errors
    ///
    /// Any connect, I/O or framing error, or a non-200 answer.
    pub fn publish(&self, key: Digest128, encoded: &[u8]) -> io::Result<()> {
        let trace = obs::current_trace().map(|t| t.to_string());
        let path = format!("/object/{key}");
        let response = self.http.send(&RequestSpec {
            method: "PUT",
            path: &path,
            content_type: "application/octet-stream",
            body: encoded,
            trace: trace.as_deref(),
            response_limit: MAX_OBJECT_BYTES,
            keep_alive: true,
        })?;
        if response.status != 200 {
            return Err(invalid(format!(
                "object publish answered {}",
                response.status
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn key() -> Digest128 {
        crate::digest::digest_bytes("remote-test", b"k")
    }

    /// A one-shot fake daemon answering with a fixed response.
    fn one_shot_server(response: Vec<u8>) -> (String, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain whatever the client sent (it half-closes nothing;
            // just read until the blank line / body heuristically by
            // reading what is available after the response is written).
            stream.write_all(&response).unwrap();
            stream.flush().unwrap();
            let mut sink = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let _ = stream.read_to_end(&mut sink);
            sink
        });
        (addr, handle)
    }

    #[test]
    fn fetch_decodes_200_bodies_and_maps_404_to_none() {
        let body = b"PPCHART1-not-really".to_vec();
        let response = format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes()
            .into_iter()
            .chain(body.clone())
            .collect();
        let (addr, server) = one_shot_server(response);
        let tier = RemoteTier::new(addr);
        assert_eq!(tier.fetch(key()).unwrap(), Some(body));
        server.join().unwrap();

        let (addr, server) =
            one_shot_server(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        assert_eq!(tier.fetch(key()).unwrap(), None);
        server.join().unwrap();
    }

    #[test]
    fn trace_id_propagates_as_a_request_header() {
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        let trace = obs::TraceId::generate();
        obs::with_trace(trace, || {
            assert_eq!(tier.fetch(key()).unwrap(), None);
        });
        let request = String::from_utf8(server.join().unwrap()).unwrap();
        assert!(
            request.contains(&format!("X-Trace-Id: {trace}\r\n")),
            "trace header missing from request:\n{request}"
        );

        // Outside a trace scope, no header is sent at all.
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        assert_eq!(tier.fetch(key()).unwrap(), None);
        let request = String::from_utf8(server.join().unwrap()).unwrap();
        assert!(!request.contains("X-Trace-Id"));
    }

    #[test]
    fn oversized_content_length_is_rejected_before_allocation() {
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 200 OK\r\nContent-Length: 99999999999999\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        let err = tier.fetch(key()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        server.join().unwrap();
    }

    #[test]
    fn dead_endpoint_is_an_error_not_a_hang() {
        // Port 1 on localhost: nothing listens, connect is refused
        // immediately (and the connect timeout bounds the worst case).
        let tier = RemoteTier::new("127.0.0.1:1")
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        assert!(tier.fetch(key()).is_err());
        assert!(tier.publish(key(), b"bytes").is_err());
    }

    #[test]
    fn truncated_response_is_a_framing_error() {
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort".to_vec());
        let tier = RemoteTier::new(addr);
        assert!(tier.fetch(key()).is_err());
        server.join().unwrap();
    }
}
