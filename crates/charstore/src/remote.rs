//! The remote object tier: a blocking client for a charserve-style
//! object endpoint.
//!
//! [`RemoteTier`] speaks the same deliberately tiny HTTP/1.1 subset as
//! the `charserve` daemon — one request per connection, `Content-Length`
//! bodies, `Connection: close` — but lives here rather than reusing the
//! daemon's framing because the dependency points the other way:
//! `charserve` is built *on* this crate. The wire discipline matches
//! [`crate::wire::Reader`]: every length is validated against a hard
//! cap **before** any buffer is allocated, so a hostile or corrupted
//! `Content-Length` can never trigger a huge allocation.
//!
//! Protocol (see `charserve::server`):
//!
//! * `GET /object/<32-hex-key>` — `200` with the raw checksummed
//!   `PPCHART1` container bytes, `404` when the daemon does not have
//!   the object. The bytes are **not** validated here; the
//!   [`crate::store::Store`] integration re-runs the whole-file
//!   checksum client-side so wire corruption degrades to a miss exactly
//!   like disk corruption does.
//! * `PUT /object/<32-hex-key>` — publishes container bytes; the daemon
//!   validates them before ingesting through its atomic put path.
//!
//! All failures are plain [`io::Error`]s; the store maps them onto its
//! remote counters and degrades to local-only operation. Nothing in
//! this module panics on remote misbehavior.

use crate::digest::Digest128;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Hard cap on a fetched object body. Matches the daemon's object
/// ingest limit; a `Content-Length` beyond it is rejected before any
/// allocation.
pub const MAX_OBJECT_BYTES: usize = 64 << 20;

/// Maximum accepted response status/header line length.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Maximum accepted number of response header lines.
const MAX_HEADER_LINES: usize = 64;

/// Default connect timeout: a dead or unroutable daemon must degrade
/// the store to local-only quickly, not hang a pipeline stage.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// Default per-connection read/write timeout.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The `X-Trace-Id: <16-hex>\r\n` header line for the thread's current
/// trace, or empty when outside any trace scope. Forwarding the ID lets
/// the far daemon's logs and trace dump join this client's spans — the
/// cross-tier leg of request tracing.
fn trace_header() -> String {
    match obs::current_trace() {
        Some(trace) => format!("X-Trace-Id: {trace}\r\n"),
        None => String::new(),
    }
}

/// A client for one remote object endpoint (`host:port`).
#[derive(Debug, Clone)]
pub struct RemoteTier {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl RemoteTier {
    /// A tier client for `addr` (`host:port`) with default timeouts.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> RemoteTier {
        RemoteTier {
            addr: addr.into(),
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            io_timeout: DEFAULT_IO_TIMEOUT,
        }
    }

    /// Overrides both timeouts (tests use short ones).
    #[must_use]
    pub fn with_timeouts(mut self, connect: Duration, io: Duration) -> RemoteTier {
        self.connect_timeout = connect;
        self.io_timeout = io;
        self
    }

    /// The configured endpoint address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let mut last = None;
        for addr in self.addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&addr, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("`{}` resolved to no addresses", self.addr),
            )
        }))
    }

    /// Fetches an object's raw container bytes. `Ok(None)` means the
    /// daemon answered `404` (a clean remote miss); transport failures
    /// and protocol violations are `Err`. The returned bytes are not
    /// validated — the caller re-checksums them.
    ///
    /// # Errors
    ///
    /// Any connect, I/O or framing error, or a status other than
    /// `200`/`404`.
    pub fn fetch(&self, key: Digest128) -> io::Result<Option<Vec<u8>>> {
        let mut stream = self.connect()?;
        let head = format!(
            "GET /object/{key} HTTP/1.1\r\nHost: charstore\r\n{}Connection: close\r\n\r\n",
            trace_header()
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        let (status, body) = read_response(&stream)?;
        match status {
            200 => Ok(Some(body)),
            404 => Ok(None),
            other => Err(invalid(format!("object fetch answered {other}"))),
        }
    }

    /// Publishes an object's container bytes to the daemon (which
    /// validates them before ingesting).
    ///
    /// # Errors
    ///
    /// Any connect, I/O or framing error, or a non-200 answer.
    pub fn publish(&self, key: Digest128, encoded: &[u8]) -> io::Result<()> {
        let mut stream = self.connect()?;
        let head = format!(
            "PUT /object/{key} HTTP/1.1\r\nHost: charstore\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n",
            encoded.len(),
            trace_header()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(encoded)?;
        stream.flush()?;
        let (status, _body) = read_response(&stream)?;
        if status != 200 {
            return Err(invalid(format!("object publish answered {status}")));
        }
        Ok(())
    }
}

/// Reads one CRLF- (or LF-) terminated line, bounded by
/// [`MAX_LINE_BYTES`]. EOF mid-line is a framing error.
fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        if reader.read(&mut byte)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            ));
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(invalid("response header line too long"));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| invalid("response header line is not UTF-8"))
}

/// Reads one response: status line, headers, then a `Content-Length`
/// body bounded by [`MAX_OBJECT_BYTES`] **before** allocation.
fn read_response(stream: &TcpStream) -> io::Result<(u16, Vec<u8>)> {
    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let mut parts = status_line.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(invalid(format!("malformed status line `{status_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version `{version}`")));
    }
    let status = status
        .parse::<u16>()
        .map_err(|_| invalid("non-numeric status"))?;
    let mut content_length: u64 = 0;
    let mut lines = 0usize;
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        lines += 1;
        if lines > MAX_HEADER_LINES {
            return Err(invalid("too many response header lines"));
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<u64>()
                .map_err(|_| invalid("bad Content-Length in response"))?;
        }
    }
    if content_length > MAX_OBJECT_BYTES as u64 {
        return Err(invalid(format!(
            "response body of {content_length} bytes exceeds the {MAX_OBJECT_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; content_length as usize];
    reader.read_exact(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn key() -> Digest128 {
        crate::digest::digest_bytes("remote-test", b"k")
    }

    /// A one-shot fake daemon answering with a fixed response.
    fn one_shot_server(response: Vec<u8>) -> (String, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Drain whatever the client sent (it half-closes nothing;
            // just read until the blank line / body heuristically by
            // reading what is available after the response is written).
            stream.write_all(&response).unwrap();
            stream.flush().unwrap();
            let mut sink = Vec::new();
            stream
                .set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let _ = stream.read_to_end(&mut sink);
            sink
        });
        (addr, handle)
    }

    #[test]
    fn fetch_decodes_200_bodies_and_maps_404_to_none() {
        let body = b"PPCHART1-not-really".to_vec();
        let response = format!("HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n", body.len())
            .into_bytes()
            .into_iter()
            .chain(body.clone())
            .collect();
        let (addr, server) = one_shot_server(response);
        let tier = RemoteTier::new(addr);
        assert_eq!(tier.fetch(key()).unwrap(), Some(body));
        server.join().unwrap();

        let (addr, server) =
            one_shot_server(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        assert_eq!(tier.fetch(key()).unwrap(), None);
        server.join().unwrap();
    }

    #[test]
    fn trace_id_propagates_as_a_request_header() {
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        let trace = obs::TraceId::generate();
        obs::with_trace(trace, || {
            assert_eq!(tier.fetch(key()).unwrap(), None);
        });
        let request = String::from_utf8(server.join().unwrap()).unwrap();
        assert!(
            request.contains(&format!("X-Trace-Id: {trace}\r\n")),
            "trace header missing from request:\n{request}"
        );

        // Outside a trace scope, no header is sent at all.
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        assert_eq!(tier.fetch(key()).unwrap(), None);
        let request = String::from_utf8(server.join().unwrap()).unwrap();
        assert!(!request.contains("X-Trace-Id"));
    }

    #[test]
    fn oversized_content_length_is_rejected_before_allocation() {
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 200 OK\r\nContent-Length: 99999999999999\r\n\r\n".to_vec());
        let tier = RemoteTier::new(addr);
        let err = tier.fetch(key()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        server.join().unwrap();
    }

    #[test]
    fn dead_endpoint_is_an_error_not_a_hang() {
        // Port 1 on localhost: nothing listens, connect is refused
        // immediately (and the connect timeout bounds the worst case).
        let tier = RemoteTier::new("127.0.0.1:1")
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        assert!(tier.fetch(key()).is_err());
        assert!(tier.publish(key(), b"bytes").is_err());
    }

    #[test]
    fn truncated_response_is_a_framing_error() {
        let (addr, server) =
            one_shot_server(b"HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort".to_vec());
        let tier = RemoteTier::new(addr);
        assert!(tier.fetch(key()).is_err());
        server.join().unwrap();
    }
}
