//! Cycle-level weight-stationary systolic array simulator.
//!
//! Replaces the RTL + Modelsim + Power Compiler accelerator flow of the
//! PowerPruning paper (DESIGN.md §2). Quantized GEMMs captured from the
//! [`nn`] crate ([`nn::layers::GemmCapture`]) are tiled onto an R×C
//! weight-stationary array (TPU-style: weights stationary in PEs,
//! activations streamed across rows, partial sums accumulated down
//! columns).
//!
//! Two execution modes mirror the paper's two uses of the simulator:
//!
//! * [`stats`] — exact per-PE operand streams produce the activation
//!   transition histogram and partial-sum transition samples that drive
//!   power characterization (paper Fig. 4).
//! * [`energy`] — per-weight characterized MAC energies
//!   ([`energy::MacEnergyModel`]) are integrated over the exact weight
//!   residency of the array to produce dynamic + leakage power for the
//!   [`array::HwVariant::Standard`] and [`array::HwVariant::Optimized`]
//!   hardware variants (zero-weight clock gating and unused-column power
//!   gating).
//!
//! # Examples
//!
//! ```
//! use nn::layers::GemmCapture;
//! use systolic::array::{ArrayConfig, HwVariant, SystolicArray};
//! use systolic::energy::MacEnergyModel;
//!
//! let gemm = GemmCapture {
//!     layer: "demo".into(),
//!     weight_codes: vec![1, -2, 3, 0],
//!     act_codes: vec![10, 20, 30, 40],
//!     m: 2,
//!     k: 2,
//!     n: 2,
//! };
//! let array = SystolicArray::new(ArrayConfig::default());
//! let model = MacEnergyModel::analytic_default();
//! let report = array.run_gemm_energy(&gemm, &model, HwVariant::Optimized);
//! assert!(report.dynamic_fj > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod dataflow;
pub mod energy;
pub mod stats;
pub mod traffic;

pub use array::{ArrayConfig, HwVariant, SystolicArray};
pub use dataflow::{run_gemm_energy_dataflow, Dataflow};
pub use energy::{GemmEnergyReport, MacEnergyModel, NetworkEnergyReport};
pub use stats::TransitionStats;
pub use traffic::{gemm_traffic, MemoryModel, MemoryTraffic};
