//! Transition statistics collected from systolic execution.
//!
//! These are exactly the inputs of the paper's power characterization:
//! the 256×256 activation transition histogram (Fig. 4a) and a sample
//! of partial-sum transitions used to build the 50-bin transition
//! distribution (Fig. 4b).

use std::fmt;

/// Maximum number of partial-sum transition samples retained (reservoir
/// sampling keeps the sample unbiased).
const PSUM_RESERVOIR: usize = 400_000;

/// Activation and partial-sum transition statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionStats {
    /// 256×256 histogram: `act_hist[from * 256 + to]`.
    act_hist: Vec<u64>,
    act_total: u64,
    /// Reservoir of (from, to) partial-sum value transitions.
    psum_samples: Vec<(i32, i32)>,
    psum_seen: u64,
    macs: u64,
    /// Deterministic reservoir counter state.
    lcg: u64,
}

impl TransitionStats {
    /// An empty statistics collector.
    #[must_use]
    pub fn new() -> Self {
        TransitionStats {
            act_hist: vec![0u64; 256 * 256],
            act_total: 0,
            psum_samples: Vec::new(),
            psum_seen: 0,
            macs: 0,
            lcg: 0x9e3779b97f4a7c15,
        }
    }

    /// Records an activation transition observed by `weight` PEs.
    pub fn record_activation(&mut self, from: u8, to: u8, weight: u64) {
        self.act_hist[from as usize * 256 + to as usize] += weight;
        self.act_total += weight;
    }

    /// Records a partial-sum transition (values wrapped to `acc_bits`).
    pub fn record_psum(&mut self, from: i64, to: i64, acc_bits: usize) {
        let wrap = |v: i64| -> i32 {
            let m = 1i64 << acc_bits;
            let w = ((v % m) + m) % m;
            (if w >= m / 2 { w - m } else { w }) as i32
        };
        self.psum_seen += 1;
        let sample = (wrap(from), wrap(to));
        if self.psum_samples.len() < PSUM_RESERVOIR {
            self.psum_samples.push(sample);
        } else {
            // Deterministic reservoir sampling.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = self.lcg % self.psum_seen;
            if (slot as usize) < PSUM_RESERVOIR {
                self.psum_samples[slot as usize] = sample;
            }
        }
    }

    /// Notes executed MAC operations (bookkeeping for reports).
    pub fn note_macs(&mut self, macs: u64) {
        self.macs += macs;
    }

    /// Total recorded activation transitions.
    #[must_use]
    pub fn total_activation_transitions(&self) -> u64 {
        self.act_total
    }

    /// Total MAC operations noted.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        self.macs
    }

    /// The raw 256×256 activation transition histogram
    /// (`hist[from * 256 + to]`).
    #[must_use]
    pub fn activation_histogram(&self) -> &[u64] {
        &self.act_hist
    }

    /// Probability of the activation transition `from → to`.
    #[must_use]
    pub fn activation_probability(&self, from: u8, to: u8) -> f64 {
        if self.act_total == 0 {
            return 0.0;
        }
        self.act_hist[from as usize * 256 + to as usize] as f64 / self.act_total as f64
    }

    /// The sampled partial-sum transitions.
    #[must_use]
    pub fn psum_samples(&self) -> &[(i32, i32)] {
        &self.psum_samples
    }

    /// Total partial-sum transitions observed (before reservoir capping).
    #[must_use]
    pub fn psum_transitions_seen(&self) -> u64 {
        self.psum_seen
    }

    /// Draws `count` activation transitions according to the histogram,
    /// using the provided RNG. Returns `(from, to)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no transitions have been recorded.
    #[must_use]
    pub fn sample_activation_transitions(
        &self,
        count: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<(u8, u8)> {
        use rand::Rng;
        assert!(self.act_total > 0, "no activation transitions recorded");
        // Build a cumulative table over non-zero entries.
        let mut entries: Vec<(u64, u32)> = Vec::new(); // (cumulative, packed from/to)
        let mut acc = 0u64;
        for (idx, &c) in self.act_hist.iter().enumerate() {
            if c > 0 {
                acc += c;
                entries.push((acc, idx as u32));
            }
        }
        (0..count)
            .map(|_| {
                let r = rng.random_range(0..acc);
                let pos = entries.partition_point(|&(cum, _)| cum <= r);
                let packed = entries[pos.min(entries.len() - 1)].1;
                ((packed / 256) as u8, (packed % 256) as u8)
            })
            .collect()
    }

    /// Serializes the complete collector state (histogram stored
    /// sparsely, reservoir, counters, *and* the reservoir RNG state) so
    /// a deserialized collector is bit-identical to the original — the
    /// charstore round-trip contract.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use charstore::wire;
        wire::put_u64(out, self.act_total);
        let nonzero = self.act_hist.iter().filter(|&&c| c > 0).count();
        wire::put_usize(out, nonzero);
        for (idx, &c) in self.act_hist.iter().enumerate() {
            if c > 0 {
                wire::put_u32(out, idx as u32);
                wire::put_u64(out, c);
            }
        }
        wire::put_usize(out, self.psum_samples.len());
        for &(from, to) in &self.psum_samples {
            wire::put_i32(out, from);
            wire::put_i32(out, to);
        }
        wire::put_u64(out, self.psum_seen);
        wire::put_u64(out, self.macs);
        wire::put_u64(out, self.lcg);
    }

    /// Deserializes a collector written by [`TransitionStats::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncated input or out-of-range histogram
    /// indices (bounds are validated before any allocation).
    pub fn read_from(r: &mut charstore::wire::Reader<'_>) -> std::io::Result<Self> {
        use charstore::wire;
        let mut stats = TransitionStats::new();
        stats.act_total = r.u64()?;
        let nonzero = r.bounded_len(12)?;
        for _ in 0..nonzero {
            let idx = r.u32()? as usize;
            let count = r.u64()?;
            if idx >= stats.act_hist.len() {
                return Err(wire::invalid(format!("histogram index {idx} out of range")));
            }
            stats.act_hist[idx] = count;
        }
        let samples = r.bounded_len(8)?;
        if samples > PSUM_RESERVOIR {
            return Err(wire::invalid(format!(
                "psum sample count {samples} exceeds reservoir cap {PSUM_RESERVOIR}"
            )));
        }
        // The reservoir dominates the artifact (megabytes at full
        // cap); one bounds check for the whole block keeps warm-start
        // decode fast.
        let block = r.take(samples * 8)?;
        stats.psum_samples = block
            .chunks_exact(8)
            .map(|c| {
                (
                    i32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                    i32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
                )
            })
            .collect();
        stats.psum_seen = r.u64()?;
        stats.macs = r.u64()?;
        stats.lcg = r.u64()?;
        Ok(stats)
    }

    /// Merges another collector into this one (psum samples are
    /// concatenated up to the reservoir cap).
    pub fn merge(&mut self, other: &TransitionStats) {
        for (a, b) in self.act_hist.iter_mut().zip(&other.act_hist) {
            *a += b;
        }
        self.act_total += other.act_total;
        self.psum_seen += other.psum_seen;
        self.macs += other.macs;
        for &s in &other.psum_samples {
            if self.psum_samples.len() < PSUM_RESERVOIR {
                self.psum_samples.push(s);
            }
        }
    }
}

impl Default for TransitionStats {
    fn default() -> Self {
        TransitionStats::new()
    }
}

impl fmt::Display for TransitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransitionStats: {} activation transitions, {} psum transitions ({} sampled), {} MACs",
            self.act_total,
            self.psum_seen,
            self.psum_samples.len(),
            self.macs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn histogram_accumulates() {
        let mut s = TransitionStats::new();
        s.record_activation(3, 5, 2);
        s.record_activation(3, 5, 1);
        assert_eq!(s.activation_histogram()[3 * 256 + 5], 3);
        assert_eq!(s.total_activation_transitions(), 3);
        assert!((s.activation_probability(3, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn psum_wrapping_is_twos_complement() {
        let mut s = TransitionStats::new();
        s.record_psum((1 << 21) + 5, -(1 << 21) - 5, 22);
        let (from, to) = s.psum_samples()[0];
        // (1<<21)+5 wraps to -(1<<21)+5 in 22-bit two's complement.
        assert_eq!(from, -(1 << 21) + 5);
        assert_eq!(to, (1 << 21) - 5);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = TransitionStats::new();
        s.record_activation(10, 20, 90);
        s.record_activation(30, 40, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let draws = s.sample_activation_transitions(1000, &mut rng);
        let majority = draws.iter().filter(|&&(f, t)| (f, t) == (10, 20)).count();
        assert!(
            (820..=980).contains(&majority),
            "expected ~900 majority draws, got {majority}"
        );
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = TransitionStats::new();
        a.record_activation(1, 2, 5);
        let mut b = TransitionStats::new();
        b.record_activation(1, 2, 7);
        b.record_psum(10, 20, 22);
        a.merge(&b);
        assert_eq!(a.total_activation_transitions(), 12);
        assert_eq!(a.psum_samples().len(), 1);
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let mut s = TransitionStats::new();
        for i in 0..40u8 {
            s.record_activation(i, i.wrapping_add(7), u64::from(i) + 1);
        }
        for i in 0..600 {
            s.record_psum(i * 131 - 4000, i * 77 + 13, 22);
        }
        s.note_macs(123_456);
        let mut buf = Vec::new();
        s.write_to(&mut buf);
        let mut r = charstore::wire::Reader::new(&buf);
        let back = TransitionStats::read_from(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, s);
        // The RNG state round-trips too: both keep sampling identically.
        let mut a = s.clone();
        let mut b = back;
        for i in 0..100 {
            a.record_psum(i, -i, 22);
            b.record_psum(i, -i, 22);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn codec_rejects_hostile_input() {
        use std::io::ErrorKind;
        let mut s = TransitionStats::new();
        s.record_activation(1, 2, 3);
        let mut buf = Vec::new();
        s.write_to(&mut buf);
        // Truncation.
        let mut r = charstore::wire::Reader::new(&buf[..buf.len() / 2]);
        assert_eq!(
            TransitionStats::read_from(&mut r).unwrap_err().kind(),
            ErrorKind::InvalidData
        );
        // Hostile histogram count (claims more entries than bytes).
        let mut hostile = Vec::new();
        charstore::wire::put_u64(&mut hostile, 0);
        charstore::wire::put_u64(&mut hostile, u64::MAX);
        let mut r = charstore::wire::Reader::new(&hostile);
        assert_eq!(
            TransitionStats::read_from(&mut r).unwrap_err().kind(),
            ErrorKind::InvalidData
        );
    }

    #[test]
    #[should_panic(expected = "no activation transitions")]
    fn sampling_from_empty_panics() {
        let s = TransitionStats::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = s.sample_activation_transitions(1, &mut rng);
    }
}
