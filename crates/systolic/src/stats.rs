//! Transition statistics collected from systolic execution.
//!
//! These are exactly the inputs of the paper's power characterization:
//! the 256×256 activation transition histogram (Fig. 4a) and a sample
//! of partial-sum transitions used to build the 50-bin transition
//! distribution (Fig. 4b).

use std::fmt;

/// Maximum number of partial-sum transition samples retained (reservoir
/// sampling keeps the sample unbiased).
const PSUM_RESERVOIR: usize = 400_000;

/// Activation and partial-sum transition statistics.
#[derive(Debug, Clone)]
pub struct TransitionStats {
    /// 256×256 histogram: `act_hist[from * 256 + to]`.
    act_hist: Vec<u64>,
    act_total: u64,
    /// Reservoir of (from, to) partial-sum value transitions.
    psum_samples: Vec<(i32, i32)>,
    psum_seen: u64,
    macs: u64,
    /// Deterministic reservoir counter state.
    lcg: u64,
}

impl TransitionStats {
    /// An empty statistics collector.
    #[must_use]
    pub fn new() -> Self {
        TransitionStats {
            act_hist: vec![0u64; 256 * 256],
            act_total: 0,
            psum_samples: Vec::new(),
            psum_seen: 0,
            macs: 0,
            lcg: 0x9e3779b97f4a7c15,
        }
    }

    /// Records an activation transition observed by `weight` PEs.
    pub fn record_activation(&mut self, from: u8, to: u8, weight: u64) {
        self.act_hist[from as usize * 256 + to as usize] += weight;
        self.act_total += weight;
    }

    /// Records a partial-sum transition (values wrapped to `acc_bits`).
    pub fn record_psum(&mut self, from: i64, to: i64, acc_bits: usize) {
        let wrap = |v: i64| -> i32 {
            let m = 1i64 << acc_bits;
            let w = ((v % m) + m) % m;
            (if w >= m / 2 { w - m } else { w }) as i32
        };
        self.psum_seen += 1;
        let sample = (wrap(from), wrap(to));
        if self.psum_samples.len() < PSUM_RESERVOIR {
            self.psum_samples.push(sample);
        } else {
            // Deterministic reservoir sampling.
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = self.lcg % self.psum_seen;
            if (slot as usize) < PSUM_RESERVOIR {
                self.psum_samples[slot as usize] = sample;
            }
        }
    }

    /// Notes executed MAC operations (bookkeeping for reports).
    pub fn note_macs(&mut self, macs: u64) {
        self.macs += macs;
    }

    /// Total recorded activation transitions.
    #[must_use]
    pub fn total_activation_transitions(&self) -> u64 {
        self.act_total
    }

    /// Total MAC operations noted.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        self.macs
    }

    /// The raw 256×256 activation transition histogram
    /// (`hist[from * 256 + to]`).
    #[must_use]
    pub fn activation_histogram(&self) -> &[u64] {
        &self.act_hist
    }

    /// Probability of the activation transition `from → to`.
    #[must_use]
    pub fn activation_probability(&self, from: u8, to: u8) -> f64 {
        if self.act_total == 0 {
            return 0.0;
        }
        self.act_hist[from as usize * 256 + to as usize] as f64 / self.act_total as f64
    }

    /// The sampled partial-sum transitions.
    #[must_use]
    pub fn psum_samples(&self) -> &[(i32, i32)] {
        &self.psum_samples
    }

    /// Total partial-sum transitions observed (before reservoir capping).
    #[must_use]
    pub fn psum_transitions_seen(&self) -> u64 {
        self.psum_seen
    }

    /// Draws `count` activation transitions according to the histogram,
    /// using the provided RNG. Returns `(from, to)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no transitions have been recorded.
    #[must_use]
    pub fn sample_activation_transitions(
        &self,
        count: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<(u8, u8)> {
        use rand::Rng;
        assert!(self.act_total > 0, "no activation transitions recorded");
        // Build a cumulative table over non-zero entries.
        let mut entries: Vec<(u64, u32)> = Vec::new(); // (cumulative, packed from/to)
        let mut acc = 0u64;
        for (idx, &c) in self.act_hist.iter().enumerate() {
            if c > 0 {
                acc += c;
                entries.push((acc, idx as u32));
            }
        }
        (0..count)
            .map(|_| {
                let r = rng.random_range(0..acc);
                let pos = entries.partition_point(|&(cum, _)| cum <= r);
                let packed = entries[pos.min(entries.len() - 1)].1;
                ((packed / 256) as u8, (packed % 256) as u8)
            })
            .collect()
    }

    /// Merges another collector into this one (psum samples are
    /// concatenated up to the reservoir cap).
    pub fn merge(&mut self, other: &TransitionStats) {
        for (a, b) in self.act_hist.iter_mut().zip(&other.act_hist) {
            *a += b;
        }
        self.act_total += other.act_total;
        self.psum_seen += other.psum_seen;
        self.macs += other.macs;
        for &s in &other.psum_samples {
            if self.psum_samples.len() < PSUM_RESERVOIR {
                self.psum_samples.push(s);
            }
        }
    }
}

impl Default for TransitionStats {
    fn default() -> Self {
        TransitionStats::new()
    }
}

impl fmt::Display for TransitionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TransitionStats: {} activation transitions, {} psum transitions ({} sampled), {} MACs",
            self.act_total,
            self.psum_seen,
            self.psum_samples.len(),
            self.macs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn histogram_accumulates() {
        let mut s = TransitionStats::new();
        s.record_activation(3, 5, 2);
        s.record_activation(3, 5, 1);
        assert_eq!(s.activation_histogram()[3 * 256 + 5], 3);
        assert_eq!(s.total_activation_transitions(), 3);
        assert!((s.activation_probability(3, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn psum_wrapping_is_twos_complement() {
        let mut s = TransitionStats::new();
        s.record_psum((1 << 21) + 5, -(1 << 21) - 5, 22);
        let (from, to) = s.psum_samples()[0];
        // (1<<21)+5 wraps to -(1<<21)+5 in 22-bit two's complement.
        assert_eq!(from, -(1 << 21) + 5);
        assert_eq!(to, (1 << 21) - 5);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = TransitionStats::new();
        s.record_activation(10, 20, 90);
        s.record_activation(30, 40, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let draws = s.sample_activation_transitions(1000, &mut rng);
        let majority = draws.iter().filter(|&&(f, t)| (f, t) == (10, 20)).count();
        assert!(
            (820..=980).contains(&majority),
            "expected ~900 majority draws, got {majority}"
        );
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = TransitionStats::new();
        a.record_activation(1, 2, 5);
        let mut b = TransitionStats::new();
        b.record_activation(1, 2, 7);
        b.record_psum(10, 20, 22);
        a.merge(&b);
        assert_eq!(a.total_activation_transitions(), 12);
        assert_eq!(a.psum_samples().len(), 1);
    }

    #[test]
    #[should_panic(expected = "no activation transitions")]
    fn sampling_from_empty_panics() {
        let s = TransitionStats::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = s.sample_activation_transitions(1, &mut rng);
    }
}
