//! Array configuration, tiling and the two hardware variants.

use crate::energy::{GemmEnergyReport, MacEnergyModel, NetworkEnergyReport};
use crate::stats::TransitionStats;
use nn::layers::GemmCapture;
use std::fmt;

/// Hardware power-management variant (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwVariant {
    /// No power-saving features: every PE clocks every cycle and the
    /// whole array leaks for the whole run.
    Standard,
    /// Zero-weight PEs are clock-gated (no dynamic power) and entirely
    /// unused columns are power-gated (no dynamic or leakage power).
    Optimized,
}

impl fmt::Display for HwVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwVariant::Standard => f.write_str("Standard HW"),
            HwVariant::Optimized => f.write_str("Optimized HW"),
        }
    }
}

/// Dimensions and clocking of the systolic array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfig {
    /// Number of PE rows (the reduction/K dimension).
    pub rows: usize,
    /// Number of PE columns (the output/M dimension).
    pub cols: usize,
    /// Clock period in picoseconds (paper: ~5 GHz → 200 ps).
    pub clock_ps: f64,
    /// Accumulator width in bits (22 for the paper's 64×64 array).
    pub acc_bits: usize,
}

impl ArrayConfig {
    /// The paper's 64×64 array at ~5 GHz with 22-bit accumulators.
    #[must_use]
    pub fn paper_64x64() -> Self {
        ArrayConfig {
            rows: 64,
            cols: 64,
            clock_ps: 200.0,
            acc_bits: 22,
        }
    }

    /// A small array for fast tests.
    #[must_use]
    pub fn small(rows: usize, cols: usize) -> Self {
        ArrayConfig {
            rows,
            cols,
            clock_ps: 200.0,
            acc_bits: 22,
        }
    }

    /// Clock frequency in GHz.
    #[must_use]
    pub fn freq_ghz(&self) -> f64 {
        1000.0 / self.clock_ps
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig::paper_64x64()
    }
}

/// A weight-stationary systolic array simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SystolicArray {
    config: ArrayConfig,
}

impl SystolicArray {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if rows/cols are zero or the clock period is not positive.
    #[must_use]
    pub fn new(config: ArrayConfig) -> Self {
        assert!(
            config.rows > 0 && config.cols > 0,
            "array must be non-empty"
        );
        assert!(config.clock_ps > 0.0, "clock period must be positive");
        SystolicArray { config }
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Number of tiles a GEMM needs: `(k_tiles, m_tiles)`.
    #[must_use]
    pub fn tile_counts(&self, gemm: &GemmCapture) -> (usize, usize) {
        (
            gemm.k.div_ceil(self.config.rows),
            gemm.m.div_ceil(self.config.cols),
        )
    }

    /// Total cycles to execute a GEMM: per tile, `rows` cycles of weight
    /// load plus `n` streaming cycles plus `rows + cols` pipeline
    /// fill/drain.
    #[must_use]
    pub fn cycles(&self, gemm: &GemmCapture) -> u64 {
        let (kt, mt) = self.tile_counts(gemm);
        let per_tile =
            self.config.rows as u64 + gemm.n as u64 + (self.config.rows + self.config.cols) as u64;
        (kt * mt) as u64 * per_tile
    }

    /// Streams a GEMM through the array collecting exact activation and
    /// partial-sum transition statistics (paper Fig. 4 inputs).
    ///
    /// The per-PE operand sequences are reconstructed exactly: PE `(r,c)`
    /// of tile `(kt, mt)` holds weight `W[c_glob, r_glob]`, sees the
    /// activation stream `A[r_glob, 0..n]` and the partial-sum stream
    /// `P_t = Σ_{r'<r_glob within tile} W[c_glob, r'] · A[r', t]`.
    pub fn run_gemm_stats(&self, gemm: &GemmCapture, stats: &mut TransitionStats) {
        let rows = self.config.rows;
        let cols = self.config.cols;
        let (k_tiles, m_tiles) = self.tile_counts(gemm);

        // Activation transitions: every row stream is seen (skewed) by
        // each column; the transition distribution per row is counted
        // once per resident column to weight it like the hardware does.
        for kt in 0..k_tiles {
            let k_lo = kt * rows;
            let k_hi = ((kt + 1) * rows).min(gemm.k);
            for mt in 0..m_tiles {
                let m_lo = mt * cols;
                let m_hi = ((mt + 1) * cols).min(gemm.m);
                let resident_cols = (m_hi - m_lo) as u64;
                for r in k_lo..k_hi {
                    let row = &gemm.act_codes[r * gemm.n..(r + 1) * gemm.n];
                    let mut prev = 0u8; // pipeline fill starts from idle zero
                    for &a in row {
                        stats.record_activation(prev, a, resident_cols);
                        prev = a;
                    }
                }
                // Partial-sum streams per column: prefix sums down rows.
                // P for the PE at tile-row r is the accumulated sum of
                // rows strictly above it (what flows *into* the PE).
                for c in m_lo..m_hi {
                    let w_row = &gemm.weight_codes[c * gemm.k..(c + 1) * gemm.k];
                    for t in 0..gemm.n {
                        let mut acc: i64 = 0;
                        let mut prev_acc: i64;
                        for r in k_lo..k_hi {
                            prev_acc = acc;
                            acc += w_row[r] as i64 * gemm.act_codes[r * gemm.n + t] as i64;
                            // The PE at row r sees incoming psum
                            // transition from the previous step's value
                            // at this position.
                            stats.record_psum(prev_acc, acc, self.config.acc_bits);
                        }
                    }
                }
            }
        }
        stats.note_macs(gemm.mac_ops());
    }

    /// Integrates per-weight MAC energies over the exact weight
    /// residency of the array, producing the GEMM's energy report for
    /// the chosen hardware variant.
    #[must_use]
    pub fn run_gemm_energy(
        &self,
        gemm: &GemmCapture,
        model: &MacEnergyModel,
        hw: HwVariant,
    ) -> GemmEnergyReport {
        let rows = self.config.rows;
        let cols = self.config.cols;
        let (k_tiles, m_tiles) = self.tile_counts(gemm);
        let per_tile_cycles = rows as u64 + gemm.n as u64 + (rows + cols) as u64;
        let active_cycles_per_pe = gemm.n as f64;

        let mut dynamic_fj = 0.0f64;
        let mut leakage_pe_cycles = 0.0f64; // (PEs leaking) × cycles

        for kt in 0..k_tiles {
            let k_lo = kt * rows;
            let k_hi = ((kt + 1) * rows).min(gemm.k);
            let resident_rows = k_hi - k_lo;
            for mt in 0..m_tiles {
                let m_lo = mt * cols;
                let m_hi = ((mt + 1) * cols).min(gemm.m);
                let resident_cols = m_hi - m_lo;

                // Dynamic energy of resident PEs.
                for c in m_lo..m_hi {
                    let w_row = &gemm.weight_codes[c * gemm.k..(c + 1) * gemm.k];
                    for &w in &w_row[k_lo..k_hi] {
                        let gated = hw == HwVariant::Optimized && w == 0;
                        if !gated {
                            dynamic_fj += model.energy_fj(w) * active_cycles_per_pe;
                        }
                    }
                }
                // Idle PEs inside used columns (rows beyond k) still
                // clock on Standard HW.
                if hw == HwVariant::Standard {
                    let idle_in_cols = (rows - resident_rows) * resident_cols;
                    dynamic_fj += model.idle_fj() * idle_in_cols as f64 * active_cycles_per_pe;
                    // Unused columns also clock idly on Standard HW.
                    let unused_cols = cols - resident_cols;
                    dynamic_fj +=
                        model.idle_fj() * (unused_cols * rows) as f64 * active_cycles_per_pe;
                }

                // Leakage: Standard leaks everywhere; Optimized power-
                // gates entirely unused columns (their PEs stop leaking).
                let leaking_pes = match hw {
                    HwVariant::Standard => rows * cols,
                    HwVariant::Optimized => rows * resident_cols,
                };
                leakage_pe_cycles += leaking_pes as f64 * per_tile_cycles as f64;
            }
        }

        let cycles = (k_tiles * m_tiles) as u64 * per_tile_cycles;
        let time_ns = cycles as f64 * self.config.clock_ps * 1e-3;
        // leakage power per PE is in nW; energy = nW × ns = 1e-9W × 1e-9s = 1e-18 J = aJ.
        let leakage_fj =
            model.leakage_nw_per_pe() * leakage_pe_cycles * self.config.clock_ps * 1e-3 * 1e-3;
        GemmEnergyReport {
            layer: gemm.layer.clone(),
            dynamic_fj,
            leakage_fj,
            cycles,
            time_ns,
            mac_ops: gemm.mac_ops(),
        }
    }

    /// Runs a whole network (list of captured GEMMs) and aggregates the
    /// per-layer reports.
    #[must_use]
    pub fn run_network_energy(
        &self,
        gemms: &[GemmCapture],
        model: &MacEnergyModel,
        hw: HwVariant,
    ) -> NetworkEnergyReport {
        let layers: Vec<GemmEnergyReport> = gemms
            .iter()
            .map(|g| self.run_gemm_energy(g, model, hw))
            .collect();
        NetworkEnergyReport::from_layers(layers)
    }

    /// Runs a whole network collecting transition statistics.
    #[must_use]
    pub fn run_network_stats(&self, gemms: &[GemmCapture]) -> TransitionStats {
        static GEMMS_RUN: std::sync::LazyLock<obs::metrics::Counter> =
            std::sync::LazyLock::new(|| obs::metrics::counter("systolic_gemms_captured_total"));
        let mut span = obs::span("systolic_run_network_stats");
        span.field("gemms", gemms.len());
        let mut stats = TransitionStats::new();
        for g in gemms {
            self.run_gemm_stats(g, &mut stats);
        }
        GEMMS_RUN.add(gemms.len() as u64);
        span.field("mac_ops", stats.mac_ops());
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(m: usize, k: usize, n: usize) -> GemmCapture {
        GemmCapture {
            layer: "t".into(),
            weight_codes: (0..m * k).map(|i| ((i % 11) as i8) - 5).collect(),
            act_codes: (0..k * n).map(|i| (i % 251) as u8).collect(),
            m,
            k,
            n,
        }
    }

    #[test]
    fn tiling_covers_all_elements() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        let g = gemm(10, 9, 3);
        let (kt, mt) = array.tile_counts(&g);
        assert_eq!(kt, 3);
        assert_eq!(mt, 3);
    }

    #[test]
    fn cycles_grow_with_tiles() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        assert!(array.cycles(&gemm(8, 8, 16)) > array.cycles(&gemm(4, 4, 16)));
    }

    #[test]
    fn optimized_uses_no_more_power_than_standard() {
        let array = SystolicArray::new(ArrayConfig::small(8, 8));
        let model = MacEnergyModel::analytic_default();
        let g = gemm(6, 6, 32);
        let std = array.run_gemm_energy(&g, &model, HwVariant::Standard);
        let opt = array.run_gemm_energy(&g, &model, HwVariant::Optimized);
        assert!(opt.dynamic_fj <= std.dynamic_fj);
        assert!(opt.leakage_fj <= std.leakage_fj);
        assert_eq!(opt.cycles, std.cycles);
    }

    #[test]
    fn zero_weights_save_energy_on_optimized_only_dynamic() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        let model = MacEnergyModel::analytic_default();
        let mut g = gemm(4, 4, 64);
        let dense = array.run_gemm_energy(&g, &model, HwVariant::Optimized);
        for w in &mut g.weight_codes {
            *w = 0;
        }
        let sparse = array.run_gemm_energy(&g, &model, HwVariant::Optimized);
        assert!(sparse.dynamic_fj < dense.dynamic_fj * 0.1);
        assert_eq!(sparse.leakage_fj, dense.leakage_fj);
    }

    #[test]
    fn stats_collect_transitions() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        let g = gemm(4, 8, 16);
        let stats = array.run_network_stats(std::slice::from_ref(&g));
        assert!(stats.total_activation_transitions() > 0);
        assert!(!stats.psum_samples().is_empty());
    }

    #[test]
    fn report_power_is_consistent() {
        let array = SystolicArray::new(ArrayConfig::small(8, 8));
        let model = MacEnergyModel::analytic_default();
        let g = gemm(8, 8, 100);
        let rep = array.run_gemm_energy(&g, &model, HwVariant::Standard);
        let total_mw = rep.total_power_mw();
        assert!(total_mw > 0.0);
        assert!((rep.dynamic_power_mw() + rep.leakage_power_mw() - total_mw).abs() < 1e-9);
    }
}
