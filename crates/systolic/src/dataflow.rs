//! Dataflow ablation: weight-stationary vs output-stationary arrays.
//!
//! PowerPruning assumes a **weight-stationary** array (TPU-style): a PE
//! holds one weight for a whole activation stream, so a cheap weight
//! value pays off for many cycles and a zero weight clock-gates the PE
//! for the whole stream. In an **output-stationary** array each PE
//! accumulates one output element while weights *and* activations
//! stream through it: the MAC energy sum is identical, but every cycle
//! additionally toggles the PE's weight register (Hamming distance
//! between consecutive weights), and zero-weight gating only applies to
//! the individual cycles where the streamed weight happens to be zero.
//!
//! This module quantifies that difference — the dataflow ablation of
//! DESIGN.md §7.

use crate::array::{HwVariant, SystolicArray};
use crate::energy::{GemmEnergyReport, MacEnergyModel};
use nn::layers::GemmCapture;

/// Accelerator dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Weights stay resident in PEs (the paper's assumption).
    #[default]
    WeightStationary,
    /// Outputs stay resident; weights and activations stream.
    OutputStationary,
}

/// Energy charged per weight-register *bit toggle* when weights stream
/// (output-stationary only), fJ.
pub const WEIGHT_REG_BIT_TOGGLE_FJ: f64 = 0.35;

/// Runs a GEMM under the chosen dataflow.
///
/// Weight-stationary delegates to [`SystolicArray::run_gemm_energy`].
/// Output-stationary reuses the same MAC energy integration but (a)
/// applies zero-weight clock gating per *cycle* instead of per
/// *residency*, and (b) adds the weight-register streaming energy.
#[must_use]
pub fn run_gemm_energy_dataflow(
    array: &SystolicArray,
    gemm: &GemmCapture,
    model: &MacEnergyModel,
    hw: HwVariant,
    dataflow: Dataflow,
) -> GemmEnergyReport {
    match dataflow {
        Dataflow::WeightStationary => array.run_gemm_energy(gemm, model, hw),
        Dataflow::OutputStationary => {
            // MAC energy: every (m, k, n) op executes once regardless of
            // dataflow; zero-weight ops are gated per cycle on Optimized
            // HW (same arithmetic as weight-stationary gating, since
            // gating is per-op either way).
            let mut report = array.run_gemm_energy(gemm, model, hw);
            // Weight streaming: PE (m, n) sees the weight sequence
            // W[m, 0..k]; every consecutive pair toggles the weight
            // register by their Hamming distance. The same row sequence
            // is seen by all n output columns mapped to that row.
            let mut toggle_bits: u64 = 0;
            for m in 0..gemm.m {
                let row = &gemm.weight_codes[m * gemm.k..(m + 1) * gemm.k];
                let mut row_bits = 0u64;
                for pair in row.windows(2) {
                    row_bits += u64::from((pair[0] as u8 ^ pair[1] as u8).count_ones());
                }
                toggle_bits += row_bits * gemm.n as u64;
            }
            report.dynamic_fj += toggle_bits as f64 * WEIGHT_REG_BIT_TOGGLE_FJ;
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayConfig;

    fn gemm() -> GemmCapture {
        GemmCapture {
            layer: "df".into(),
            weight_codes: (0..8 * 16).map(|i| ((i * 11) % 255) as i8).collect(),
            act_codes: (0..16 * 32).map(|i| (i % 251) as u8).collect(),
            m: 8,
            k: 16,
            n: 32,
        }
    }

    #[test]
    fn weight_stationary_matches_plain_run() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        let model = MacEnergyModel::analytic_default();
        let g = gemm();
        let plain = array.run_gemm_energy(&g, &model, HwVariant::Standard);
        let ws = run_gemm_energy_dataflow(
            &array,
            &g,
            &model,
            HwVariant::Standard,
            Dataflow::WeightStationary,
        );
        assert_eq!(plain, ws);
    }

    #[test]
    fn output_stationary_costs_more() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        let model = MacEnergyModel::analytic_default();
        let g = gemm();
        let ws = run_gemm_energy_dataflow(
            &array,
            &g,
            &model,
            HwVariant::Optimized,
            Dataflow::WeightStationary,
        );
        let os = run_gemm_energy_dataflow(
            &array,
            &g,
            &model,
            HwVariant::Optimized,
            Dataflow::OutputStationary,
        );
        assert!(os.dynamic_fj > ws.dynamic_fj);
    }

    #[test]
    fn constant_weight_rows_stream_for_free() {
        let array = SystolicArray::new(ArrayConfig::small(4, 4));
        let model = MacEnergyModel::analytic_default();
        let mut g = gemm();
        for w in &mut g.weight_codes {
            *w = 42; // constant row: no register toggles
        }
        let ws = run_gemm_energy_dataflow(
            &array,
            &g,
            &model,
            HwVariant::Standard,
            Dataflow::WeightStationary,
        );
        let os = run_gemm_energy_dataflow(
            &array,
            &g,
            &model,
            HwVariant::Standard,
            Dataflow::OutputStationary,
        );
        assert_eq!(ws.dynamic_fj, os.dynamic_fj);
    }
}
