//! MAC energy models and energy/power reports.

use std::fmt;

/// Per-weight-value MAC energy table.
///
/// Index is the int8 weight code; `energy_fj(w)` is the average energy
/// one MAC unit dissipates per active cycle while holding weight `w`,
/// averaged over realistic activation/partial-sum transitions. The
/// PowerPruning core crate fills this table from gate-level
/// characterization; [`MacEnergyModel::analytic_default`] provides a
/// cheap stand-in for tests with the same qualitative shape (energy
/// grows with the number of set bits / magnitude of the weight, zero is
/// cheapest).
#[derive(Debug, Clone, PartialEq)]
pub struct MacEnergyModel {
    /// Energy per active cycle, indexed by `code + 128` (256 slots).
    per_weight_fj: Vec<f64>,
    /// Energy per idle (clocked but weightless) cycle.
    idle_fj: f64,
    /// Leakage power per PE in nanowatts.
    leakage_nw_per_pe: f64,
}

impl MacEnergyModel {
    /// Builds a model from a per-code table.
    ///
    /// # Panics
    ///
    /// Panics if the table does not have 256 entries.
    #[must_use]
    pub fn from_table(per_weight_fj: Vec<f64>, idle_fj: f64, leakage_nw_per_pe: f64) -> Self {
        assert_eq!(per_weight_fj.len(), 256, "need one entry per int8 code");
        MacEnergyModel {
            per_weight_fj,
            idle_fj,
            leakage_nw_per_pe,
        }
    }

    /// A qualitative analytic model: energy grows with the weight's bit
    /// activity (popcount of the magnitude) and magnitude, zero weight
    /// is cheapest. Calibrated to the same hundreds-of-µW-per-MAC range
    /// as the paper's Fig. 2 at 5 GHz.
    #[must_use]
    pub fn analytic_default() -> Self {
        let mut table = vec![0.0f64; 256];
        for code in -128i32..=127 {
            let mag = code.unsigned_abs();
            let pop = mag.count_ones() as f64;
            let magf = mag as f64 / 127.0;
            // ~120 fJ base (600 µW at 5 GHz) up to ~215 fJ (1075 µW).
            let fj = 118.0 + 55.0 * (pop / 7.0) + 42.0 * magf;
            let fj = if code == 0 { 62.0 } else { fj };
            table[(code + 128) as usize] = fj;
        }
        MacEnergyModel::from_table(table, 20.0, 150.0)
    }

    /// Average energy per active cycle for a weight code, in fJ.
    #[must_use]
    pub fn energy_fj(&self, code: i8) -> f64 {
        self.per_weight_fj[(code as i32 + 128) as usize]
    }

    /// Energy per idle clocked cycle, in fJ.
    #[must_use]
    pub fn idle_fj(&self) -> f64 {
        self.idle_fj
    }

    /// Leakage power per PE, in nW.
    #[must_use]
    pub fn leakage_nw_per_pe(&self) -> f64 {
        self.leakage_nw_per_pe
    }

    /// Serializes the model bit-exactly for the charstore container.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        use charstore::wire;
        wire::put_usize(out, self.per_weight_fj.len());
        for &e in &self.per_weight_fj {
            wire::put_f64(out, e);
        }
        wire::put_f64(out, self.idle_fj);
        wire::put_f64(out, self.leakage_nw_per_pe);
    }

    /// Deserializes a model written by [`MacEnergyModel::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation or a table size other than 256.
    pub fn read_from(r: &mut charstore::wire::Reader<'_>) -> std::io::Result<Self> {
        use charstore::wire;
        let len = r.bounded_len(8)?;
        if len != 256 {
            return Err(wire::invalid(format!(
                "energy table has {len} entries, expected 256"
            )));
        }
        let mut per_weight_fj = Vec::with_capacity(len);
        for _ in 0..len {
            per_weight_fj.push(r.f64()?);
        }
        Ok(MacEnergyModel {
            per_weight_fj,
            idle_fj: r.f64()?,
            leakage_nw_per_pe: r.f64()?,
        })
    }

    /// Returns a copy with dynamic energies scaled by `dyn_factor` and
    /// leakage scaled by `leak_factor` (used for voltage scaling).
    #[must_use]
    pub fn scaled(&self, dyn_factor: f64, leak_factor: f64) -> Self {
        MacEnergyModel {
            per_weight_fj: self.per_weight_fj.iter().map(|e| e * dyn_factor).collect(),
            idle_fj: self.idle_fj * dyn_factor,
            leakage_nw_per_pe: self.leakage_nw_per_pe * leak_factor,
        }
    }

    /// Average power (µW) a MAC holding `code` dissipates at the given
    /// clock period — convenience for plotting Fig. 2-style series.
    #[must_use]
    pub fn power_uw(&self, code: i8, clock_ps: f64) -> f64 {
        // fJ per cycle / ps per cycle = mW; ×1000 = µW.
        self.energy_fj(code) / clock_ps * 1000.0
    }
}

/// Energy report for one GEMM on the array.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmEnergyReport {
    /// Producing layer name.
    pub layer: String,
    /// Dynamic switching energy, fJ.
    pub dynamic_fj: f64,
    /// Leakage energy, fJ.
    pub leakage_fj: f64,
    /// Execution cycles.
    pub cycles: u64,
    /// Wall-clock time, ns.
    pub time_ns: f64,
    /// MAC operations executed.
    pub mac_ops: u64,
}

impl GemmEnergyReport {
    /// Dynamic power in mW.
    #[must_use]
    pub fn dynamic_power_mw(&self) -> f64 {
        // fJ / ns = µW; /1000 = mW.
        self.dynamic_fj / self.time_ns / 1000.0
    }

    /// Leakage power in mW.
    #[must_use]
    pub fn leakage_power_mw(&self) -> f64 {
        self.leakage_fj / self.time_ns / 1000.0
    }

    /// Total power in mW.
    #[must_use]
    pub fn total_power_mw(&self) -> f64 {
        self.dynamic_power_mw() + self.leakage_power_mw()
    }
}

/// Aggregated energy report for a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkEnergyReport {
    /// Per-layer reports, in execution order.
    pub layers: Vec<GemmEnergyReport>,
}

impl NetworkEnergyReport {
    /// Aggregates per-layer reports.
    #[must_use]
    pub fn from_layers(layers: Vec<GemmEnergyReport>) -> Self {
        NetworkEnergyReport { layers }
    }

    /// Total dynamic energy, fJ.
    #[must_use]
    pub fn dynamic_fj(&self) -> f64 {
        self.layers.iter().map(|l| l.dynamic_fj).sum()
    }

    /// Total leakage energy, fJ.
    #[must_use]
    pub fn leakage_fj(&self) -> f64 {
        self.layers.iter().map(|l| l.leakage_fj).sum()
    }

    /// Total execution time, ns.
    #[must_use]
    pub fn time_ns(&self) -> f64 {
        self.layers.iter().map(|l| l.time_ns).sum()
    }

    /// Total cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MAC operations.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.mac_ops).sum()
    }

    /// Time-averaged dynamic power, mW.
    #[must_use]
    pub fn dynamic_power_mw(&self) -> f64 {
        if self.time_ns() == 0.0 {
            return 0.0;
        }
        self.dynamic_fj() / self.time_ns() / 1000.0
    }

    /// Time-averaged leakage power, mW.
    #[must_use]
    pub fn leakage_power_mw(&self) -> f64 {
        if self.time_ns() == 0.0 {
            return 0.0;
        }
        self.leakage_fj() / self.time_ns() / 1000.0
    }

    /// Time-averaged total power, mW.
    #[must_use]
    pub fn total_power_mw(&self) -> f64 {
        self.dynamic_power_mw() + self.leakage_power_mw()
    }
}

impl fmt::Display for NetworkEnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} layers, {} MACs, {} cycles, {:.3} mW total ({:.3} dyn + {:.3} leak)",
            self.layers.len(),
            self.mac_ops(),
            self.cycles(),
            self.total_power_mw(),
            self.dynamic_power_mw(),
            self.leakage_power_mw()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_model_codec_round_trips_bit_exactly() {
        let m = MacEnergyModel::analytic_default();
        let mut buf = Vec::new();
        m.write_to(&mut buf);
        let mut r = charstore::wire::Reader::new(&buf);
        let back = MacEnergyModel::read_from(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        assert_eq!(back, m);
        // A wrong table size is InvalidData, not a panic downstream.
        let mut short = Vec::new();
        charstore::wire::put_u64(&mut short, 2);
        charstore::wire::put_f64(&mut short, 1.0);
        charstore::wire::put_f64(&mut short, 2.0);
        let mut r = charstore::wire::Reader::new(&short);
        assert!(MacEnergyModel::read_from(&mut r).is_err());
    }

    #[test]
    fn analytic_model_has_paper_shape() {
        let m = MacEnergyModel::analytic_default();
        // Zero is cheapest.
        for code in -127i8..=127 {
            if code != 0 {
                assert!(m.energy_fj(0) < m.energy_fj(code), "code {code}");
            }
        }
        // Powers of two are cheaper than dense-bit neighbours.
        assert!(m.energy_fj(64) < m.energy_fj(-105));
        // Paper-like magnitudes at 5 GHz (200 ps): hundreds of µW.
        let p = m.power_uw(-105, 200.0);
        assert!((400.0..2000.0).contains(&p), "power {p} µW out of range");
    }

    #[test]
    fn scaled_model_scales_both_components() {
        let m = MacEnergyModel::analytic_default();
        let s = m.scaled(0.5, 0.25);
        assert!((s.energy_fj(7) - 0.5 * m.energy_fj(7)).abs() < 1e-12);
        assert!((s.leakage_nw_per_pe() - 0.25 * m.leakage_nw_per_pe()).abs() < 1e-12);
    }

    #[test]
    fn report_aggregation_is_additive() {
        let l1 = GemmEnergyReport {
            layer: "a".into(),
            dynamic_fj: 100.0,
            leakage_fj: 10.0,
            cycles: 50,
            time_ns: 10.0,
            mac_ops: 1000,
        };
        let l2 = GemmEnergyReport {
            layer: "b".into(),
            dynamic_fj: 200.0,
            leakage_fj: 30.0,
            cycles: 150,
            time_ns: 30.0,
            mac_ops: 3000,
        };
        let net = NetworkEnergyReport::from_layers(vec![l1, l2]);
        assert_eq!(net.dynamic_fj(), 300.0);
        assert_eq!(net.cycles(), 200);
        assert_eq!(net.mac_ops(), 4000);
        // 300 fJ / 40 ns = 7.5 µW = 0.0075 mW.
        assert!((net.dynamic_power_mw() - 0.0075).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "256")]
    fn bad_table_size_rejected() {
        let _ = MacEnergyModel::from_table(vec![0.0; 10], 0.0, 0.0);
    }
}
