//! On-chip memory traffic and energy (an extension beyond the paper).
//!
//! The paper's power numbers cover the MAC array itself; real
//! accelerators also pay for moving operands between SRAM buffers and
//! the array. This module counts the bytes a tiled weight-stationary
//! execution moves and converts them to energy with per-byte SRAM
//! costs, so the examples can report how array-level savings dilute at
//! system level (they do not vanish: weight/activation traffic is
//! value-independent, so PowerPruning's *relative* array saving remains).

use crate::array::SystolicArray;
use nn::layers::GemmCapture;

/// Bytes moved by one tiled GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTraffic {
    /// Weight bytes loaded into the array (once per tile residency).
    pub weight_bytes: u64,
    /// Activation bytes streamed (re-read once per m-tile).
    pub act_bytes: u64,
    /// Partial-sum bytes written back + re-read across k-tiles.
    pub psum_bytes: u64,
}

impl MemoryTraffic {
    /// Total bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.act_bytes + self.psum_bytes
    }
}

/// Per-byte SRAM access energies, fJ (15 nm-class on-chip buffers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Energy per weight byte read, fJ.
    pub weight_fj_per_byte: f64,
    /// Energy per activation byte read, fJ.
    pub act_fj_per_byte: f64,
    /// Energy per partial-sum byte moved, fJ.
    pub psum_fj_per_byte: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            weight_fj_per_byte: 25.0,
            act_fj_per_byte: 25.0,
            psum_fj_per_byte: 30.0,
        }
    }
}

impl MemoryModel {
    /// Energy for the given traffic, fJ.
    #[must_use]
    pub fn energy_fj(&self, traffic: &MemoryTraffic) -> f64 {
        traffic.weight_bytes as f64 * self.weight_fj_per_byte
            + traffic.act_bytes as f64 * self.act_fj_per_byte
            + traffic.psum_bytes as f64 * self.psum_fj_per_byte
    }
}

/// Counts the bytes a weight-stationary tiled execution of `gemm` moves
/// on `array`.
///
/// Tiling: weights load once per `(k_tile, m_tile)` residency;
/// activation rows stream once per m-tile; partial sums spill/refill at
/// every k-tile boundary except the first (4-byte accumulators).
#[must_use]
pub fn gemm_traffic(array: &SystolicArray, gemm: &GemmCapture) -> MemoryTraffic {
    let (k_tiles, m_tiles) = array.tile_counts(gemm);
    let weight_bytes = (gemm.m * gemm.k) as u64; // each weight resident exactly once overall
    let act_bytes = (gemm.k * gemm.n) as u64 * m_tiles as u64;
    let psum_bytes = if k_tiles > 1 {
        // spill + refill per extra k-tile: m × n accumulators, 4 bytes.
        (gemm.m * gemm.n * 4) as u64 * (2 * (k_tiles as u64 - 1))
    } else {
        0
    };
    MemoryTraffic {
        weight_bytes,
        act_bytes,
        psum_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayConfig;

    fn gemm(m: usize, k: usize, n: usize) -> GemmCapture {
        GemmCapture {
            layer: "t".into(),
            weight_codes: vec![1; m * k],
            act_codes: vec![1; k * n],
            m,
            k,
            n,
        }
    }

    #[test]
    fn single_tile_has_no_psum_traffic() {
        let array = SystolicArray::new(ArrayConfig::small(8, 8));
        let t = gemm_traffic(&array, &gemm(8, 8, 10));
        assert_eq!(t.psum_bytes, 0);
        assert_eq!(t.weight_bytes, 64);
        assert_eq!(t.act_bytes, 80);
    }

    #[test]
    fn k_tiling_spills_partial_sums() {
        let array = SystolicArray::new(ArrayConfig::small(4, 8));
        let t = gemm_traffic(&array, &gemm(8, 8, 10)); // 2 k-tiles
        assert_eq!(t.psum_bytes, (8 * 10 * 4 * 2) as u64);
    }

    #[test]
    fn m_tiling_rereads_activations() {
        let array = SystolicArray::new(ArrayConfig::small(8, 4));
        let t = gemm_traffic(&array, &gemm(8, 8, 10)); // 2 m-tiles
        assert_eq!(t.act_bytes, 160);
    }

    #[test]
    fn memory_energy_is_linear() {
        let traffic = MemoryTraffic {
            weight_bytes: 10,
            act_bytes: 20,
            psum_bytes: 30,
        };
        let model = MemoryModel {
            weight_fj_per_byte: 1.0,
            act_fj_per_byte: 2.0,
            psum_fj_per_byte: 3.0,
        };
        assert_eq!(model.energy_fj(&traffic), 10.0 + 40.0 + 90.0);
        assert_eq!(traffic.total_bytes(), 60);
    }
}
