//! Structural Verilog export.
//!
//! Writes a netlist as a synthesizable structural Verilog module so that
//! the circuits characterized here can be cross-checked in an external
//! EDA flow. Cell instances use generic gate primitives.

use crate::netlist::{NetSource, Netlist};
use crate::CellKind;
use std::fmt::Write as _;

/// Renders `netlist` as a structural Verilog module.
///
/// Primary inputs become module inputs `i0..iN`, primary outputs become
/// `o0..oM`; internal nets are `n<k>`.
///
/// # Examples
///
/// ```
/// use gatesim::circuits::MultiplierCircuit;
/// use gatesim::export::to_verilog;
///
/// let mult = MultiplierCircuit::new(4, 4);
/// let v = to_verilog(mult.netlist());
/// assert!(v.contains("module bw_mult_4x4"));
/// ```
#[must_use]
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let inputs: Vec<String> = (0..netlist.inputs().len())
        .map(|i| format!("i{i}"))
        .collect();
    let outputs: Vec<String> = (0..netlist.outputs().len())
        .map(|i| format!("o{i}"))
        .collect();

    let mut module_name: String = netlist
        .name()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    // A Verilog identifier must start with an ASCII letter or
    // underscore: generator names like "3x3" would render as invalid
    // modules.
    if !module_name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        module_name.insert_str(0, "m_");
    }

    let _ = writeln!(
        out,
        "module {module_name}({}, {});",
        inputs.join(", "),
        outputs.join(", ")
    );
    for name in &inputs {
        let _ = writeln!(out, "  input {name};");
    }
    for name in &outputs {
        let _ = writeln!(out, "  output {name};");
    }

    // Net naming: inputs use their port name; everything else is n<k>.
    let net_name = |idx: usize| -> String {
        for (pos, net) in netlist.inputs().iter().enumerate() {
            if net.index() == idx {
                return format!("i{pos}");
            }
        }
        format!("n{idx}")
    };

    for idx in 0..netlist.net_count() {
        match netlist.source(crate::NetId(idx as u32)) {
            NetSource::Input => {}
            NetSource::Const0 => {
                let _ = writeln!(out, "  wire {} = 1'b0;", net_name(idx));
            }
            NetSource::Const1 => {
                let _ = writeln!(out, "  wire {} = 1'b1;", net_name(idx));
            }
            NetSource::Gate(_) => {
                let _ = writeln!(out, "  wire {};", net_name(idx));
            }
        }
    }

    for (gid, gate) in netlist.gates().iter().enumerate() {
        let y = net_name(gate.output.index());
        let ins: Vec<String> = gate
            .active_inputs()
            .iter()
            .map(|n| net_name(n.index()))
            .collect();
        let expr = match gate.kind {
            CellKind::Inv => format!("~{}", ins[0]),
            CellKind::Buf => ins[0].clone(),
            CellKind::Nand2 => format!("~({} & {})", ins[0], ins[1]),
            CellKind::Nor2 => format!("~({} | {})", ins[0], ins[1]),
            CellKind::And2 => format!("{} & {}", ins[0], ins[1]),
            CellKind::Or2 => format!("{} | {}", ins[0], ins[1]),
            CellKind::Xor2 => format!("{} ^ {}", ins[0], ins[1]),
            CellKind::Xnor2 => format!("~({} ^ {})", ins[0], ins[1]),
            CellKind::Mux2 => format!("{} ? {} : {}", ins[2], ins[1], ins[0]),
            CellKind::Aoi21 => format!("~(({} & {}) | {})", ins[0], ins[1], ins[2]),
            CellKind::Oai21 => format!("~(({} | {}) & {})", ins[0], ins[1], ins[2]),
            CellKind::Maj3 => format!(
                "({a} & {b}) | ({a} & {c}) | ({b} & {c})",
                a = ins[0],
                b = ins[1],
                c = ins[2]
            ),
            CellKind::Xor3 => format!("{} ^ {} ^ {}", ins[0], ins[1], ins[2]),
        };
        let _ = writeln!(out, "  assign {y} = {expr}; // g{gid} {}", gate.kind);
    }

    for (pos, net) in netlist.outputs().iter().enumerate() {
        let _ = writeln!(out, "  assign o{pos} = {};", net_name(net.index()));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    #[test]
    fn exports_all_gates_and_ports() {
        let mut b = NetlistBuilder::new("exp-test");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.nand2(a, c);
        let z = b.const0();
        let y = b.or2(x, z);
        b.output(y);
        let nl = b.finish();
        let v = to_verilog(&nl);
        assert!(v.contains("module exp_test(i0, i1, o0);"));
        assert!(v.contains("~(i0 & i1)"));
        assert!(v.contains("1'b0"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn leading_digit_module_name_is_sanitized_exactly() {
        // Names like "3x3" are legal netlist names but invalid Verilog
        // identifiers; the exporter must prefix them. Pin the complete
        // output for a 2-gate netlist so any formatting drift is caught.
        let mut b = NetlistBuilder::new("3x3");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let n = b.nand2(a, c);
        let o = b.xor2(n, d);
        b.output(o);
        let v = to_verilog(&b.finish());
        assert_eq!(
            v,
            "module m_3x3(i0, i1, i2, o0);\n\
             \x20 input i0;\n\
             \x20 input i1;\n\
             \x20 input i2;\n\
             \x20 output o0;\n\
             \x20 wire n3;\n\
             \x20 wire n4;\n\
             \x20 assign n3 = ~(i0 & i1); // g0 NAND2\n\
             \x20 assign n4 = n3 ^ i2; // g1 XOR2\n\
             \x20 assign o0 = n4;\n\
             endmodule\n"
        );
    }

    #[test]
    fn output_assignments_present() {
        let mut b = NetlistBuilder::new("o");
        let a = b.input("a");
        let x = b.inv(a);
        b.output(x);
        let nl = b.finish();
        let v = to_verilog(&nl);
        assert!(v.contains("assign o0 ="));
    }
}
