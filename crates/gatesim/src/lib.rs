//! Gate-level substrate for MAC-unit power and timing characterization.
//!
//! This crate replaces the commercial EDA flow used in the PowerPruning
//! paper (Synopsys Design Compiler / Power Compiler + Modelsim on a
//! NanGate 15 nm netlist) with a self-contained structural model:
//!
//! * [`cells`] — a 15 nm-like standard-cell library with per-cell
//!   propagation delay, per-output-toggle switching energy and leakage.
//! * [`netlist`] / [`builder`] — a topologically ordered combinational
//!   netlist and a safe builder API.
//! * [`circuits`] — generators for ripple-carry and carry-lookahead
//!   adders, a Baugh-Wooley signed multiplier and the complete MAC unit
//!   used by a weight-stationary systolic array.
//! * [`sim`] — an event-driven, transport-delay timed simulator that
//!   reports switching energy (including glitches) and the settle time of
//!   every transition, i.e. dynamic timing analysis (DTA).
//! * [`engine`] — the batched simulation engine ([`BatchSim`]): same
//!   semantics as [`sim`], but allocation-free with incremental settles,
//!   a reusable lane-based event queue and streaming aggregation — the
//!   per-sample-timing hot path (2.5×+ the scalar throughput,
//!   bit-identical results).
//! * [`bitsim`] — the bit-parallel engine ([`BitSim`]): 64 stimulus
//!   vectors packed into one `u64` per net, word-wide truth-table
//!   evaluation and popcount toggle counting — the power
//!   characterization hot path, lane-exactly bit-identical to [`sim`].
//! * [`sta`] — static timing analysis: longest structural path from any
//!   net to any net, used for the accumulator adder exactly as the paper
//!   describes (Fig. 5).
//! * [`intervals`] — per-net `[min, max]` STA arrival intervals and the
//!   [`PrunePlan`] pruning pass: constant propagation over pinned
//!   inputs proves whole cones silent before simulation, and the
//!   intervals bound every settle time the engines may report. The
//!   shared build layer behind every engine's `with_plan` constructor.
//!
//! # Examples
//!
//! Characterize a single multiply-accumulate transition:
//!
//! ```
//! use gatesim::circuits::MacCircuit;
//! use gatesim::{CellLibrary, Simulator};
//!
//! let lib = CellLibrary::nangate15_like();
//! let mac = MacCircuit::new(8, 8, 22);
//! let mut sim = Simulator::new(mac.netlist(), &lib);
//!
//! // weight = -105, activation 17 -> 18, partial sum 100 -> 205
//! let before = mac.encode(-105, 17, 100);
//! let after = mac.encode(-105, 18, 205);
//! sim.settle(&before);
//! let stats = sim.transition(&after);
//! assert!(stats.energy_fj > 0.0);
//! assert!(stats.delay_ps > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitsim;
pub mod builder;
pub mod cells;
pub mod circuits;
pub mod counters;
pub mod engine;
pub mod export;
pub mod intervals;
pub mod netlist;
pub mod sim;
pub mod sta;
pub mod transform;

pub use bitsim::{BitSim, BitTransitionView};
pub use builder::NetlistBuilder;
pub use cells::{CellKind, CellLibrary, CellParams};
pub use counters::{register_metrics, sim_transitions};
pub use engine::{BatchAccumulator, BatchSim, TransitionView};
pub use intervals::{NetInterval, PrunePlan};
pub use netlist::{Gate, GateId, NetId, Netlist};
pub use sim::{Simulator, TransitionStats};
pub use sta::Sta;

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or using netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildCircuitError {
    /// A gate referenced a net that does not exist yet.
    UnknownNet(u32),
    /// An operand width was zero or otherwise unusable.
    InvalidWidth(usize),
    /// The number of supplied input bits does not match the port list.
    InputLengthMismatch {
        /// Number of bits expected by the netlist's input ports.
        expected: usize,
        /// Number of bits supplied by the caller.
        actual: usize,
    },
}

impl fmt::Display for BuildCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildCircuitError::UnknownNet(id) => write!(f, "unknown net id {id}"),
            BuildCircuitError::InvalidWidth(w) => write!(f, "invalid operand width {w}"),
            BuildCircuitError::InputLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} input bits, got {actual}")
            }
        }
    }
}

impl Error for BuildCircuitError {}
