//! Batched gate-simulation engine: the allocation-free hot path behind
//! power and timing characterization.
//!
//! [`crate::Simulator`] is the *reference* scalar implementation: every
//! `settle` allocates a fresh value vector, every `transition` a fresh
//! event heap and a fresh [`crate::TransitionStats`]. That is fine for a
//! handful of measurements and ideal for differential testing, but the
//! characterization loops of the PowerPruning flow run *millions* of
//! settle/transition round-trips.
//!
//! [`BatchSim`] keeps every buffer alive across transitions:
//!
//! * the settled value vector is updated **in place** — repeated settles
//!   re-evaluate only the fanout cone of the inputs that changed, in one
//!   forward sweep over the topologically ordered gate list;
//! * events live in a reusable arena-backed lane-per-delay queue
//!   (`EventQueue`, an engine-internal type) of packed 16-byte records;
//! * gate evaluation goes through a precomputed 8-entry truth table per
//!   gate instead of a `match` on the cell kind;
//! * per-transition results are exposed as a borrow ([`TransitionView`])
//!   over persistent scratch arrays, and batch results are reduced into
//!   a [`BatchAccumulator`] — no allocation per sample anywhere.
//!
//! The engine is **bit-identical** to the scalar simulator: events carry
//! the same `(time, sequence)` ordering, energies are summed in the same
//! order, and arrival times are converted with the same arithmetic. The
//! property tests in `tests/batch_equivalence.rs` enforce this across
//! the adder, Booth-multiplier and MAC generators.

use crate::cells::CellLibrary;
use crate::intervals::{EngineBuild, GateRow, PrunePlan};
use crate::netlist::{NetId, NetSource, Netlist};
use crate::sim::FS_PER_PS;

/// Sentinel for "net has no output/observation slot".
const NO_SLOT: u32 = u32::MAX;

/// Bit 0 of [`BatchSim::state`]: the net's current value.
const VALUE: u8 = 1;
/// Bit 1 of [`BatchSim::state`]: the net's last scheduled event value.
const SCHED: u8 = 1 << 1;
/// Bit 2 of [`BatchSim::state`]: the net is a primary output or observed.
const INTEREST: u8 = 1 << 2;

/// Initial per-net state: all values low, interest bits from the
/// output-slot table (no nets observed yet).
fn output_slot_to_state(output_slot: &[u32]) -> Vec<u8> {
    output_slot
        .iter()
        .map(|&slot| if slot == NO_SLOT { 0 } else { INTEREST })
        .collect()
}

/// Evaluates one gate row against the packed per-net state bytes.
#[inline]
fn eval_row(state: &[u8], gate: &GateRow) -> bool {
    let idx = usize::from(state[gate.in0 as usize] & VALUE)
        | usize::from(state[gate.in1 as usize] & VALUE) << 1
        | usize::from(state[gate.in2 as usize] & VALUE) << 2;
    gate.lut >> idx & 1 == 1
}

/// One scheduled event, packed into 16 bytes.
///
/// Ordering is lexicographic on `(time_fs, seq, net, value)`; since
/// `seq` is unique per transition this is exactly the `(time, seq)`
/// order of the scalar simulator's `BinaryHeap<Reverse<…>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_fs: u64,
    /// `seq << 33 | net << 1 | value`.
    packed: u64,
}

impl Event {
    #[inline]
    fn new(time_fs: u64, seq: u32, net: u32, value: bool) -> Self {
        debug_assert!(seq < (1 << 31), "event sequence overflow");
        Event {
            time_fs,
            packed: (u64::from(seq) << 33) | (u64::from(net) << 1) | u64::from(value),
        }
    }

    #[inline]
    fn net(self) -> u32 {
        ((self.packed >> 1) & 0xffff_ffff) as u32
    }

    #[inline]
    fn value(self) -> bool {
        self.packed & 1 == 1
    }
}

/// One FIFO lane of the event queue: all events scheduled through gates
/// with the same propagation delay.
///
/// Event pop times are nondecreasing and every event in this lane is
/// scheduled at `pop_time + delay`, so the lane is sorted by arrival
/// time (and by sequence number within a time) purely by push order —
/// no sifting ever happens.
#[derive(Debug, Default)]
struct Lane {
    head: usize,
    events: Vec<Event>,
}

/// A reusable min-queue of simulation events, organised as one FIFO
/// lane per distinct gate delay (a standard-cell library has at most a
/// handful).
///
/// Monotone event times plus a fixed delay per lane keep every lane
/// sorted for free: `push` is an append, `pop` scans the lane heads for
/// the earliest `(time, seq)` pair. The lane arenas are cleared but
/// never freed between transitions, so steady-state operation performs
/// no allocation at all.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    lanes: Vec<Lane>,
    len: usize,
}

impl EventQueue {
    /// An empty queue with `lanes` delay lanes.
    fn with_lanes(lanes: usize) -> Self {
        EventQueue {
            lanes: (0..lanes).map(|_| Lane::default()).collect(),
            len: 0,
        }
    }

    /// Number of pending events.
    #[cfg(test)]
    fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all events, keeping the lane arena capacities.
    fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.head = 0;
            lane.events.clear();
        }
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, lane: usize, ev: Event) {
        debug_assert!(
            self.lanes[lane].events.last().is_none_or(|&prev| prev < ev),
            "lane push order violated"
        );
        self.lanes[lane].events.push(ev);
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        let mut best: Option<(usize, Event)> = None;
        for (idx, lane) in self.lanes.iter().enumerate() {
            if let Some(&ev) = lane.events.get(lane.head) {
                if best.is_none_or(|(_, b)| ev < b) {
                    best = Some((idx, ev));
                }
            }
        }
        let (idx, ev) = best?;
        self.lanes[idx].head += 1;
        self.len -= 1;
        Some(ev)
    }
}

/// Borrow of one transition's results over the engine's scratch buffers.
///
/// Holding a view blocks further engine calls; copy out what you need or
/// fold it into a [`BatchAccumulator`].
#[derive(Debug)]
pub struct TransitionView<'a> {
    /// Total switching energy of the transition, fJ.
    pub energy_fj: f64,
    /// Arrival of the last primary-output toggle, ps (0 if none).
    pub delay_ps: f64,
    /// Number of net toggles, glitches included.
    pub toggles: u64,
    outputs_fs: &'a [u64],
    observed_fs: &'a [u64],
}

impl TransitionView<'_> {
    /// Arrival (ps) of the last toggle of the `slot`-th primary output,
    /// 0.0 if it did not toggle.
    #[must_use]
    pub fn output_arrival_ps(&self, slot: usize) -> f64 {
        self.outputs_fs
            .get(slot)
            .map_or(0.0, |&t| t as f64 / FS_PER_PS)
    }

    /// Number of primary-output slots.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs_fs.len()
    }

    /// Arrival (ps) of the last toggle of the `slot`-th observed net
    /// (see [`BatchSim::observe`]), 0.0 if it did not toggle.
    #[must_use]
    pub fn observed_arrival_ps(&self, slot: usize) -> f64 {
        self.observed_fs
            .get(slot)
            .map_or(0.0, |&t| t as f64 / FS_PER_PS)
    }

    /// Number of observed-net slots.
    #[must_use]
    pub fn observed_count(&self) -> usize {
        self.observed_fs.len()
    }
}

/// Streaming reduction over many transitions: total energy, toggle
/// count, worst delay and per-output arrival maxima.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchAccumulator {
    total_energy_fj: f64,
    total_toggles: u64,
    transitions: u64,
    max_delay_ps: f64,
    output_arrival_max_ps: Vec<f64>,
}

impl BatchAccumulator {
    /// An empty accumulator for a netlist with `outputs` primary
    /// outputs.
    #[must_use]
    pub fn new(outputs: usize) -> Self {
        BatchAccumulator {
            total_energy_fj: 0.0,
            total_toggles: 0,
            transitions: 0,
            max_delay_ps: 0.0,
            output_arrival_max_ps: vec![0.0; outputs],
        }
    }

    /// Folds one transition into the totals.
    pub fn record(&mut self, view: &TransitionView<'_>) {
        self.total_energy_fj += view.energy_fj;
        self.total_toggles += view.toggles;
        self.transitions += 1;
        self.max_delay_ps = self.max_delay_ps.max(view.delay_ps);
        for (slot, max) in self.output_arrival_max_ps.iter_mut().enumerate() {
            *max = max.max(view.output_arrival_ps(slot));
        }
    }

    /// Sum of switching energies over the batch, fJ.
    #[must_use]
    pub fn total_energy_fj(&self) -> f64 {
        self.total_energy_fj
    }

    /// Sum of net toggles over the batch.
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.total_toggles
    }

    /// Number of transitions recorded.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Mean switching energy per transition, fJ (0 for an empty batch).
    #[must_use]
    pub fn mean_energy_fj(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.total_energy_fj / self.transitions as f64
        }
    }

    /// Worst dynamic delay seen over the batch, ps.
    #[must_use]
    pub fn max_delay_ps(&self) -> f64 {
        self.max_delay_ps
    }

    /// Per-primary-output maxima of the last-toggle arrival, ps.
    #[must_use]
    pub fn output_arrival_max_ps(&self) -> &[f64] {
        &self.output_arrival_max_ps
    }
}

/// Batched event-driven simulator with persistent, reused buffers.
///
/// Semantics match [`crate::Simulator`] exactly (see the module docs);
/// the difference is purely mechanical: nothing is allocated per
/// settle/transition, settles are incremental, and results are borrowed
/// instead of owned.
///
/// # Examples
///
/// ```
/// use gatesim::{BatchSim, CellLibrary, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("inv_chain");
/// let a = b.input("a");
/// let x = b.inv(a);
/// let y = b.inv(x);
/// b.output(y);
/// let nl = b.finish();
///
/// let lib = CellLibrary::nangate15_like();
/// let mut sim = BatchSim::new(&nl, &lib);
/// sim.settle(&[false]);
/// let view = sim.transition(&[true]);
/// assert_eq!(view.toggles, 3);
/// assert!(view.delay_ps > 0.0);
/// ```
#[derive(Debug)]
pub struct BatchSim<'a> {
    netlist: &'a Netlist,
    /// Shared engine compilation: gate rows, live gate order, baked
    /// constants, live-filtered fanout, per-net energies and pin
    /// assertions (see [`crate::intervals`]).
    build: EngineBuild,
    output_slot: Vec<u32>,
    observe_slot: Vec<u32>,
    observed_count: usize,
    /// Per-net packed state: [`VALUE`] is the settled/current value,
    /// [`SCHED`] the value of the latest event scheduled for the net,
    /// [`INTEREST`] marks nets that are primary outputs or observed.
    ///
    /// The scheduled bit equals the value bit between transitions.
    /// Because every gate has one fixed delay, events for a net pop in
    /// push order, so an event matching the net's last scheduled value
    /// can never toggle — it is filtered at push time instead of pop
    /// time, halving the heap traffic without changing any observable
    /// result. Packing all three bits into one byte keeps the event hot
    /// loop to a single random load per net.
    state: Vec<u8>,
    current_inputs: Vec<bool>,
    primed: bool,
    queue: EventQueue,
    /// Dirty flags for the incremental settle sweep.
    gate_dirty: Vec<bool>,
    /// Scratch: last-toggle arrival per output / observed slot, fs.
    output_arrival_fs: Vec<u64>,
    observed_arrival_fs: Vec<u64>,
}

impl<'a> BatchSim<'a> {
    /// Creates an engine for `netlist` with electrical data from `lib`.
    ///
    /// Equivalent to [`BatchSim::with_plan`] with an unpinned
    /// [`PrunePlan`]: constant-fed cones are still pruned, which never
    /// changes any observable result.
    #[must_use]
    pub fn new(netlist: &'a Netlist, lib: &CellLibrary) -> Self {
        Self::with_plan(netlist, lib, &PrunePlan::unpinned(netlist, lib))
    }

    /// Creates an engine that skips the gates `plan` proved silent:
    /// their constant outputs are baked at settle time and no event is
    /// ever scheduled through them. Results are exactly bit-identical
    /// to the unpruned engine for any stimulus that respects the plan's
    /// pinned inputs (asserted on every settle/transition).
    #[must_use]
    pub fn with_plan(netlist: &'a Netlist, lib: &CellLibrary, plan: &PrunePlan) -> Self {
        let build = EngineBuild::new(netlist, lib, plan);
        let mut output_slot = vec![NO_SLOT; netlist.net_count()];
        for (slot, net) in netlist.outputs().iter().enumerate() {
            // First slot wins if a net is listed twice.
            if output_slot[net.index()] == NO_SLOT {
                output_slot[net.index()] = slot as u32;
            }
        }
        let outputs = netlist.outputs().len();
        let state = output_slot_to_state(&output_slot);
        let lanes = build.lane_count;
        BatchSim {
            netlist,
            build,
            output_slot,
            observe_slot: vec![NO_SLOT; netlist.net_count()],
            observed_count: 0,
            state,
            current_inputs: vec![false; netlist.inputs().len()],
            primed: false,
            queue: EventQueue::with_lanes(lanes),
            gate_dirty: vec![false; netlist.gate_count()],
            output_arrival_fs: vec![0; outputs],
            observed_arrival_fs: Vec::new(),
        }
    }

    /// Panics unless every pinned input holds its pinned value — the
    /// pruning proofs are conditional on exactly that.
    fn assert_pins(&self, inputs: &[bool]) {
        for &(pos, v) in &self.build.pins {
            assert_eq!(
                inputs[pos as usize], v,
                "pinned input {pos} violated (plan pins it to {v})"
            );
        }
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Registers nets whose last-toggle arrivals are recorded by
    /// subsequent transitions (slot `i` ↔ `nets[i]`).
    pub fn observe(&mut self, nets: &[NetId]) {
        self.observe_slot.fill(NO_SLOT);
        for (slot, net) in nets.iter().enumerate() {
            self.observe_slot[net.index()] = slot as u32;
        }
        self.observed_count = nets.len();
        self.observed_arrival_fs.resize(nets.len(), 0);
        for net in 0..self.state.len() {
            let interesting = self.output_slot[net] != NO_SLOT || self.observe_slot[net] != NO_SLOT;
            self.state[net] =
                (self.state[net] & !INTEREST) | if interesting { INTEREST } else { 0 };
        }
    }

    /// Sets a net's value *and* scheduled bits (used while settling,
    /// where both must stay in sync).
    #[inline]
    fn set_settled(&mut self, net: usize, v: bool) {
        let s = &mut self.state[net];
        *s = (*s & !(VALUE | SCHED)) | if v { VALUE | SCHED } else { 0 };
    }

    #[inline]
    fn eval_gate(&self, gid: usize) -> bool {
        eval_row(&self.state, &self.build.rows[gid])
    }

    /// Settles the circuit combinationally at `inputs`, updating the
    /// persistent value buffer in place. After the first call only the
    /// fanout cone of changed inputs is re-evaluated.
    ///
    /// # Panics
    ///
    /// Panics if the input vector length does not match the netlist.
    pub fn settle(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.current_inputs.len(),
            "input vector length mismatch"
        );
        self.assert_pins(inputs);
        if self.primed {
            self.settle_incremental(inputs);
        } else {
            self.settle_full(inputs);
            self.primed = true;
        }
        self.current_inputs.copy_from_slice(inputs);
    }

    fn settle_full(&mut self, inputs: &[bool]) {
        for idx in 0..self.netlist.sources().len() {
            match self.netlist.sources()[idx] {
                NetSource::Const0 => self.set_settled(idx, false),
                NetSource::Const1 => self.set_settled(idx, true),
                _ => {}
            }
        }
        // Bake the constants the plan proved; pruned gates are skipped
        // by the live sweep below and never touched again.
        for i in 0..self.build.pruned_values.len() {
            let (net, v) = self.build.pruned_values[i];
            self.set_settled(net as usize, v);
        }
        for pos in 0..inputs.len() {
            let net = self.netlist.inputs()[pos].index();
            self.set_settled(net, inputs[pos]);
        }
        for i in 0..self.build.live_rows.len() {
            let gid = self.build.live_rows[i] as usize;
            let out = self.build.rows[gid].out as usize;
            let v = self.eval_gate(gid);
            self.set_settled(out, v);
        }
    }

    fn settle_incremental(&mut self, inputs: &[bool]) {
        let mut first_dirty = usize::MAX;
        let mut dirty_count = 0usize;
        for (pos, &new) in inputs.iter().enumerate() {
            if self.current_inputs[pos] != new {
                let net = self.netlist.inputs()[pos].index();
                self.set_settled(net, new);
                // Live-filtered fanout: pruned gates are never marked
                // dirty, so their baked constants persist.
                let start = self.build.fanout_offsets[net] as usize;
                let end = self.build.fanout_offsets[net + 1] as usize;
                for k in start..end {
                    let gid = self.build.fanout_gate_ids[k] as usize;
                    if !self.gate_dirty[gid] {
                        self.gate_dirty[gid] = true;
                        dirty_count += 1;
                        first_dirty = first_dirty.min(gid);
                    }
                }
            }
        }
        if dirty_count == 0 {
            return;
        }
        // Gates are topologically ordered by construction, so a single
        // forward sweep reaches a fixpoint; the fanout of a changed
        // output always lies strictly ahead of the current gate.
        let mut gid = first_dirty;
        while dirty_count > 0 {
            if self.gate_dirty[gid] {
                self.gate_dirty[gid] = false;
                dirty_count -= 1;
                let out_net = self.build.rows[gid].out as usize;
                let out = self.eval_gate(gid);
                if (self.state[out_net] & VALUE != 0) != out {
                    self.set_settled(out_net, out);
                    let start = self.build.fanout_offsets[out_net] as usize;
                    let end = self.build.fanout_offsets[out_net + 1] as usize;
                    for k in start..end {
                        let succ = self.build.fanout_gate_ids[k] as usize;
                        if !self.gate_dirty[succ] {
                            self.gate_dirty[succ] = true;
                            dirty_count += 1;
                        }
                    }
                }
            }
            gid += 1;
        }
    }

    /// Current value of a net (after settle/transition).
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.state[net.index()] & VALUE != 0
    }

    /// Current primary-output values in port order.
    #[must_use]
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|&n| self.value(n))
            .collect()
    }

    /// Applies `new_inputs` at time zero and propagates all events,
    /// reusing every buffer.
    ///
    /// Event processing order, energy summation order and arrival
    /// arithmetic are identical to [`crate::Simulator::transition`], so
    /// the results are bit-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if [`BatchSim::settle`] has not been called or the input
    /// length mismatches.
    pub fn transition(&mut self, new_inputs: &[bool]) -> TransitionView<'_> {
        assert!(self.primed, "call settle() before transition()");
        crate::counters::record_transition();
        assert_eq!(
            new_inputs.len(),
            self.current_inputs.len(),
            "input vector length mismatch"
        );
        self.assert_pins(new_inputs);
        self.output_arrival_fs.fill(0);
        self.observed_arrival_fs.fill(0);
        self.queue.clear();
        let mut seq: u32 = 0;
        // Fanout re-evaluations suppressed by push-time filtering;
        // tallied locally and flushed to the metrics registry once per
        // transition to keep atomics out of the event loop.
        let mut filtered: u64 = 0;
        let mut energy_fj = 0.0f64;
        let mut toggles = 0u64;
        let mut last_output_toggle_fs = 0u64;

        // Split borrows once so the event loop indexes plain slices
        // while the queue is borrowed mutably.
        let BatchSim {
            netlist,
            build,
            output_slot,
            observe_slot,
            state,
            current_inputs,
            queue,
            output_arrival_fs,
            observed_arrival_fs,
            ..
        } = self;

        // Primary-input toggles all happen at t = 0 and, in the scalar
        // simulator, all pop before any gate event — so they are
        // processed directly here instead of round-tripping the heap.
        for pos in 0..new_inputs.len() {
            let new = new_inputs[pos];
            if current_inputs[pos] != new {
                let net = netlist.inputs()[pos].index();
                state[net] = (state[net] & !(VALUE | SCHED)) | if new { VALUE | SCHED } else { 0 };
                toggles += 1;
                // Inputs have no driving gate, so no energy is charged;
                // an input net can still be a primary output or observed
                // (its arrival buckets are already zeroed). Fanout is
                // live-filtered: pruned gates never see events.
                let start = build.fanout_offsets[net] as usize;
                let end = build.fanout_offsets[net + 1] as usize;
                for k in start..end {
                    let gate = build.rows[build.fanout_gate_ids[k] as usize];
                    let out = eval_row(state, &gate);
                    let out_net = gate.out as usize;
                    let s = state[out_net];
                    if (s & SCHED != 0) != out {
                        state[out_net] = (s & !SCHED) | if out { SCHED } else { 0 };
                        queue.push(
                            gate.lane as usize,
                            Event::new(u64::from(gate.delay_fs), seq, gate.out, out),
                        );
                        seq += 1;
                    } else {
                        filtered += 1;
                    }
                }
            }
        }

        while let Some(ev) = queue.pop() {
            let net = ev.net() as usize;
            let value = ev.value();
            let s = state[net];
            // Push-time filtering guarantees every popped event toggles
            // (the scheduled bit was set to `value` at push time).
            debug_assert_ne!(s & VALUE != 0, value);
            let t = ev.time_fs;
            state[net] = (s & !VALUE) | if value { VALUE } else { 0 };
            toggles += 1;
            energy_fj += build.net_energy_fj[net];
            if s & INTEREST != 0 {
                let oslot = output_slot[net];
                if oslot != NO_SLOT {
                    output_arrival_fs[oslot as usize] = t;
                    last_output_toggle_fs = last_output_toggle_fs.max(t);
                }
                let wslot = observe_slot[net];
                if wslot != NO_SLOT {
                    observed_arrival_fs[wslot as usize] = t;
                }
            }
            let start = build.fanout_offsets[net] as usize;
            let end = build.fanout_offsets[net + 1] as usize;
            for k in start..end {
                let gate = build.rows[build.fanout_gate_ids[k] as usize];
                let out = eval_row(state, &gate);
                let out_net = gate.out as usize;
                let s = state[out_net];
                if (s & SCHED != 0) != out {
                    state[out_net] = (s & !SCHED) | if out { SCHED } else { 0 };
                    queue.push(
                        gate.lane as usize,
                        Event::new(t + u64::from(gate.delay_fs), seq, gate.out, out),
                    );
                    seq += 1;
                } else {
                    filtered += 1;
                }
            }
        }

        crate::counters::record_events(u64::from(seq), filtered);
        crate::counters::record_settle_ps(last_output_toggle_fs as f64 / FS_PER_PS);
        self.current_inputs.copy_from_slice(new_inputs);
        TransitionView {
            energy_fj,
            delay_ps: last_output_toggle_fs as f64 / FS_PER_PS,
            toggles,
            outputs_fs: &self.output_arrival_fs,
            observed_fs: &self.observed_arrival_fs,
        }
    }

    /// Runs a stream of `(from, to)` input pairs, folding each measured
    /// transition into `acc`.
    ///
    /// # Panics
    ///
    /// Panics on input-length mismatch.
    pub fn run_pairs<'p, I>(&mut self, pairs: I, acc: &mut BatchAccumulator)
    where
        I: IntoIterator<Item = (&'p [bool], &'p [bool])>,
    {
        for (from, to) in pairs {
            self.settle(from);
            let view = self.transition(to);
            acc.record(&view);
        }
    }

    /// Convenience wrapper: runs the pair stream into a fresh
    /// accumulator.
    ///
    /// # Panics
    ///
    /// Panics on input-length mismatch.
    pub fn accumulate<'p, I>(&mut self, pairs: I) -> BatchAccumulator
    where
        I: IntoIterator<Item = (&'p [bool], &'p [bool])>,
    {
        let mut acc = BatchAccumulator::new(self.netlist.outputs().len());
        self.run_pairs(pairs, &mut acc);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::circuits::MacCircuit;
    use crate::sim::Simulator;

    fn xor_tree() -> Netlist {
        let mut b = NetlistBuilder::new("xt");
        let ins = b.input_bus("a", 4);
        let x1 = b.xor2(ins[0], ins[1]);
        let x2 = b.xor2(ins[2], ins[3]);
        let x3 = b.xor2(x1, x2);
        b.output(x3);
        b.finish()
    }

    #[test]
    fn event_queue_orders_by_time_then_seq() {
        // Three delay lanes; each lane is pushed in increasing
        // (time, seq) order as the engine guarantees.
        let mut q = EventQueue::with_lanes(3);
        q.push(0, Event::new(10, 1, 3, true));
        q.push(0, Event::new(30, 4, 1, true));
        q.push(1, Event::new(10, 2, 2, false));
        q.push(2, Event::new(20, 3, 4, true));
        assert_eq!(q.len(), 4);
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time_fs, e.net()))
            .collect();
        assert_eq!(order, vec![(10, 3), (10, 2), (20, 4), (30, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn event_packing_round_trips() {
        let ev = Event::new(123, 77, 0x00ab_cdef, true);
        assert_eq!(ev.net(), 0x00ab_cdef);
        assert!(ev.value());
        let ev2 = Event::new(123, 77, 5, false);
        assert!(!ev2.value());
    }

    #[test]
    fn matches_scalar_simulator_on_xor_tree() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut scalar = Simulator::new(&nl, &lib);
        let mut batch = BatchSim::new(&nl, &lib);
        let vectors: Vec<[bool; 4]> = (0..16u8)
            .map(|v| [v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0])
            .collect();
        scalar.settle(&vectors[0]);
        batch.settle(&vectors[0]);
        for w in vectors.windows(2) {
            let s = scalar.transition(&w[1]);
            let b = batch.transition(&w[1]);
            assert_eq!(s.energy_fj, b.energy_fj);
            assert_eq!(s.toggles, b.toggles);
            assert_eq!(s.delay_ps, b.delay_ps);
            assert_eq!(s.output_arrival_ps[0], b.output_arrival_ps(0));
        }
    }

    #[test]
    fn incremental_settle_matches_full_evaluate() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let mut batch = BatchSim::new(mac.netlist(), &lib);
        let mut x: u64 = 3;
        batch.settle(&mac.encode(0, 0, 0));
        for _ in 0..50 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let w = ((x & 0xf) as i64) - 8;
            let a = (x >> 4) & 0xf;
            let p = (((x >> 8) & 0x3ff) as i64) - 512;
            let inputs = mac.encode(w, a, p);
            batch.settle(&inputs);
            let expected = mac.netlist().evaluate(&inputs);
            for net in 0..mac.netlist().net_count() {
                assert_eq!(batch.value(NetId(net as u32)), expected[net], "net {net}");
            }
        }
    }

    #[test]
    fn accumulator_reduces_totals() {
        let nl = xor_tree();
        let lib = CellLibrary::uniform(2.0, 1.0, 0.0);
        let mut batch = BatchSim::new(&nl, &lib);
        let a = [false, false, false, false];
        let b = [true, false, false, false];
        let acc = batch.accumulate([(&a[..], &b[..]), (&b[..], &a[..])]);
        assert_eq!(acc.transitions(), 2);
        assert_eq!(acc.total_toggles(), 6);
        assert!((acc.total_energy_fj() - 4.0).abs() < 1e-12);
        assert!((acc.mean_energy_fj() - 2.0).abs() < 1e-12);
        assert!((acc.max_delay_ps() - 4.0).abs() < 1e-9);
        assert_eq!(acc.output_arrival_max_ps().len(), 1);
        assert!(acc.output_arrival_max_ps()[0] > 0.0);
    }

    #[test]
    fn observe_records_arrivals() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let mut batch = BatchSim::new(mac.netlist(), &lib);
        batch.observe(mac.product_nets());
        batch.settle(&mac.encode(3, 0, 0));
        let view = batch.transition(&mac.encode(3, 15, 0));
        let any = (0..view.observed_count()).any(|i| view.observed_arrival_ps(i) > 0.0);
        assert!(any, "expected some product-bit arrivals");
    }

    #[test]
    #[should_panic(expected = "settle")]
    fn transition_requires_settle() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut batch = BatchSim::new(&nl, &lib);
        let _ = batch.transition(&[true, false, false, false]);
    }
}
