//! Safe construction of topologically ordered netlists.
//!
//! [`NetlistBuilder`] hands out [`NetId`]s as gates are created; since a
//! gate can only reference ids that already exist, the resulting gate
//! list is topologically sorted by construction and the netlist is
//! guaranteed to be a combinational DAG.

use crate::cells::CellKind;
use crate::netlist::{Gate, GateId, NetId, NetSource, Netlist};

/// Builder for [`Netlist`]s.
///
/// # Examples
///
/// Build a 1-bit full adder and check its truth table:
///
/// ```
/// use gatesim::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("fa");
/// let x = b.input("x");
/// let y = b.input("y");
/// let cin = b.input("cin");
/// let (sum, cout) = b.full_adder(x, y, cin);
/// b.output(sum);
/// b.output(cout);
/// let nl = b.finish();
///
/// let out = nl.evaluate_outputs(&[true, true, false]);
/// assert_eq!(out, vec![false, true]); // 1 + 1 + 0 = 10b
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    sources: Vec<NetSource>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    const0: Option<NetId>,
    const1: Option<NetId>,
    input_names: Vec<String>,
}

impl NetlistBuilder {
    /// Creates an empty builder for a netlist with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            sources: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
            input_names: Vec::new(),
        }
    }

    fn fresh_net(&mut self, source: NetSource) -> NetId {
        let id = NetId(self.sources.len() as u32);
        self.sources.push(source);
        id
    }

    /// Declares a new primary input net.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.fresh_net(NetSource::Input);
        self.inputs.push(id);
        self.input_names.push(name.into());
        id
    }

    /// Declares `width` primary inputs named `name[0..width]`, LSB first.
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// The constant-0 net (created on first use).
    pub fn const0(&mut self) -> NetId {
        if let Some(id) = self.const0 {
            return id;
        }
        let id = self.fresh_net(NetSource::Const0);
        self.const0 = Some(id);
        id
    }

    /// The constant-1 net (created on first use).
    pub fn const1(&mut self) -> NetId {
        if let Some(id) = self.const1 {
            return id;
        }
        let id = self.fresh_net(NetSource::Const1);
        self.const1 = Some(id);
        id
    }

    /// Marks a net as a primary output. A net may be marked repeatedly;
    /// outputs appear in marking order.
    pub fn output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Instantiates a gate of the given kind and returns its output net.
    ///
    /// # Panics
    ///
    /// Panics if any input net id does not exist yet (which would break
    /// the topological-order invariant).
    pub fn gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.arity(),
            "{kind} expects {} inputs",
            kind.arity()
        );
        for &n in inputs {
            assert!(
                n.index() < self.sources.len(),
                "gate input {n} does not exist yet"
            );
        }
        let a = inputs[0];
        let b = *inputs.get(1).unwrap_or(&a);
        let c = *inputs.get(2).unwrap_or(&a);
        let out = self.fresh_net(NetSource::Gate(GateId(self.gates.len() as u32)));
        self.gates.push(Gate {
            kind,
            inputs: [a, b, c],
            output: out,
        });
        out
    }

    /// Inverter.
    pub fn inv(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Inv, &[a])
    }

    /// Buffer.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Buf, &[a])
    }

    /// 2-input NAND.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nand2, &[a, b])
    }

    /// 2-input NOR.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Nor2, &[a, b])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::And2, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Or2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xor2, &[a, b])
    }

    /// 2-input XNOR.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xnor2, &[a, b])
    }

    /// 2:1 mux, `sel ? b : a`.
    pub fn mux2(&mut self, a: NetId, b: NetId, sel: NetId) -> NetId {
        self.gate(CellKind::Mux2, &[a, b, sel])
    }

    /// 3-input majority (carry) gate.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.gate(CellKind::Maj3, &[a, b, c])
    }

    /// 3-input XOR (sum) gate.
    pub fn xor3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        self.gate(CellKind::Xor3, &[a, b, c])
    }

    /// Full adder built from a [`CellKind::Xor3`] sum gate and a
    /// [`CellKind::Maj3`] carry gate, the usual standard-cell mapping.
    ///
    /// Returns `(sum, carry_out)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let sum = self.xor3(a, b, cin);
        let cout = self.maj3(a, b, cin);
        (sum, cout)
    }

    /// Half adder; returns `(sum, carry_out)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        let sum = self.xor2(a, b);
        let cout = self.and2(a, b);
        (sum, cout)
    }

    /// Finalizes the netlist, computing the CSR fanout arrays.
    #[must_use]
    pub fn finish(self) -> Netlist {
        // Counting sort into compressed-sparse-row form: degree count,
        // exclusive prefix sum, then a fill pass. Gates are visited in
        // id order, so each net's edge list stays sorted by gate id.
        let nets = self.sources.len();
        let mut fanout_offsets = vec![0u32; nets + 1];
        for gate in &self.gates {
            for &input in gate.active_inputs() {
                fanout_offsets[input.index() + 1] += 1;
            }
        }
        for i in 0..nets {
            fanout_offsets[i + 1] += fanout_offsets[i];
        }
        let mut cursor: Vec<u32> = fanout_offsets[..nets].to_vec();
        let mut fanout_edges = vec![GateId(0); fanout_offsets[nets] as usize];
        for (gid, gate) in self.gates.iter().enumerate() {
            for &input in gate.active_inputs() {
                let slot = &mut cursor[input.index()];
                fanout_edges[*slot as usize] = GateId(gid as u32);
                *slot += 1;
            }
        }
        Netlist {
            gates: self.gates,
            sources: self.sources,
            inputs: self.inputs,
            outputs: self.outputs,
            fanout_offsets,
            fanout_edges,
            name: self.name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_truth_table() {
        for bits in 0..8u8 {
            let av = bits & 1 != 0;
            let bv = bits & 2 != 0;
            let cv = bits & 4 != 0;
            let mut b = NetlistBuilder::new("fa");
            let a = b.input("a");
            let bb = b.input("b");
            let c = b.input("c");
            let (s, co) = b.full_adder(a, bb, c);
            b.output(s);
            b.output(co);
            let nl = b.finish();
            let out = nl.evaluate_outputs(&[av, bv, cv]);
            let total = av as u8 + bv as u8 + cv as u8;
            assert_eq!(out[0], total & 1 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn half_adder_truth_table() {
        for bits in 0..4u8 {
            let av = bits & 1 != 0;
            let bv = bits & 2 != 0;
            let mut b = NetlistBuilder::new("ha");
            let a = b.input("a");
            let bb = b.input("b");
            let (s, co) = b.half_adder(a, bb);
            b.output(s);
            b.output(co);
            let nl = b.finish();
            let out = nl.evaluate_outputs(&[av, bv]);
            assert_eq!(out[0], av ^ bv);
            assert_eq!(out[1], av && bv);
        }
    }

    #[test]
    fn constants_are_shared() {
        let mut b = NetlistBuilder::new("c");
        let z1 = b.const0();
        let z2 = b.const0();
        let o1 = b.const1();
        let o2 = b.const1();
        assert_eq!(z1, z2);
        assert_eq!(o1, o2);
        assert_ne!(z1, o1);
    }

    #[test]
    fn constants_evaluate_correctly() {
        let mut b = NetlistBuilder::new("c");
        let z = b.const0();
        let o = b.const1();
        let x = b.or2(z, o);
        b.output(x);
        let nl = b.finish();
        assert_eq!(nl.evaluate_outputs(&[]), vec![true]);
    }

    #[test]
    fn fanout_lists_are_complete() {
        let mut b = NetlistBuilder::new("f");
        let a = b.input("a");
        let x = b.inv(a);
        let y = b.inv(a);
        let z = b.and2(x, y);
        b.output(z);
        let nl = b.finish();
        assert_eq!(nl.fanout(a).len(), 2);
        assert_eq!(nl.fanout(x).len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn gate_rejects_future_nets() {
        let mut b = NetlistBuilder::new("bad");
        let _a = b.input("a");
        let bogus = NetId(99);
        let _ = b.inv(bogus);
    }

    #[test]
    fn input_bus_orders_lsb_first() {
        let mut b = NetlistBuilder::new("bus");
        let bus = b.input_bus("a", 4);
        assert_eq!(bus.len(), 4);
        for w in bus.windows(2) {
            assert!(w[0].index() < w[1].index());
        }
    }
}
