//! Bit-sliced gate simulation: 64 stimulus vectors per machine word.
//!
//! [`BitSim`] packs the value of every net across 64 independent
//! stimulus vectors ("lanes") into one `u64`, evaluates each gate with
//! a word-wide boolean formula expanded from the cell's 8-bit truth
//! table ([`crate::CellKind::truth_table`]), and runs the same
//! transport-delay event schedule as the scalar [`crate::Simulator`] —
//! once per *word* instead of once per vector. Toggles are counted with
//! popcount over the XOR of consecutive net states, so one event pop
//! charges up to 64 vectors' worth of switching activity.
//!
//! # Lane packing
//!
//! Lane *l* (bit *l* of every word) is stimulus vector *l* of the
//! current block: `settle(from, active)` takes one `u64` per primary
//! input whose bit *l* is input bit's value in vector *l*, and
//! `transition(to)` applies all 64 next-vectors at once. Callers chunk
//! an arbitrary sample stream into blocks of ≤ 64 (see
//! `powerpruning::chars::characterize_power`).
//!
//! # Tail masking
//!
//! The last block of a sample stream rarely fills all 64 lanes.
//! `settle` takes the number of `active` lanes and masks every input
//! word with `(1 << active) - 1`: inactive lanes never see an input
//! edge, therefore never schedule an event, never toggle, and never
//! contribute energy — a 70-sample run over blocks of 64 + 6 is
//! bit-identical to 70 scalar runs, with no tail correction anywhere.
//!
//! # Exact equivalence, per lane
//!
//! The engine is **bit-identical** to the scalar simulator lane by
//! lane, glitches and f64 energy sums included, because word events
//! carry *absolute* 64-lane value words:
//!
//! * every net has exactly one driving gate with one fixed delay, so a
//!   net's events pop in push order and a word event's toggle mask is
//!   simply `value[net] ^ event.value`;
//! * a pushed event is filtered against the net's last *scheduled* word
//!   (`sched`), exactly the push-time filtering of
//!   [`crate::BatchSim`] — for a lane whose inputs did not change, the
//!   re-evaluated output bit equals the scheduled bit, so spurious
//!   events never toggle that lane;
//! * primary-input edges are applied one port at a time in port order,
//!   re-evaluating fanout gates word-wide after each port, so two
//!   inputs of one gate changing in the same vector produce the same
//!   zero-width glitch (two scheduled events, both charged) as the
//!   scalar event heap;
//! * per-lane energy accumulators receive their f64 adds in event pop
//!   order, which per lane is the scalar simulator's `(time, seq)`
//!   order — so each lane's energy is the identical floating-point
//!   fold, not merely close.
//!
//! The engine keeps one word per net (64 lanes). Widening to multiple
//! words per net would only amortize further on netlists whose working
//! set dwarfs the event stream; for the MAC-sized circuits this crate
//! characterizes, one word already saturates the win, so the engine
//! stays single-word and callers scale across weight codes with
//! threads instead (threads × lanes multiply).
//!
//! `tests/bitsim_equivalence.rs` enforces lane-exact agreement against
//! the scalar reference across the adder, Booth-multiplier and MAC
//! generators, plus the STA cross-check that no net outside the input
//! fanin cone ever toggles.

use crate::cells::CellLibrary;
use crate::intervals::{EngineBuild, GateRow, PrunePlan};
use crate::netlist::{NetId, NetSource, Netlist};

/// All-lanes mask for `active` lanes (1 ..= 64).
#[inline]
fn active_mask(active: usize) -> u64 {
    debug_assert!((1..=64).contains(&active), "active lanes out of range");
    if active == 64 {
        !0
    } else {
        (1u64 << active) - 1
    }
}

/// Evaluates an 8-entry truth table word-wide: bit *l* of the result is
/// `lut[a_l | b_l << 1 | c_l << 2]`.
///
/// The eight minterm masks are expanded from the 1-byte table at call
/// time (a handful of ALU ops) rather than stored per gate, keeping the
/// per-gate record small enough that the event hot loop stays in cache.
#[inline]
fn eval_lut_word(lut: u8, a: u64, b: u64, c: u64) -> u64 {
    let m = |i: u32| 0u64.wrapping_sub(u64::from((lut >> i) & 1));
    let (na, nb) = (!a, !b);
    let p00 = na & nb;
    let p10 = a & nb;
    let p01 = na & b;
    let p11 = a & b;
    let lo = (p00 & m(0)) | (p10 & m(1)) | (p01 & m(2)) | (p11 & m(3));
    let hi = (p00 & m(4)) | (p10 & m(5)) | (p01 & m(6)) | (p11 & m(7));
    (lo & !c) | (hi & c)
}

/// One scheduled word event: the absolute 64-lane value the net assumes
/// at `time_fs`.
///
/// Ordering is lexicographic on `(time_fs, seq)`; `seq` is unique per
/// transition, so this is exactly the `(time, seq)` order of the scalar
/// simulator's heap, word-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct WordEvent {
    time_fs: u64,
    /// `seq << 32 | net` — comparing the packed field compares `seq`.
    seq_net: u64,
    value: u64,
}

impl WordEvent {
    #[inline]
    fn new(time_fs: u64, seq: u32, net: u32, value: u64) -> Self {
        WordEvent {
            time_fs,
            seq_net: (u64::from(seq) << 32) | u64::from(net),
            value,
        }
    }

    #[inline]
    fn net(self) -> u32 {
        (self.seq_net & 0xffff_ffff) as u32
    }
}

/// One FIFO lane of the word-event queue: all events scheduled through
/// gates with the same propagation delay. Monotone pop times plus the
/// fixed per-lane delay keep each lane sorted purely by push order.
#[derive(Debug, Default)]
struct DelayLane {
    head: usize,
    events: Vec<WordEvent>,
}

/// Reusable lane-per-delay min-queue of [`WordEvent`]s — the word-wide
/// sibling of the batched engine's queue: `push` is an append, `pop`
/// scans the lane heads for the earliest `(time, seq)`.
///
/// The `(time, seq)` key of each lane's head event is mirrored in a
/// flat `heads` array so the pop scan touches one cache line instead of
/// dereferencing every lane's event vector.
#[derive(Debug, Default)]
struct WordQueue {
    lanes: Vec<DelayLane>,
    /// `(time_fs, seq_net)` of each lane's head, or `EMPTY_HEAD`.
    heads: Vec<(u64, u64)>,
}

/// Sentinel head key for an exhausted lane; compares greater than every
/// real key (`seq_net` never reaches `u64::MAX`).
const EMPTY_HEAD: (u64, u64) = (u64::MAX, u64::MAX);

impl WordQueue {
    fn with_lanes(lanes: usize) -> Self {
        WordQueue {
            lanes: (0..lanes).map(|_| DelayLane::default()).collect(),
            heads: vec![EMPTY_HEAD; lanes],
        }
    }

    fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.head = 0;
            lane.events.clear();
        }
        self.heads.fill(EMPTY_HEAD);
    }

    #[inline]
    fn push(&mut self, lane: usize, ev: WordEvent) {
        debug_assert!(
            self.lanes[lane]
                .events
                .last()
                .is_none_or(|&prev| (prev.time_fs, prev.seq_net) < (ev.time_fs, ev.seq_net)),
            "lane push order violated"
        );
        let l = &mut self.lanes[lane];
        if l.head == l.events.len() {
            self.heads[lane] = (ev.time_fs, ev.seq_net);
        }
        l.events.push(ev);
    }

    #[inline]
    fn pop(&mut self) -> Option<WordEvent> {
        let mut best = EMPTY_HEAD;
        let mut best_lane = usize::MAX;
        for (idx, &key) in self.heads.iter().enumerate() {
            if key < best {
                best = key;
                best_lane = idx;
            }
        }
        if best_lane == usize::MAX {
            return None;
        }
        let l = &mut self.lanes[best_lane];
        let ev = l.events[l.head];
        l.head += 1;
        self.heads[best_lane] = match l.events.get(l.head) {
            Some(next) => (next.time_fs, next.seq_net),
            None => EMPTY_HEAD,
        };
        Some(ev)
    }
}

/// Borrow of one word-transition's per-lane results over the engine's
/// scratch buffers.
///
/// Lane *l* holds exactly what [`crate::Simulator::transition`] would
/// have reported for stimulus vector *l*: the same toggle count and the
/// bit-identical f64 switching energy.
#[derive(Debug)]
pub struct BitTransitionView<'a> {
    energy_fj: &'a [f64],
    toggles: &'a [u64],
    active: usize,
}

impl BitTransitionView<'_> {
    /// Number of active lanes in this transition (1 ..= 64).
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Switching energy of stimulus vector `lane`, fJ — bit-identical
    /// to the scalar simulator's `energy_fj` for that vector.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.active()`.
    #[must_use]
    pub fn lane_energy_fj(&self, lane: usize) -> f64 {
        assert!(lane < self.active, "lane {lane} not active");
        self.energy_fj[lane]
    }

    /// Net toggles (glitches included, input edges included) of
    /// stimulus vector `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.active()`.
    #[must_use]
    pub fn lane_toggles(&self, lane: usize) -> u64 {
        assert!(lane < self.active, "lane {lane} not active");
        self.toggles[lane]
    }

    /// Sum of switching energies over the active lanes, folded in lane
    /// order — the fold `characterize_power` chains across blocks to
    /// reproduce the scalar per-sample sum exactly.
    #[must_use]
    pub fn total_energy_fj(&self) -> f64 {
        let mut total = 0.0;
        for lane in 0..self.active {
            total += self.energy_fj[lane];
        }
        total
    }

    /// Sum of toggles over the active lanes.
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.toggles[..self.active].iter().sum()
    }
}

/// Bit-parallel event-driven simulator: 64 stimulus vectors per word.
///
/// See the [module docs](self) for the lane packing, tail masking and
/// the per-lane equivalence argument. The engine reports per-lane
/// energies and toggle counts; it does not track arrival times (timing
/// characterization needs per-sample event times and stays on
/// [`crate::BatchSim`]).
///
/// # Examples
///
/// ```
/// use gatesim::{BitSim, CellLibrary, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("inv_chain");
/// let a = b.input("a");
/// let x = b.inv(a);
/// let y = b.inv(x);
/// b.output(y);
/// let nl = b.finish();
///
/// let lib = CellLibrary::nangate15_like();
/// let mut sim = BitSim::new(&nl, &lib);
/// // Two lanes: lane 0 holds the input low, lane 1 raises it.
/// sim.settle(&[0b00], 2);
/// let view = sim.transition(&[0b10]);
/// assert_eq!(view.lane_toggles(0), 0); // no edge in lane 0
/// assert_eq!(view.lane_toggles(1), 3); // input + two inverters
/// ```
#[derive(Debug)]
pub struct BitSim<'a> {
    netlist: &'a Netlist,
    /// Live (non-pruned) gates in topological order — the settle sweep.
    live_gates: Vec<GateRow>,
    /// Live-filtered fanout in compressed-sparse-row form with the gate
    /// records materialized per edge: the live gates reading net `n`
    /// are `fanout_gates[fanout_offsets[n] .. fanout_offsets[n + 1]]`.
    /// The event hot loop streams whole [`GateRow`] records from one
    /// contiguous allocation instead of chasing `GateId` indices;
    /// pruned gates are absent, so their cones are never re-evaluated.
    fanout_offsets: Vec<u32>,
    fanout_gates: Vec<GateRow>,
    /// Switching energy (fJ) charged when a net toggles: the driving
    /// gate's energy, or 0 for inputs and constants.
    net_energy_fj: Vec<f64>,
    /// Constant value words baked by the prune plan: `(net, word)`
    /// where the word is all-zeros or all-ones across every lane.
    pruned_words: Vec<(u32, u64)>,
    /// Pinned primary inputs `(port position, value)` the plan assumed;
    /// asserted against every settle/transition input block.
    pins: Vec<(u32, bool)>,
    /// Current 64-lane value word per net.
    value: Vec<u64>,
    /// 64-lane word of each net's last *scheduled* value — the
    /// push-time event filter (equal to `value` between transitions).
    sched: Vec<u64>,
    current_inputs: Vec<u64>,
    /// Active lane count of the current block (set by `settle`).
    active: usize,
    primed: bool,
    queue: WordQueue,
    /// Per-lane switching-energy accumulators for the last transition.
    lane_energy_fj: Vec<f64>,
    /// Per-lane toggle counters for the last transition.
    lane_toggles: Vec<u64>,
    /// Nets that toggled in *any* lane of *any* transition since
    /// construction — the observable behind the STA cross-check.
    net_toggled: Vec<bool>,
}

impl<'a> BitSim<'a> {
    /// Creates an engine for `netlist` with electrical data from `lib`
    /// and no pinned inputs (every gate simulated unless fed purely by
    /// constants).
    #[must_use]
    pub fn new(netlist: &'a Netlist, lib: &CellLibrary) -> Self {
        Self::with_plan(netlist, lib, &PrunePlan::unpinned(netlist, lib))
    }

    /// Creates an engine that simulates only the gates `plan` left
    /// live: gates the plan proved constant are baked as all-lane
    /// constant words at settle time and excluded from the event hot
    /// loop. Results are bit-identical to the unpruned engine for any
    /// stimulus honoring the plan's pins (asserted).
    #[must_use]
    pub fn with_plan(netlist: &'a Netlist, lib: &CellLibrary, plan: &PrunePlan) -> Self {
        let build = EngineBuild::new(netlist, lib, plan);
        let live_gates: Vec<GateRow> = build
            .live_rows
            .iter()
            .map(|&gid| build.rows[gid as usize])
            .collect();
        let fanout_gates: Vec<GateRow> = build
            .fanout_gate_ids
            .iter()
            .map(|&gid| build.rows[gid as usize])
            .collect();
        let pruned_words = build
            .pruned_values
            .iter()
            .map(|&(net, v)| (net, if v { !0u64 } else { 0 }))
            .collect();
        BitSim {
            netlist,
            live_gates,
            fanout_offsets: build.fanout_offsets,
            fanout_gates,
            net_energy_fj: build.net_energy_fj,
            pruned_words,
            pins: build.pins,
            value: vec![0; netlist.net_count()],
            sched: vec![0; netlist.net_count()],
            current_inputs: vec![0; netlist.inputs().len()],
            active: 0,
            primed: false,
            queue: WordQueue::with_lanes(build.lane_count),
            lane_energy_fj: vec![0.0; 64],
            lane_toggles: vec![0; 64],
            net_toggled: vec![false; netlist.net_count()],
        }
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Settles the circuit combinationally at a block of `active`
    /// stimulus vectors: `inputs[i]` packs input port *i* across lanes
    /// `0 .. active`; higher lanes are masked off (tail masking).
    ///
    /// One full forward sweep over the topologically ordered gates —
    /// word-wide, this settles all 64 lanes in a single linear pass.
    ///
    /// # Panics
    ///
    /// Panics if the input word count does not match the netlist's
    /// input ports or `active` is not in `1 ..= 64`.
    pub fn settle(&mut self, inputs: &[u64], active: usize) {
        assert_eq!(
            inputs.len(),
            self.current_inputs.len(),
            "input word count mismatch"
        );
        assert!(
            (1..=64).contains(&active),
            "active lanes must be in 1..=64, got {active}"
        );
        let mask = active_mask(active);
        for &(pos, v) in &self.pins {
            let w = inputs[pos as usize] & mask;
            assert_eq!(
                w,
                if v { mask } else { 0 },
                "pinned input {pos} violated in an active lane (plan pins it to {v})"
            );
        }
        self.active = active;
        for (idx, src) in self.netlist.sources().iter().enumerate() {
            match src {
                NetSource::Const0 => {
                    self.value[idx] = 0;
                    self.sched[idx] = 0;
                }
                NetSource::Const1 => {
                    self.value[idx] = !0;
                    self.sched[idx] = !0;
                }
                _ => {}
            }
        }
        // Bake the plan's proven constants: pruned gates are absent
        // from the live sweep below, so their outputs are set once here
        // and never touched again.
        for &(net, w) in &self.pruned_words {
            self.value[net as usize] = w;
            self.sched[net as usize] = w;
        }
        for (pos, &word) in inputs.iter().enumerate() {
            let net = self.netlist.inputs()[pos].index();
            let w = word & mask;
            self.value[net] = w;
            self.sched[net] = w;
            self.current_inputs[pos] = w;
        }
        for gate in &self.live_gates {
            let w = eval_lut_word(
                gate.lut,
                self.value[gate.in0 as usize],
                self.value[gate.in1 as usize],
                self.value[gate.in2 as usize],
            );
            self.value[gate.out as usize] = w;
            self.sched[gate.out as usize] = w;
        }
        self.primed = true;
    }

    /// Current value word of a net (after settle/transition).
    #[must_use]
    pub fn value(&self, net: NetId) -> u64 {
        self.value[net.index()]
    }

    /// Whether `net` has toggled in any lane of any transition since
    /// the engine was created — primary-input edges included.
    ///
    /// Static timing analysis marks nets unreachable from every primary
    /// input ([`crate::Sta::arrivals_from_inputs`] returns `None`);
    /// such nets must never flip here, and the equivalence suite
    /// cross-checks exactly that.
    #[must_use]
    pub fn net_ever_toggled(&self, net: NetId) -> bool {
        self.net_toggled[net.index()]
    }

    /// Applies a block of next-vectors at time zero and propagates all
    /// word events, accumulating per-lane toggles and energies.
    ///
    /// Ports are applied one at a time in port order (reproducing the
    /// scalar heap's zero-width input glitches lane-exactly); events
    /// carry absolute value words and pop in `(time, seq)` order. Each
    /// active lane is one simulated transition for
    /// [`crate::sim_transitions`] accounting.
    ///
    /// # Panics
    ///
    /// Panics if [`BitSim::settle`] has not been called or the input
    /// word count mismatches.
    pub fn transition(&mut self, new_inputs: &[u64]) -> BitTransitionView<'_> {
        assert!(self.primed, "call settle() before transition()");
        assert_eq!(
            new_inputs.len(),
            self.current_inputs.len(),
            "input word count mismatch"
        );
        crate::counters::record_transitions(self.active as u64);
        let mask = active_mask(self.active);
        for &(pos, v) in &self.pins {
            let w = new_inputs[pos as usize] & mask;
            assert_eq!(
                w,
                if v { mask } else { 0 },
                "pinned input {pos} violated in an active lane (plan pins it to {v})"
            );
        }
        self.lane_energy_fj.fill(0.0);
        self.lane_toggles.fill(0);
        self.queue.clear();
        let mut seq: u32 = 0;
        // Word-wide fanout re-evaluations suppressed by push-time
        // filtering; kept in a local and flushed to the registry once
        // per transition so the hot loop stays atomic-free.
        let mut filtered: u64 = 0;

        // Split borrows once so the event loop indexes plain slices.
        let BitSim {
            netlist,
            fanout_offsets,
            fanout_gates,
            net_energy_fj,
            value,
            sched,
            current_inputs,
            queue,
            lane_energy_fj,
            lane_toggles,
            net_toggled,
            ..
        } = self;

        // Primary-input edges all happen at t = 0 and pop before any
        // gate event; apply them port by port, re-evaluating fanout
        // word-wide after each port, exactly like the batched engine.
        for pos in 0..new_inputs.len() {
            let new = new_inputs[pos] & mask;
            let diff = current_inputs[pos] ^ new;
            if diff == 0 {
                continue;
            }
            let net = netlist.inputs()[pos].index();
            value[net] ^= diff;
            sched[net] ^= diff;
            current_inputs[pos] = new;
            net_toggled[net] = true;
            // Input nets have no driving gate: toggles count, energy
            // does not.
            let mut m = diff;
            while m != 0 {
                lane_toggles[m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
            let start = fanout_offsets[net] as usize;
            let end = fanout_offsets[net + 1] as usize;
            for gate in &fanout_gates[start..end] {
                let out = eval_lut_word(
                    gate.lut,
                    value[gate.in0 as usize],
                    value[gate.in1 as usize],
                    value[gate.in2 as usize],
                );
                let out_net = gate.out as usize;
                if out != sched[out_net] {
                    sched[out_net] = out;
                    queue.push(
                        gate.lane as usize,
                        WordEvent::new(u64::from(gate.delay_fs), seq, gate.out, out),
                    );
                    seq += 1;
                } else {
                    filtered += 1;
                }
            }
        }

        while let Some(ev) = queue.pop() {
            let net = ev.net() as usize;
            let toggle = value[net] ^ ev.value;
            // Push-time filtering plus per-net FIFO order guarantee
            // every popped event toggles at least one lane.
            debug_assert_ne!(toggle, 0);
            value[net] = ev.value;
            net_toggled[net] = true;
            let e = net_energy_fj[net];
            let mut m = toggle;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                lane_energy_fj[lane] += e;
                lane_toggles[lane] += 1;
                m &= m - 1;
            }
            let start = fanout_offsets[net] as usize;
            let end = fanout_offsets[net + 1] as usize;
            for gate in &fanout_gates[start..end] {
                let out = eval_lut_word(
                    gate.lut,
                    value[gate.in0 as usize],
                    value[gate.in1 as usize],
                    value[gate.in2 as usize],
                );
                let out_net = gate.out as usize;
                if out != sched[out_net] {
                    sched[out_net] = out;
                    queue.push(
                        gate.lane as usize,
                        WordEvent::new(ev.time_fs + u64::from(gate.delay_fs), seq, gate.out, out),
                    );
                    seq += 1;
                } else {
                    filtered += 1;
                }
            }
        }

        crate::counters::record_events(u64::from(seq), filtered);
        BitTransitionView {
            energy_fj: &self.lane_energy_fj,
            toggles: &self.lane_toggles,
            active: self.active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cells::CellKind;
    use crate::circuits::MacCircuit;
    use crate::sim::Simulator;

    fn xor_tree() -> Netlist {
        let mut b = NetlistBuilder::new("xt");
        let ins = b.input_bus("a", 4);
        let x1 = b.xor2(ins[0], ins[1]);
        let x2 = b.xor2(ins[2], ins[3]);
        let x3 = b.xor2(x1, x2);
        b.output(x3);
        b.finish()
    }

    /// Packs per-lane bool vectors into input words.
    fn pack(vectors: &[Vec<bool>]) -> Vec<u64> {
        let bits = vectors[0].len();
        let mut words = vec![0u64; bits];
        for (lane, v) in vectors.iter().enumerate() {
            for (i, &b) in v.iter().enumerate() {
                words[i] |= u64::from(b) << lane;
            }
        }
        words
    }

    #[test]
    fn lut_word_matches_scalar_eval_for_every_kind() {
        for &kind in CellKind::all() {
            let lut = kind.truth_table();
            // One lane per minterm: lane i applies minterm i.
            let mut a = 0u64;
            let mut b = 0u64;
            let mut c = 0u64;
            for i in 0..8u64 {
                a |= (i & 1) << i;
                b |= ((i >> 1) & 1) << i;
                c |= ((i >> 2) & 1) << i;
            }
            let out = eval_lut_word(lut, a, b, c);
            for i in 0..8u32 {
                let expected = kind.eval(i & 1 != 0, i & 2 != 0, i & 4 != 0);
                assert_eq!(out >> i & 1 == 1, expected, "{kind} minterm {i}");
            }
            // Replicating the pattern across the upper lanes must give
            // the replicated result.
            let rep = eval_lut_word(lut, a | (a << 8), b | (b << 8), c | (c << 8));
            assert_eq!(rep & 0xff, out & 0xff);
            assert_eq!((rep >> 8) & 0xff, out & 0xff);
        }
    }

    #[test]
    fn active_mask_covers_full_range() {
        assert_eq!(active_mask(1), 1);
        assert_eq!(active_mask(6), 0x3f);
        assert_eq!(active_mask(64), !0);
    }

    #[test]
    fn lanes_match_scalar_on_xor_tree() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut scalar = Simulator::new(&nl, &lib);
        let mut bits = BitSim::new(&nl, &lib);

        // All 16 -> all 16 input vectors as one 16-lane block each way.
        let vecs: Vec<Vec<bool>> = (0..16u8)
            .map(|v| vec![v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0])
            .collect();
        for shift in 1..16usize {
            let to: Vec<Vec<bool>> = (0..16).map(|i| vecs[(i + shift) % 16].clone()).collect();
            bits.settle(&pack(&vecs), 16);
            let view = bits.transition(&pack(&to));
            for lane in 0..16 {
                scalar.settle(&vecs[lane]);
                let stats = scalar.transition(&to[lane]);
                assert_eq!(
                    stats.toggles,
                    view.lane_toggles(lane),
                    "toggles lane {lane}"
                );
                assert_eq!(
                    stats.energy_fj,
                    view.lane_energy_fj(lane),
                    "energy lane {lane}"
                );
            }
        }
    }

    #[test]
    fn inactive_tail_lanes_never_toggle() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let mut bits = BitSim::new(mac.netlist(), &lib);
        let from: Vec<Vec<bool>> = (0..5).map(|i| mac.encode(i - 2, 3, 7)).collect();
        let to: Vec<Vec<bool>> = (0..5).map(|i| mac.encode(i - 2, 12, -5)).collect();
        // Garbage in the unpacked upper lanes must be ignored.
        let mut from_w = pack(&from);
        let mut to_w = pack(&to);
        for w in from_w.iter_mut().chain(to_w.iter_mut()) {
            *w |= 0xdead_beef_0000_0000;
        }
        bits.settle(&from_w, 5);
        let view = bits.transition(&to_w);
        assert_eq!(view.active(), 5);
        assert_eq!(
            view.toggles[5..].iter().sum::<u64>(),
            0,
            "inactive lanes toggled"
        );
        assert_eq!(view.energy_fj[5..].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn transition_counter_counts_per_vector() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut bits = BitSim::new(&nl, &lib);
        let before = crate::counters::sim_transitions();
        bits.settle(&[0, 0, 0, 0], 17);
        let _ = bits.transition(&[0x1ffff, 0, 0, 0]);
        assert!(crate::counters::sim_transitions() >= before + 17);
    }

    #[test]
    fn constant_cone_never_toggles() {
        let mut b = NetlistBuilder::new("const_cone");
        let a = b.input("a");
        let c0 = b.const0();
        let c1 = b.const1();
        let dead = b.and2(c0, c1); // fed only by constants
        let dead2 = b.inv(dead);
        let live = b.xor2(a, c1);
        b.output(dead2);
        b.output(live);
        let nl = b.finish();
        let lib = CellLibrary::nangate15_like();
        let mut bits = BitSim::new(&nl, &lib);
        bits.settle(&[0b0101], 4);
        let _ = bits.transition(&[0b1010]);
        let _ = bits.transition(&[0b0001]);
        assert!(bits.net_ever_toggled(live));
        assert!(!bits.net_ever_toggled(dead));
        assert!(!bits.net_ever_toggled(dead2));
        assert!(!bits.net_ever_toggled(c0));
        assert!(!bits.net_ever_toggled(c1));
    }

    #[test]
    #[should_panic(expected = "settle")]
    fn transition_requires_settle() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut bits = BitSim::new(&nl, &lib);
        let _ = bits.transition(&[1, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "active lanes")]
    fn settle_rejects_zero_lanes() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut bits = BitSim::new(&nl, &lib);
        bits.settle(&[0, 0, 0, 0], 0);
    }
}
