//! Combinational netlist representation.
//!
//! A [`Netlist`] is a DAG of [`Gate`]s over numbered nets. Gates are
//! stored in topological order by construction (the builder only lets a
//! gate reference nets that already exist), which makes combinational
//! evaluation, event-driven simulation and static timing analysis simple
//! linear passes.

use crate::cells::{CellKind, CellLibrary};
use std::fmt;

/// Identifier of a net (a wire) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate instance in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The raw index of this gate.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One gate instance: a cell kind, up to three input nets and one output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// The standard cell implementing this gate.
    pub kind: CellKind,
    /// Input nets; only the first [`CellKind::arity`] entries are used,
    /// the rest alias the first input.
    pub inputs: [NetId; 3],
    /// Output net, driven exclusively by this gate.
    pub output: NetId,
}

impl Gate {
    /// The input nets actually read by this gate.
    #[must_use]
    pub fn active_inputs(&self) -> &[NetId] {
        &self.inputs[..self.kind.arity()]
    }
}

/// How a net originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSource {
    /// Primary input; its value is supplied by the testbench.
    Input,
    /// Tied to constant logic 0.
    Const0,
    /// Tied to constant logic 1.
    Const1,
    /// Driven by the gate with this id.
    Gate(GateId),
}

/// A topologically ordered combinational netlist.
///
/// Create one through [`crate::NetlistBuilder`] or the circuit generators
/// in [`crate::circuits`].
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) gates: Vec<Gate>,
    pub(crate) sources: Vec<NetSource>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<NetId>,
    /// Fanout in compressed-sparse-row form: the gates reading net `n`
    /// are `fanout_edges[fanout_offsets[n] .. fanout_offsets[n + 1]]`.
    /// One contiguous allocation instead of a `Vec<GateId>` per net
    /// keeps the event-propagation hot loop on one cache stream.
    pub(crate) fanout_offsets: Vec<u32>,
    pub(crate) fanout_edges: Vec<GateId>,
    pub(crate) name: String,
}

impl Netlist {
    /// Human-readable netlist name (e.g. `"bw_mult_8x9"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates, in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary input nets, in port order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in port order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Total number of nets (inputs, constants and gate outputs).
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.sources.len()
    }

    /// Total number of gate instances.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// All net ids, `0 .. net_count()` — inputs, constants and gate
    /// outputs alike. Handy for exhaustive per-net property checks
    /// (external code cannot construct a [`NetId`] directly).
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.net_count() as u32).map(NetId)
    }

    /// Source of a net.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to this netlist.
    #[must_use]
    pub fn source(&self, net: NetId) -> NetSource {
        self.sources[net.index()]
    }

    /// Sources of all nets, indexed by net id.
    #[must_use]
    pub fn sources(&self) -> &[NetSource] {
        &self.sources
    }

    /// Gates that read `net`.
    #[must_use]
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        let start = self.fanout_offsets[net.index()] as usize;
        let end = self.fanout_offsets[net.index() + 1] as usize;
        &self.fanout_edges[start..end]
    }

    /// Total number of net → gate fanout edges.
    #[must_use]
    pub fn fanout_edge_count(&self) -> usize {
        self.fanout_edges.len()
    }

    /// Number of instances of each cell kind, in [`CellKind::all`] order.
    #[must_use]
    pub fn cell_histogram(&self) -> Vec<(CellKind, usize)> {
        CellKind::all()
            .iter()
            .map(|&kind| (kind, self.gates.iter().filter(|g| g.kind == kind).count()))
            .collect()
    }

    /// Total static leakage of the netlist under `lib`, in nanowatts.
    #[must_use]
    pub fn leakage_nw(&self, lib: &CellLibrary) -> f64 {
        self.gates
            .iter()
            .map(|g| lib.params(g.kind).leakage_nw)
            .sum()
    }

    /// A stable 128-bit digest of the netlist *structure*: a
    /// deterministic walk over net sources, gates (cell kind plus
    /// active input/output net ids) and the primary input/output port
    /// lists. Two netlists built the same way digest identically;
    /// changing a single gate, connection or port changes the digest.
    ///
    /// The human-readable [`Netlist::name`] is deliberately excluded —
    /// the digest commits to what the circuit *is*, not what it is
    /// called — so renaming a generator cannot fork the artifact cache,
    /// and two structurally identical circuits share cached
    /// characterizations. Gates are hashed in their (canonical,
    /// builder-assigned) topological order.
    #[must_use]
    pub fn structural_digest(&self) -> charstore::Digest128 {
        let mut h = charstore::Hasher128::new("gatesim.netlist.v1");
        h.write_usize(self.sources.len());
        for src in &self.sources {
            h.write_u8(match src {
                NetSource::Input => 0,
                NetSource::Const0 => 1,
                NetSource::Const1 => 2,
                NetSource::Gate(_) => 3,
            });
            // The driving gate id is implied by gate order; hashing the
            // tag alone keeps source and gate walks independent.
        }
        h.write_usize(self.gates.len());
        for gate in &self.gates {
            h.write_u8(gate.kind as u8);
            for net in gate.active_inputs() {
                h.write_u32(net.0);
            }
            h.write_u32(gate.output.0);
        }
        h.write_usize(self.inputs.len());
        for net in &self.inputs {
            h.write_u32(net.0);
        }
        h.write_usize(self.outputs.len());
        for net in &self.outputs {
            h.write_u32(net.0);
        }
        h.finalize()
    }

    /// Evaluates the netlist combinationally for the given input values.
    ///
    /// Returns the value of every net. This is the zero-delay functional
    /// model; use [`crate::Simulator`] for timed simulation.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    #[must_use]
    pub fn evaluate(&self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "input vector length mismatch"
        );
        let mut values = vec![false; self.net_count()];
        for (net, &v) in self.inputs.iter().zip(input_values) {
            values[net.index()] = v;
        }
        for (idx, src) in self.sources.iter().enumerate() {
            match src {
                NetSource::Const0 => values[idx] = false,
                NetSource::Const1 => values[idx] = true,
                _ => {}
            }
        }
        for gate in &self.gates {
            let a = values[gate.inputs[0].index()];
            let b = values[gate.inputs[1].index()];
            let c = values[gate.inputs[2].index()];
            values[gate.output.index()] = gate.kind.eval(a, b, c);
        }
        values
    }

    /// Evaluates the netlist and returns only the primary output values.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of primary
    /// inputs.
    #[must_use]
    pub fn evaluate_outputs(&self, input_values: &[bool]) -> Vec<bool> {
        let values = self.evaluate(input_values);
        self.outputs.iter().map(|n| values[n.index()]).collect()
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist `{}`: {} gates, {} nets, {} inputs, {} outputs",
            self.name,
            self.gate_count(),
            self.net_count(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

/// Packs an integer into a little-endian bit vector of the given width.
///
/// The value is truncated to `width` bits (two's complement semantics for
/// negative values).
///
/// # Examples
///
/// ```
/// use gatesim::netlist::to_bits;
///
/// assert_eq!(to_bits(5, 4), vec![true, false, true, false]);
/// assert_eq!(to_bits(-1, 3), vec![true, true, true]);
/// ```
#[must_use]
pub fn to_bits(value: i64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Appends the little-endian bits of `value` to `out` — the
/// allocation-free companion of [`to_bits`] used by the batched
/// simulation hot paths.
pub fn to_bits_into(value: i64, width: usize, out: &mut Vec<bool>) {
    out.extend((0..width).map(|i| (value >> i) & 1 == 1));
}

/// Interprets a little-endian bit slice as an unsigned integer.
///
/// # Examples
///
/// ```
/// use gatesim::netlist::{from_bits_unsigned, to_bits};
///
/// assert_eq!(from_bits_unsigned(&to_bits(200, 8)), 200);
/// ```
#[must_use]
pub fn from_bits_unsigned(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Interprets a little-endian bit slice as a two's complement integer.
///
/// # Examples
///
/// ```
/// use gatesim::netlist::{from_bits_signed, to_bits};
///
/// assert_eq!(from_bits_signed(&to_bits(-105, 8)), -105);
/// ```
#[must_use]
pub fn from_bits_signed(bits: &[bool]) -> i64 {
    let raw = from_bits_unsigned(bits);
    let width = bits.len();
    if width == 0 || width >= 64 {
        return raw as i64;
    }
    let sign = 1u64 << (width - 1);
    if raw & sign != 0 {
        (raw as i64) - (1i64 << width)
    } else {
        raw as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;

    fn tiny_netlist() -> Netlist {
        // out = (a NAND b) XOR c
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let n = b.nand2(a, bb);
        let o = b.xor2(n, c);
        b.output(o);
        b.finish()
    }

    #[test]
    fn evaluate_matches_boolean_function() {
        let nl = tiny_netlist();
        for bits in 0..8u8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let out = nl.evaluate_outputs(&[a, b, c]);
            assert_eq!(out, vec![!(a && b) ^ c]);
        }
    }

    #[test]
    fn display_reports_counts() {
        let nl = tiny_netlist();
        let text = nl.to_string();
        assert!(text.contains("tiny"));
        assert!(text.contains("2 gates"));
    }

    #[test]
    fn cell_histogram_counts_gates() {
        let nl = tiny_netlist();
        let hist = nl.cell_histogram();
        let nand = hist.iter().find(|(k, _)| *k == CellKind::Nand2).unwrap();
        assert_eq!(nand.1, 1);
    }

    #[test]
    fn leakage_is_additive() {
        let nl = tiny_netlist();
        let lib = CellLibrary::uniform(1.0, 1.0, 3.0);
        assert!((nl.leakage_nw(&lib) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn bit_round_trips() {
        for v in -128..=127i64 {
            assert_eq!(from_bits_signed(&to_bits(v, 8)), v);
        }
        for v in 0..=255i64 {
            assert_eq!(from_bits_unsigned(&to_bits(v, 8)) as i64, v);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn evaluate_rejects_bad_input_length() {
        let nl = tiny_netlist();
        let _ = nl.evaluate(&[true]);
    }

    #[test]
    fn structural_digest_is_stable_across_builds() {
        assert_eq!(
            tiny_netlist().structural_digest(),
            tiny_netlist().structural_digest()
        );
    }

    #[test]
    fn structural_digest_ignores_the_name() {
        let mut b = NetlistBuilder::new("other-name");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let n = b.nand2(a, bb);
        let o = b.xor2(n, c);
        b.output(o);
        assert_eq!(
            b.finish().structural_digest(),
            tiny_netlist().structural_digest()
        );
    }

    #[test]
    fn structural_digest_sees_one_changed_gate() {
        // Same shape as tiny_netlist but with NOR2 in place of NAND2.
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let n = b.nor2(a, bb);
        let o = b.xor2(n, c);
        b.output(o);
        assert_ne!(
            b.finish().structural_digest(),
            tiny_netlist().structural_digest()
        );
    }

    #[test]
    fn structural_digest_sees_rewired_inputs() {
        // Same gates, same kinds, swapped operand order on the XOR.
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let n = b.nand2(a, bb);
        let o = b.xor2(c, n);
        b.output(o);
        assert_ne!(
            b.finish().structural_digest(),
            tiny_netlist().structural_digest()
        );
    }
}
