//! STA arrival intervals and provable cone pruning.
//!
//! This module is the shared *build layer* behind all three simulation
//! engines. Given a netlist and an optional set of **pinned** primary
//! inputs (inputs a characterization sweep holds at a known constant —
//! e.g. the weight bus while sweeping activations), it computes, in one
//! topological pass:
//!
//! * **Constant propagation**: the exact set of nets whose value is
//!   implied by the constants and pins. A gate output is proven constant
//!   by enumerating the 8 truth-table minterms consistent with the known
//!   input values; if every consistent minterm yields the same output
//!   bit, the gate can *never* toggle under any stimulus that respects
//!   the pins. Such gates are **pruned**: the engines bake their output
//!   value at settle time and never schedule events through them, so a
//!   restricted sweep simulates only its live cone while staying exactly
//!   bit-identical (a pruned gate's events in the unpruned engines are
//!   always filtered — they re-apply the current value — and therefore
//!   contribute zero toggles and zero energy).
//! * **Arrival intervals**: a closed `[min, max]` static-timing window
//!   per live net in the filament-style `max`/`+` (and `min`/`+`)
//!   algebra — a live gate's output interval is
//!   `[min over live inputs (lo + d), max over live inputs (hi + d)]`,
//!   free inputs start at `[0, 0]`, and pinned/constant/pruned nets have
//!   no interval at all. Every toggle the event-driven engines produce
//!   at time *t* satisfies `lo ≤ t ≤ hi` for its net — a standing
//!   property the equivalence suite checks on every run.
//!
//! Interval arithmetic is integer femtoseconds with the same rounding
//! as the engines' event times ([`crate::sim`]'s `FS_PER_PS`), so the
//! containment property is exact, not tolerance-based.
//!
//! The pass itself is cheap (linear in gates); its cost and yield are
//! exported as `gatesim_prune_plan_seconds` / `gatesim_gates_pruned_total`
//! through [`crate::counters`].

use std::time::Instant;

use crate::cells::CellLibrary;
use crate::netlist::{GateId, NetId, NetSource, Netlist};
use crate::sim::FS_PER_PS;

/// Closed `[min, max]` STA arrival window of one net, in integer
/// femtoseconds (the engines' event-time unit).
///
/// `lo` is the earliest time any toggle of the net can arrive (shortest
/// structural path from any free input), `hi` the latest (longest
/// path). A net with no interval (see [`PrunePlan::interval`]) is
/// proven silent and can never toggle at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetInterval {
    lo_fs: u64,
    hi_fs: u64,
}

impl NetInterval {
    /// Earliest possible toggle arrival, femtoseconds.
    #[must_use]
    pub fn lo_fs(self) -> u64 {
        self.lo_fs
    }

    /// Latest possible toggle arrival, femtoseconds.
    #[must_use]
    pub fn hi_fs(self) -> u64 {
        self.hi_fs
    }

    /// Earliest possible toggle arrival, picoseconds.
    #[must_use]
    pub fn lo_ps(self) -> f64 {
        self.lo_fs as f64 / FS_PER_PS
    }

    /// Latest possible toggle arrival, picoseconds.
    #[must_use]
    pub fn hi_ps(self) -> f64 {
        self.hi_fs as f64 / FS_PER_PS
    }

    /// Whether an arrival in picoseconds falls inside the window.
    ///
    /// Exact for times produced by the engines: they divide the same
    /// integer-femtosecond values by the same constant, and f64 division
    /// by a positive constant is monotone.
    #[must_use]
    pub fn contains_ps(self, t_ps: f64) -> bool {
        self.lo_ps() <= t_ps && t_ps <= self.hi_ps()
    }
}

/// The result of one structural pruning pass: constant-propagated net
/// values, the provably-silent gate set and per-net arrival intervals.
///
/// Produced once per (netlist, library, pins) by [`PrunePlan::new`] and
/// consumed by every engine's `with_plan` constructor
/// ([`crate::Simulator::with_plan`], [`crate::BatchSim::with_plan`],
/// [`crate::BitSim::with_plan`]). The engines assert on every
/// settle/transition that the pinned inputs actually hold their pinned
/// values — the plan's proofs are conditional on exactly that.
///
/// # Examples
///
/// ```
/// use gatesim::{CellLibrary, NetlistBuilder, PrunePlan};
///
/// let mut b = NetlistBuilder::new("gated");
/// let en = b.input("en");
/// let d = b.input("d");
/// let g = b.and2(en, d);
/// b.output(g);
/// let nl = b.finish();
///
/// // Pin the enable low: the AND can never toggle.
/// let plan = PrunePlan::new(&nl, &CellLibrary::nangate15_like(), &[Some(false), None]);
/// assert_eq!(plan.pruned_gate_count(), 1);
/// assert_eq!(plan.const_value(g), Some(false));
/// assert!(plan.interval(g).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct PrunePlan {
    /// Per-net proven-constant value (`None` = can vary).
    const_value: Vec<Option<bool>>,
    /// Per-net arrival interval (`None` = proven silent).
    interval: Vec<Option<NetInterval>>,
    /// Per-gate liveness; a dead gate's output is in `const_value`.
    gate_live: Vec<bool>,
    /// The pinned-input mask this plan was built for, in port order.
    pins: Vec<Option<bool>>,
    pruned_gates: usize,
}

impl PrunePlan {
    /// Runs the pruning pass for `netlist` under `lib` with the given
    /// pinned-input mask (`pins[i]` pins input port *i*; `None` leaves
    /// it free).
    ///
    /// # Panics
    ///
    /// Panics if `pins.len()` differs from the netlist's input count.
    #[must_use]
    pub fn new(netlist: &Netlist, lib: &CellLibrary, pins: &[Option<bool>]) -> Self {
        let start = Instant::now();
        assert_eq!(
            pins.len(),
            netlist.inputs().len(),
            "pin mask length mismatch"
        );
        let nets = netlist.net_count();
        let mut const_value: Vec<Option<bool>> = vec![None; nets];
        let mut interval: Vec<Option<NetInterval>> = vec![None; nets];
        for (idx, src) in netlist.sources().iter().enumerate() {
            match src {
                NetSource::Const0 => const_value[idx] = Some(false),
                NetSource::Const1 => const_value[idx] = Some(true),
                _ => {}
            }
        }
        for (pos, &net) in netlist.inputs().iter().enumerate() {
            match pins[pos] {
                Some(v) => const_value[net.index()] = Some(v),
                None => interval[net.index()] = Some(NetInterval { lo_fs: 0, hi_fs: 0 }),
            }
        }
        let mut gate_live = vec![false; netlist.gate_count()];
        let mut pruned_gates = 0usize;
        // Gates are topologically ordered, so one forward pass settles
        // both lattices (constants strengthen monotonically, intervals
        // only read already-finalized inputs).
        for (gid, gate) in netlist.gates().iter().enumerate() {
            let known = [
                const_value[gate.inputs[0].index()],
                const_value[gate.inputs[1].index()],
                const_value[gate.inputs[2].index()],
            ];
            let lut = gate.kind.truth_table();
            // Output values reachable over the minterms consistent with
            // the known input values. (Minterms that are unreachable for
            // other reasons — e.g. aliased unused input slots taking
            // different values — only make the proof conservative, never
            // unsound.)
            let mut can = [false; 2];
            for m in 0..8u8 {
                let consistent = (0..3).all(|i| known[i].is_none_or(|v| ((m >> i) & 1 == 1) == v));
                if consistent {
                    can[usize::from(lut >> m & 1)] = true;
                }
            }
            let out = gate.output.index();
            if can[0] != can[1] {
                // Every consistent minterm agrees: the output is a
                // constant and the gate can never toggle.
                const_value[out] = Some(can[1]);
                pruned_gates += 1;
            } else {
                gate_live[gid] = true;
                let delay_fs = (lib.params(gate.kind).delay_ps * FS_PER_PS).round() as u64;
                let mut lo = u64::MAX;
                let mut hi = 0u64;
                for &input in gate.active_inputs() {
                    if let Some(iv) = interval[input.index()] {
                        lo = lo.min(iv.lo_fs + delay_fs);
                        hi = hi.max(iv.hi_fs + delay_fs);
                    }
                }
                // A live gate always has at least one live input: were
                // every input known, exactly one minterm would be
                // consistent and the output would have been constant.
                debug_assert!(lo <= hi, "live gate {gid} has no live input");
                interval[out] = Some(NetInterval {
                    lo_fs: lo,
                    hi_fs: hi,
                });
            }
        }
        let plan = PrunePlan {
            const_value,
            interval,
            gate_live,
            pins: pins.to_vec(),
            pruned_gates,
        };
        crate::counters::record_prune_plan(pruned_gates as u64, start.elapsed().as_secs_f64());
        plan
    }

    /// The pruning pass with no pinned inputs: only constant-fed cones
    /// are pruned. This is what every engine's plain `new` uses, so the
    /// interval property net covers unrestricted simulation too.
    #[must_use]
    pub fn unpinned(netlist: &Netlist, lib: &CellLibrary) -> Self {
        let pins: Vec<Option<bool>> = vec![None; netlist.inputs().len()];
        Self::new(netlist, lib, &pins)
    }

    /// The net's STA arrival interval, or `None` if the net is proven
    /// silent (constant, pinned or pruned).
    #[must_use]
    pub fn interval(&self, net: NetId) -> Option<NetInterval> {
        self.interval[net.index()]
    }

    /// The net's proven-constant value, or `None` if it can vary.
    #[must_use]
    pub fn const_value(&self, net: NetId) -> Option<bool> {
        self.const_value[net.index()]
    }

    /// Whether the gate survived pruning (can toggle its output).
    #[must_use]
    pub fn is_gate_live(&self, gate: GateId) -> bool {
        self.gate_live[gate.index()]
    }

    /// Number of gates proven silent and excluded from simulation.
    #[must_use]
    pub fn pruned_gate_count(&self) -> usize {
        self.pruned_gates
    }

    /// Number of gates that remain simulated.
    #[must_use]
    pub fn live_gate_count(&self) -> usize {
        self.gate_live.len() - self.pruned_gates
    }

    /// The pinned-input mask this plan was built for, in port order.
    #[must_use]
    pub fn pins(&self) -> &[Option<bool>] {
        &self.pins
    }
}

/// Flattened per-gate record shared by all three engines: inputs,
/// output, delay, truth table and event-queue lane in one 24-byte row
/// so every hot loop streams a single cache line per gate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GateRow {
    pub(crate) in0: u32,
    pub(crate) in1: u32,
    pub(crate) in2: u32,
    pub(crate) out: u32,
    pub(crate) delay_fs: u32,
    /// Truth table over `a | b << 1 | c << 2`.
    pub(crate) lut: u8,
    /// Event-queue lane index for this gate's delay (live gates only).
    pub(crate) lane: u8,
}

/// Everything an engine constructor derives from (netlist, library,
/// plan): gate rows, the live gate order, baked constants, pin
/// assertions, the live-filtered fanout CSR and per-net energies.
///
/// Built identically by `Simulator`, `BatchSim` and `BitSim`, so the
/// three engines cannot drift in how they compile a netlist.
#[derive(Debug)]
pub(crate) struct EngineBuild {
    /// One row per gate, indexed by `GateId` (`lane` is only meaningful
    /// for live gates).
    pub(crate) rows: Vec<GateRow>,
    /// Live gate ids in topological order — the settle sweep.
    pub(crate) live_rows: Vec<u32>,
    /// Gate-output nets proven constant, with their values.
    pub(crate) pruned_values: Vec<(u32, bool)>,
    /// `(input port position, pinned value)` assertions.
    pub(crate) pins: Vec<(u32, bool)>,
    /// Live-filtered fanout CSR: the live gates reading net `n` are
    /// `fanout_gate_ids[fanout_offsets[n] .. fanout_offsets[n + 1]]`.
    pub(crate) fanout_offsets: Vec<u32>,
    pub(crate) fanout_gate_ids: Vec<u32>,
    /// Switching energy (fJ) charged when a net toggles: the driving
    /// gate's energy, or 0 for inputs and constants.
    pub(crate) net_energy_fj: Vec<f64>,
    /// Number of distinct live-gate delays (event-queue lanes).
    pub(crate) lane_count: usize,
}

impl EngineBuild {
    pub(crate) fn new(netlist: &Netlist, lib: &CellLibrary, plan: &PrunePlan) -> Self {
        assert_eq!(
            plan.gate_live.len(),
            netlist.gate_count(),
            "prune plan was built for a different netlist"
        );
        assert_eq!(
            plan.const_value.len(),
            netlist.net_count(),
            "prune plan was built for a different netlist"
        );
        let mut rows: Vec<GateRow> = netlist
            .gates()
            .iter()
            .map(|g| GateRow {
                in0: g.inputs[0].0,
                in1: g.inputs[1].0,
                in2: g.inputs[2].0,
                out: g.output.0,
                delay_fs: (lib.params(g.kind).delay_ps * FS_PER_PS).round() as u32,
                lut: g.kind.truth_table(),
                lane: 0,
            })
            .collect();
        // Queue lanes are deduplicated over *live* gates only, so a
        // pruned cone full of exotic delays costs no pop-scan width.
        let mut delays: Vec<u32> = Vec::new();
        let mut live_rows = Vec::with_capacity(plan.live_gate_count());
        for (gid, row) in rows.iter_mut().enumerate() {
            if !plan.gate_live[gid] {
                continue;
            }
            let lane = delays
                .iter()
                .position(|&d| d == row.delay_fs)
                .unwrap_or_else(|| {
                    delays.push(row.delay_fs);
                    delays.len() - 1
                });
            row.lane = u8::try_from(lane).expect("more than 255 distinct gate delays");
            live_rows.push(gid as u32);
        }
        let mut pruned_values = Vec::with_capacity(plan.pruned_gates);
        for (gid, gate) in netlist.gates().iter().enumerate() {
            if !plan.gate_live[gid] {
                let v = plan.const_value[gate.output.index()]
                    .expect("pruned gate output must be constant");
                pruned_values.push((gate.output.0, v));
            }
        }
        let pins = plan
            .pins
            .iter()
            .enumerate()
            .filter_map(|(pos, &p)| p.map(|v| (pos as u32, v)))
            .collect();
        let mut net_energy_fj = vec![0.0f64; netlist.net_count()];
        for gate in netlist.gates() {
            net_energy_fj[gate.output.index()] = lib.params(gate.kind).energy_fj;
        }
        let mut fanout_offsets = Vec::with_capacity(netlist.net_count() + 1);
        let mut fanout_gate_ids = Vec::with_capacity(netlist.fanout_edge_count());
        fanout_offsets.push(0);
        for net in 0..netlist.net_count() {
            for gid in netlist.fanout(NetId(net as u32)) {
                if plan.gate_live[gid.index()] {
                    fanout_gate_ids.push(gid.0);
                }
            }
            fanout_offsets.push(fanout_gate_ids.len() as u32);
        }
        EngineBuild {
            rows,
            live_rows,
            pruned_values,
            pins,
            fanout_offsets,
            fanout_gate_ids,
            net_energy_fj,
            lane_count: delays.len(),
        }
    }

    /// The live fanout of a net, as gate ids.
    #[inline]
    pub(crate) fn fanout(&self, net: usize) -> &[u32] {
        let start = self.fanout_offsets[net] as usize;
        let end = self.fanout_offsets[net + 1] as usize;
        &self.fanout_gate_ids[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::circuits::MacCircuit;

    fn lib() -> CellLibrary {
        CellLibrary::nangate15_like()
    }

    #[test]
    fn free_inputs_have_zero_intervals() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.inv(a);
        b.output(x);
        let nl = b.finish();
        let plan = PrunePlan::unpinned(&nl, &lib());
        let iv = plan.interval(a).expect("free input has an interval");
        assert_eq!((iv.lo_fs(), iv.hi_fs()), (0, 0));
        assert_eq!(plan.pruned_gate_count(), 0);
    }

    #[test]
    fn interval_algebra_is_min_max_plus() {
        // a -> inv -> inv -> y, plus a direct xor(a, y): the xor's
        // window spans [d_xor, 2*d_inv + d_xor].
        let l = CellLibrary::uniform(3.0, 0.0, 0.0);
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.inv(a);
        let y = b.inv(x);
        let z = b.xor2(a, y);
        b.output(z);
        let nl = b.finish();
        let plan = PrunePlan::unpinned(&nl, &l);
        let iv = plan.interval(z).expect("live net");
        assert_eq!(iv.lo_fs(), 3_000);
        assert_eq!(iv.hi_fs(), 9_000);
        assert!((iv.lo_ps() - 3.0).abs() < 1e-12);
        assert!((iv.hi_ps() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn constant_fed_cone_is_pruned_without_pins() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let c1 = b.const1();
        let dead = b.xor2(c1, c1); // always 0
        let dead2 = b.inv(dead); // always 1
        let live = b.and2(a, dead2); // follows a
        b.output(live);
        let nl = b.finish();
        let plan = PrunePlan::unpinned(&nl, &lib());
        assert_eq!(plan.const_value(dead), Some(false));
        assert_eq!(plan.const_value(dead2), Some(true));
        assert!(plan.interval(dead).is_none());
        assert_eq!(plan.pruned_gate_count(), 2);
        assert!(plan.interval(live).is_some());
        assert_eq!(plan.const_value(live), None);
    }

    #[test]
    fn pinned_input_prunes_its_cone() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input("en");
        let d = b.input("d");
        let g = b.and2(en, d);
        let o = b.or2(g, d);
        b.output(o);
        let nl = b.finish();
        // en = 0 kills the AND; the OR then follows d alone but stays
        // live.
        let plan = PrunePlan::new(&nl, &lib(), &[Some(false), None]);
        assert_eq!(plan.const_value(g), Some(false));
        assert!(!plan.is_gate_live(GateId(0)));
        assert!(plan.is_gate_live(GateId(1)));
        assert_eq!(plan.pruned_gate_count(), 1);
        assert_eq!(plan.live_gate_count(), 1);
    }

    #[test]
    fn fully_pinned_netlist_prunes_everything() {
        let mac = MacCircuit::new(4, 4, 10);
        let nl = mac.netlist();
        let pins: Vec<Option<bool>> = nl.inputs().iter().map(|_| Some(false)).collect();
        let plan = PrunePlan::new(nl, &lib(), &pins);
        assert_eq!(plan.pruned_gate_count(), nl.gate_count());
        assert_eq!(plan.live_gate_count(), 0);
        for net in nl.net_ids() {
            assert!(plan.interval(net).is_none(), "net {net} still live");
            assert!(plan.const_value(net).is_some(), "net {net} not constant");
        }
    }

    #[test]
    fn mux_with_pinned_select_prunes_dead_leg_fanin_dependence() {
        // sel pinned to 0: the mux output follows `a` only; it stays
        // live (a is free) but `b`'s inverter feeding the dead leg is
        // *not* prunable (its output still varies) — only gates whose
        // output is provably constant are pruned.
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let bb = b.input("b");
        let sel = b.input("sel");
        let nb = b.inv(bb);
        let m = b.mux2(a, nb, sel);
        b.output(m);
        let nl = b.finish();
        let plan = PrunePlan::new(&nl, &lib(), &[None, None, Some(false)]);
        assert_eq!(plan.const_value(m), None);
        assert!(plan.interval(m).is_some());
        assert!(plan.interval(nb).is_some());
        assert_eq!(plan.pruned_gate_count(), 0);
    }

    #[test]
    fn unpinned_mac_plan_keeps_input_fanin_live() {
        let mac = MacCircuit::new(4, 4, 10);
        let nl = mac.netlist();
        let plan = PrunePlan::unpinned(nl, &lib());
        // Every primary output must still be reachable: the MAC's
        // outputs depend on its inputs.
        for &out in nl.outputs() {
            assert!(
                plan.interval(out).is_some(),
                "output {out} pruned by an unpinned plan"
            );
        }
    }

    #[test]
    fn engine_build_filters_fanout_to_live_gates() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input("en");
        let d = b.input("d");
        let g = b.and2(en, d); // pruned under en=0
        let o = b.xor2(d, g);
        b.output(o);
        let nl = b.finish();
        let plan = PrunePlan::new(&nl, &lib(), &[Some(false), None]);
        let build = EngineBuild::new(&nl, &lib(), &plan);
        assert_eq!(build.live_rows, vec![1]);
        assert_eq!(build.pruned_values, vec![(g.0, false)]);
        assert_eq!(build.pins, vec![(0, false)]);
        // d's fanout keeps only the xor; the pruned AND is gone.
        assert_eq!(build.fanout(d.index()), &[1]);
        assert_eq!(build.fanout(en.index()), &[0u32; 0]);
    }

    #[test]
    #[should_panic(expected = "pin mask length mismatch")]
    fn pin_mask_length_is_checked() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.inv(a);
        b.output(x);
        let nl = b.finish();
        let _ = PrunePlan::new(&nl, &lib(), &[None, None]);
    }
}
