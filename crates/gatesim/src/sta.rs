//! Static timing analysis.
//!
//! Longest-structural-path analysis over the topologically ordered
//! netlist. Used for the accumulator adder of the MAC unit (the paper
//! runs Design Compiler's STA on the adder because enumerating its input
//! transitions is infeasible) and as a conservative bound checked against
//! dynamic simulation.

use crate::cells::CellLibrary;
use crate::netlist::{NetId, NetSource, Netlist};

/// Static timing analyzer over a borrowed netlist.
///
/// # Examples
///
/// ```
/// use gatesim::circuits::{AdderCircuit, AdderKind};
/// use gatesim::{CellLibrary, Sta};
///
/// let adder = AdderCircuit::new(AdderKind::Ripple, 8);
/// let lib = CellLibrary::nangate15_like();
/// let sta = Sta::new(adder.netlist(), &lib);
/// assert!(sta.critical_path_ps() > 0.0);
/// ```
#[derive(Debug)]
pub struct Sta<'a> {
    netlist: &'a Netlist,
    /// Per-gate delay in ps.
    gate_delay_ps: Vec<f64>,
}

impl<'a> Sta<'a> {
    /// Creates an analyzer for `netlist` under `lib`.
    #[must_use]
    pub fn new(netlist: &'a Netlist, lib: &CellLibrary) -> Self {
        let gate_delay_ps = netlist
            .gates()
            .iter()
            .map(|g| lib.params(g.kind).delay_ps)
            .collect();
        Sta {
            netlist,
            gate_delay_ps,
        }
    }

    /// Longest path (ps) from *any* primary input to each net.
    ///
    /// `None` for nets unreachable from any input (e.g. constants and
    /// logic fed only by constants).
    #[must_use]
    pub fn arrivals_from_inputs(&self) -> Vec<Option<f64>> {
        let mut arrival: Vec<Option<f64>> = vec![None; self.netlist.net_count()];
        for &input in self.netlist.inputs() {
            arrival[input.index()] = Some(0.0);
        }
        self.propagate(&mut arrival);
        arrival
    }

    /// Longest path (ps) from the single net `source` to each net.
    ///
    /// `None` for nets not in the transitive fanout of `source`.
    #[must_use]
    pub fn arrivals_from(&self, source: NetId) -> Vec<Option<f64>> {
        let mut arrival: Vec<Option<f64>> = vec![None; self.netlist.net_count()];
        arrival[source.index()] = Some(0.0);
        self.propagate(&mut arrival);
        arrival
    }

    fn propagate(&self, arrival: &mut [Option<f64>]) {
        for (gid, gate) in self.netlist.gates().iter().enumerate() {
            let mut best: Option<f64> = None;
            for &input in gate.active_inputs() {
                if let Some(t) = arrival[input.index()] {
                    best = Some(best.map_or(t, |b: f64| b.max(t)));
                }
            }
            if let Some(t) = best {
                let out_t = t + self.gate_delay_ps[gid];
                let slot = &mut arrival[gate.output.index()];
                *slot = Some(slot.map_or(out_t, |cur| cur.max(out_t)));
            }
        }
    }

    /// Critical path delay (ps): the longest input→output path.
    #[must_use]
    pub fn critical_path_ps(&self) -> f64 {
        let arrival = self.arrivals_from_inputs();
        self.netlist
            .outputs()
            .iter()
            .filter_map(|n| arrival[n.index()])
            .fold(0.0, f64::max)
    }

    /// Longest path (ps) from `source` to any primary output, or `None`
    /// if no output is reachable from `source`.
    #[must_use]
    pub fn max_delay_to_outputs_from(&self, source: NetId) -> Option<f64> {
        let arrival = self.arrivals_from(source);
        self.netlist
            .outputs()
            .iter()
            .filter_map(|n| arrival[n.index()])
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
    }

    /// Longest path from each of the given source nets to any primary
    /// output, in ps (`None` per source when no output is reachable).
    ///
    /// This is the per-product-bit adder table of the paper's Fig. 5.
    #[must_use]
    pub fn output_delay_table(&self, sources: &[NetId]) -> Vec<Option<f64>> {
        sources
            .iter()
            .map(|&s| self.max_delay_to_outputs_from(s))
            .collect()
    }

    /// Nets on (one of) the critical paths, as a chain from an input to
    /// an output. Useful for reporting.
    #[must_use]
    pub fn critical_path_nets(&self) -> Vec<NetId> {
        let arrival = self.arrivals_from_inputs();
        // Find the output with the max arrival.
        let mut end: Option<NetId> = None;
        let mut best = f64::NEG_INFINITY;
        for &out in self.netlist.outputs() {
            if let Some(t) = arrival[out.index()] {
                if t > best {
                    best = t;
                    end = Some(out);
                }
            }
        }
        let mut path = Vec::new();
        let mut cursor = match end {
            Some(n) => n,
            None => return path,
        };
        loop {
            path.push(cursor);
            match self.netlist.source(cursor) {
                NetSource::Gate(gid) => {
                    let gate = &self.netlist.gates()[gid.index()];
                    // The output's arrival was computed as the max
                    // input arrival plus the gate delay, so the argmax
                    // input is on the path by construction. Matching
                    // `arrival[out] - delay` within a tolerance instead
                    // can miss every input once arrivals grow past the
                    // tolerance's resolution (reconvergent fanin with
                    // equal-delay paths), silently truncating the walk.
                    let mut next: Option<(NetId, f64)> = None;
                    for &input in gate.active_inputs() {
                        if let Some(t) = arrival[input.index()] {
                            if next.is_none_or(|(_, best)| t > best) {
                                next = Some((input, t));
                            }
                        }
                    }
                    match next {
                        Some((n, _)) => cursor = n,
                        None => break,
                    }
                }
                _ => break,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cells::CellLibrary;
    use crate::circuits::{AdderCircuit, AdderKind, MacCircuit};

    #[test]
    fn chain_delay_adds_up() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.inv(a);
        let y = b.inv(x);
        let z = b.inv(y);
        b.output(z);
        let nl = b.finish();
        let lib = CellLibrary::uniform(3.0, 0.0, 0.0);
        let sta = Sta::new(&nl, &lib);
        assert!((sta.critical_path_ps() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_nets_have_no_arrival() {
        let mut b = NetlistBuilder::new("cst");
        let a = b.input("a");
        let one = b.const1();
        let dead = b.inv(one);
        let live = b.inv(a);
        b.output(dead);
        b.output(live);
        let nl = b.finish();
        let lib = CellLibrary::uniform(1.0, 0.0, 0.0);
        let sta = Sta::new(&nl, &lib);
        let arr = sta.arrivals_from_inputs();
        assert!(arr[dead.index()].is_none());
        assert!(arr[live.index()].is_some());
    }

    #[test]
    fn per_source_delay_is_bounded_by_global() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let sta = Sta::new(mac.netlist(), &lib);
        let global = sta.critical_path_ps();
        for &p in mac.product_nets() {
            if let Some(d) = sta.max_delay_to_outputs_from(p) {
                assert!(d <= global + 1e-9);
            }
        }
    }

    #[test]
    fn ripple_critical_path_grows_with_width() {
        let lib = CellLibrary::nangate15_like();
        let small = AdderCircuit::new(AdderKind::Ripple, 4);
        let large = AdderCircuit::new(AdderKind::Ripple, 16);
        let d_small = Sta::new(small.netlist(), &lib).critical_path_ps();
        let d_large = Sta::new(large.netlist(), &lib).critical_path_ps();
        assert!(d_large > d_small * 2.0);
    }

    #[test]
    fn critical_path_nets_form_a_connected_chain() {
        let lib = CellLibrary::nangate15_like();
        let adder = AdderCircuit::new(AdderKind::Ripple, 8);
        let sta = Sta::new(adder.netlist(), &lib);
        let path = sta.critical_path_nets();
        assert!(path.len() >= 2, "critical path should traverse gates");
        // Every consecutive pair must be (input-of-gate, output-of-gate).
        for w in path.windows(2) {
            let ok = adder
                .netlist()
                .fanout(w[0])
                .iter()
                .any(|&g| adder.netlist().gates()[g.index()].output == w[1]);
            assert!(ok, "path edge {} -> {} is not a gate", w[0], w[1]);
        }
    }

    #[test]
    fn critical_path_survives_reconvergent_equal_arrival_fanin() {
        // Two equal-delay inverter chains from one input reconverging
        // in an AND: both fanin arrivals tie exactly. The delay is
        // chosen so the accumulated f64 arrivals are not exactly
        // representable — `fl(fl(a + d) - d) != a` partway down the
        // chain — which made the old `|t - target| < 1e-9` tie-break
        // find no matching input and silently truncate the walk.
        const LEN: usize = 40;
        let mut b = NetlistBuilder::new("diamond");
        let a = b.input("a");
        let mut left = a;
        let mut right = a;
        for _ in 0..LEN {
            left = b.inv(left);
            right = b.inv(right);
        }
        let z = b.and2(left, right);
        b.output(z);
        let nl = b.finish();
        let lib = CellLibrary::uniform(3_333_333.3, 0.0, 0.0);
        let sta = Sta::new(&nl, &lib);
        let path = sta.critical_path_nets();
        // Full chain: input, LEN inverter outputs, the AND output.
        assert_eq!(path.len(), LEN + 2, "walk truncated mid-path");
        assert_eq!(path[0], a, "path must start at a primary input");
        assert_eq!(*path.last().unwrap(), z);
    }

    #[test]
    fn output_delay_table_covers_all_sources() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let sta = Sta::new(mac.netlist(), &lib);
        let table = sta.output_delay_table(mac.product_nets());
        assert_eq!(table.len(), mac.product_nets().len());
        assert!(table.iter().all(|d| d.is_some()));
    }
}
