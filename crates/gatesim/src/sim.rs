//! Event-driven timed simulation with switching-energy accounting.
//!
//! The simulator uses a transport-delay model: when a gate input changes
//! at time *t*, the output value computed from the inputs visible at *t*
//! is scheduled at *t + delay(cell)*. Events are applied in time order;
//! an event that would re-apply the net's current value is dropped.
//! Every *actual* output toggle is charged the driving cell's switching
//! energy, so glitch power — the effect PowerPruning exploits — is
//! captured naturally.
//!
//! The settle time of the latest-toggling primary output is the measured
//! dynamic delay of the transition (dynamic timing analysis).

use crate::cells::CellLibrary;
use crate::intervals::{EngineBuild, PrunePlan};
use crate::netlist::{NetId, Netlist};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Femtoseconds per picosecond — event times are integer femtoseconds
/// for deterministic ordering. Shared with [`crate::engine`] so both
/// paths convert arrivals with the same arithmetic.
pub(crate) const FS_PER_PS: f64 = 1000.0;

/// Result of simulating one input transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionStats {
    /// Total switching energy dissipated, in femtojoules.
    pub energy_fj: f64,
    /// Arrival time of the last primary-output toggle, in picoseconds.
    /// Zero if no output toggled.
    pub delay_ps: f64,
    /// Number of net toggles (including glitches).
    pub toggles: u64,
    /// Arrival time of the last toggle of each primary output, in
    /// picoseconds (0 for outputs that did not change), in port order.
    pub output_arrival_ps: Vec<f64>,
    /// Last-toggle arrival of each net registered via
    /// [`Simulator::observe`], accessed through
    /// [`TransitionStats::observed_arrival_ps`].
    observed_arrival_ps: Vec<f64>,
}

impl TransitionStats {
    fn new(outputs: usize, observed: usize) -> Self {
        TransitionStats {
            energy_fj: 0.0,
            delay_ps: 0.0,
            toggles: 0,
            output_arrival_ps: vec![0.0; outputs],
            observed_arrival_ps: vec![0.0; observed],
        }
    }

    /// Arrival time (ps) of the last toggle of the `slot`-th net
    /// registered via [`Simulator::observe`].
    ///
    /// Returns 0.0 for nets that did not toggle or unknown slots.
    #[must_use]
    pub fn observed_arrival_ps(&self, slot: usize) -> f64 {
        self.observed_arrival_ps.get(slot).copied().unwrap_or(0.0)
    }
}

/// Event-driven timed simulator over a borrowed netlist.
///
/// # Examples
///
/// ```
/// use gatesim::{CellLibrary, NetlistBuilder, Simulator};
///
/// let mut b = NetlistBuilder::new("inv_chain");
/// let a = b.input("a");
/// let x = b.inv(a);
/// let y = b.inv(x);
/// b.output(y);
/// let nl = b.finish();
///
/// let lib = CellLibrary::nangate15_like();
/// let mut sim = Simulator::new(&nl, &lib);
/// sim.settle(&[false]);
/// let stats = sim.transition(&[true]);
/// assert_eq!(stats.toggles, 3); // input + two inverter outputs
/// assert!(stats.delay_ps > 0.0);
/// ```
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Shared engine compilation: gate rows, live-filtered fanout,
    /// per-net energies and pin assertions (see [`crate::intervals`]).
    build: EngineBuild,
    values: Vec<bool>,
    current_inputs: Vec<bool>,
    settled: bool,
    /// Output slot of each net (usize::MAX if not an output).
    output_slot: Vec<usize>,
    /// Observation slot of each net (usize::MAX if not observed).
    observe_slot: Vec<usize>,
    observed_count: usize,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for `netlist` with electrical data from `lib`.
    ///
    /// Equivalent to [`Simulator::with_plan`] with an unpinned
    /// [`PrunePlan`]: constant-fed cones are still pruned, which never
    /// changes any observable result.
    #[must_use]
    pub fn new(netlist: &'a Netlist, lib: &CellLibrary) -> Self {
        Self::with_plan(netlist, lib, &PrunePlan::unpinned(netlist, lib))
    }

    /// Creates a simulator that skips the gates `plan` proved silent.
    ///
    /// Results are exactly bit-identical to the unpruned engine for any
    /// stimulus that respects the plan's pinned inputs — pruned gates
    /// provably contribute zero toggles and zero energy. Every settle
    /// and transition asserts that the pinned inputs hold their pinned
    /// values.
    #[must_use]
    pub fn with_plan(netlist: &'a Netlist, lib: &CellLibrary, plan: &PrunePlan) -> Self {
        let build = EngineBuild::new(netlist, lib, plan);
        let mut output_slot = vec![usize::MAX; netlist.net_count()];
        for (slot, net) in netlist.outputs().iter().enumerate() {
            // first slot wins if a net is listed twice
            if output_slot[net.index()] == usize::MAX {
                output_slot[net.index()] = slot;
            }
        }
        Simulator {
            netlist,
            build,
            values: vec![false; netlist.net_count()],
            current_inputs: vec![false; netlist.inputs().len()],
            settled: false,
            output_slot,
            observe_slot: vec![usize::MAX; netlist.net_count()],
            observed_count: 0,
        }
    }

    /// Panics unless every pinned input holds its pinned value — the
    /// pruning proofs are conditional on exactly that.
    fn assert_pins(&self, inputs: &[bool]) {
        for &(pos, v) in &self.build.pins {
            assert_eq!(
                inputs[pos as usize], v,
                "pinned input {pos} violated (plan pins it to {v})"
            );
        }
    }

    /// Registers nets whose last-toggle arrival times should be recorded
    /// by subsequent transitions (e.g. multiplier product bits).
    ///
    /// Slot `i` of [`TransitionStats::observed_arrival_ps`] corresponds
    /// to `nets[i]`.
    pub fn observe(&mut self, nets: &[NetId]) {
        self.observe_slot = vec![usize::MAX; self.netlist.net_count()];
        for (slot, net) in nets.iter().enumerate() {
            self.observe_slot[net.index()] = slot;
        }
        self.observed_count = nets.len();
    }

    /// The netlist being simulated.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Settles the circuit combinationally at the given input vector.
    /// Must be called before the first [`Simulator::transition`].
    ///
    /// # Panics
    ///
    /// Panics if the input vector length does not match the netlist.
    pub fn settle(&mut self, inputs: &[bool]) {
        self.assert_pins(inputs);
        self.values = self.netlist.evaluate(inputs);
        self.current_inputs = inputs.to_vec();
        self.settled = true;
    }

    /// Current value of a net (after settle/transition).
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Current primary-output values in port order.
    #[must_use]
    pub fn output_values(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|n| self.values[n.index()])
            .collect()
    }

    /// Applies a new input vector at time zero and propagates all events.
    ///
    /// Returns the transition's switching energy, dynamic delay and
    /// toggle count. After the call the simulator is settled at
    /// `new_inputs`.
    ///
    /// # Panics
    ///
    /// Panics if [`Simulator::settle`] has not been called or the input
    /// length mismatches.
    pub fn transition(&mut self, new_inputs: &[bool]) -> TransitionStats {
        assert!(self.settled, "call settle() before transition()");
        crate::counters::record_transition();
        assert_eq!(
            new_inputs.len(),
            self.current_inputs.len(),
            "input vector length mismatch"
        );
        self.assert_pins(new_inputs);
        let mut stats = TransitionStats::new(self.netlist.outputs().len(), self.observed_count);

        // Min-heap of (time_fs, seq, net, value).
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32, bool)>> = BinaryHeap::new();
        let mut seq: u64 = 0;

        for (pos, (&old, &new)) in self.current_inputs.iter().zip(new_inputs).enumerate() {
            if old != new {
                let net = self.netlist.inputs()[pos];
                heap.push(Reverse((0, seq, net.0, new)));
                seq += 1;
            }
        }

        // The scalar engine filters at pop time, not push time; count
        // the discarded pops so the engines' scheduled/filtered metrics
        // stay comparable. Flushed to the registry once per transition.
        let mut filtered: u64 = 0;
        let mut last_output_toggle_fs: u64 = 0;
        while let Some(Reverse((t, _s, net_raw, value))) = heap.pop() {
            let net = NetId(net_raw);
            if self.values[net.index()] == value {
                filtered += 1;
                continue; // no toggle: value already current
            }
            self.values[net.index()] = value;
            stats.toggles += 1;
            // 0.0 for inputs and constants — adding +0.0 to the
            // non-negative accumulator is bit-exact with skipping it.
            stats.energy_fj += self.build.net_energy_fj[net.index()];
            let oslot = self.output_slot[net.index()];
            if oslot != usize::MAX {
                stats.output_arrival_ps[oslot] = t as f64 / FS_PER_PS;
                last_output_toggle_fs = last_output_toggle_fs.max(t);
            }
            let wslot = self.observe_slot[net.index()];
            if wslot != usize::MAX {
                stats.observed_arrival_ps[wslot] = t as f64 / FS_PER_PS;
            }
            // Live-filtered fanout: gates the plan proved silent never
            // see events (their events could only ever be filtered).
            for &gid in self.build.fanout(net.index()) {
                let gate = self.build.rows[gid as usize];
                let idx = usize::from(self.values[gate.in0 as usize])
                    | usize::from(self.values[gate.in1 as usize]) << 1
                    | usize::from(self.values[gate.in2 as usize]) << 2;
                let out = gate.lut >> idx & 1 == 1;
                heap.push(Reverse((t + u64::from(gate.delay_fs), seq, gate.out, out)));
                seq += 1;
            }
        }

        stats.delay_ps = last_output_toggle_fs as f64 / FS_PER_PS;
        crate::counters::record_events(seq, filtered);
        crate::counters::record_settle_ps(stats.delay_ps);
        self.current_inputs = new_inputs.to_vec();
        stats
    }

    /// Convenience wrapper: settles at `from`, then measures the
    /// transition to `to`.
    ///
    /// # Panics
    ///
    /// Panics on input-length mismatch.
    pub fn measure(&mut self, from: &[bool], to: &[bool]) -> TransitionStats {
        self.settle(from);
        self.transition(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetlistBuilder;
    use crate::cells::CellLibrary;
    use crate::circuits::{MacCircuit, MultiplierCircuit};
    use crate::sta::Sta;

    fn xor_tree() -> Netlist {
        let mut b = NetlistBuilder::new("xt");
        let ins = b.input_bus("a", 4);
        let x1 = b.xor2(ins[0], ins[1]);
        let x2 = b.xor2(ins[2], ins[3]);
        let x3 = b.xor2(x1, x2);
        b.output(x3);
        b.finish()
    }

    #[test]
    fn no_change_no_energy() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut sim = Simulator::new(&nl, &lib);
        sim.settle(&[true, false, true, true]);
        let stats = sim.transition(&[true, false, true, true]);
        assert_eq!(stats.energy_fj, 0.0);
        assert_eq!(stats.toggles, 0);
        assert_eq!(stats.delay_ps, 0.0);
    }

    #[test]
    fn single_input_change_propagates() {
        let nl = xor_tree();
        let lib = CellLibrary::uniform(2.0, 1.0, 0.0);
        let mut sim = Simulator::new(&nl, &lib);
        sim.settle(&[false, false, false, false]);
        let stats = sim.transition(&[true, false, false, false]);
        // input toggles, x1 toggles, x3 toggles => 3 toggles, 2 gate energies
        assert_eq!(stats.toggles, 3);
        assert!((stats.energy_fj - 2.0).abs() < 1e-9);
        assert!((stats.delay_ps - 4.0).abs() < 1e-9);
    }

    #[test]
    fn functional_result_matches_evaluate_after_transition() {
        let mult = MultiplierCircuit::new(4, 4);
        let lib = CellLibrary::nangate15_like();
        let mut sim = Simulator::new(mult.netlist(), &lib);
        sim.settle(&mult.encode(3, 5));
        let _ = sim.transition(&mult.encode(-7, 12));
        let expected = mult.netlist().evaluate_outputs(&mult.encode(-7, 12));
        assert_eq!(sim.output_values(), expected);
    }

    #[test]
    fn dynamic_delay_never_exceeds_sta_bound() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let bound = Sta::new(mac.netlist(), &lib).critical_path_ps();
        let mut sim = Simulator::new(mac.netlist(), &lib);
        let mut x: u64 = 7;
        sim.settle(&mac.encode(0, 0, 0));
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((x & 0xf) as i64) - 8;
            let a = (x >> 4) & 0xf;
            let p = (((x >> 8) & 0x3ff) as i64) - 512;
            let stats = sim.transition(&mac.encode(w, a, p));
            assert!(
                stats.delay_ps <= bound + 1e-6,
                "dynamic {} > STA {}",
                stats.delay_ps,
                bound
            );
        }
    }

    #[test]
    fn zero_weight_mac_transitions_are_cheap() {
        // With weight fixed at 0 the multiplier output never moves, so
        // only adder activity from psum changes remains — much less
        // energy than a full-swing weight like -105. This is the paper's
        // core observation.
        let mac = MacCircuit::new(8, 8, 22);
        let lib = CellLibrary::nangate15_like();
        let mut sim = Simulator::new(mac.netlist(), &lib);

        let mut energy_zero = 0.0;
        let mut energy_heavy = 0.0;
        let acts = [13u64, 200, 77, 255, 0, 129];
        let psums = [0i64, 5000, -300, 100_000, -70_000, 42];

        for (weight, total) in [(0i64, &mut energy_zero), (-105, &mut energy_heavy)] {
            sim.settle(&mac.encode(weight, acts[0], psums[0]));
            for i in 1..acts.len() {
                let stats = sim.transition(&mac.encode(weight, acts[i], psums[i]));
                *total += stats.energy_fj;
            }
        }
        assert!(
            energy_zero < energy_heavy,
            "zero-weight energy {energy_zero} should undercut weight=-105 energy {energy_heavy}"
        );
    }

    #[test]
    fn observed_product_arrivals_are_recorded() {
        let mac = MacCircuit::new(4, 4, 10);
        let lib = CellLibrary::nangate15_like();
        let mut sim = Simulator::new(mac.netlist(), &lib);
        sim.observe(mac.product_nets());
        sim.settle(&mac.encode(3, 0, 0));
        let stats = sim.transition(&mac.encode(3, 15, 0));
        // product changed 0 -> 45, some product bits must have toggled
        let any = (0..mac.product_nets().len()).any(|i| stats.observed_arrival_ps(i) > 0.0);
        assert!(any, "expected some product-bit arrivals");
    }

    #[test]
    #[should_panic(expected = "settle")]
    fn transition_requires_settle() {
        let nl = xor_tree();
        let lib = CellLibrary::nangate15_like();
        let mut sim = Simulator::new(&nl, &lib);
        let _ = sim.transition(&[true, false, false, false]);
    }
}
