//! Netlist specialization: constant propagation and simplification.
//!
//! Fixing an input (e.g. the weight bus of a MAC) to a constant value
//! removes every combinational path that can no longer be sensitized —
//! the structural fact behind the paper's §II observation that "if the
//! weight is fixed to a given value, some combinational paths in the MAC
//! unit cannot be sensitized". Running STA on the specialized netlist
//! yields a per-weight *conservative* maximum delay that sits between
//! the exact dynamic analysis and the full-netlist STA bound.

use crate::builder::NetlistBuilder;
use crate::cells::CellKind;
use crate::netlist::{NetId, NetSource, Netlist};

/// How an original net maps into the specialized netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mapped {
    /// Became a compile-time constant.
    Const(bool),
    /// Maps to this net of the new netlist.
    Net(NetId),
}

/// Result of specializing a netlist.
#[derive(Debug, Clone)]
pub struct Specialized {
    /// The simplified netlist (assigned inputs removed from the ports).
    pub netlist: Netlist,
    /// For each original primary-input position: its position in the new
    /// input list, or `None` if it was assigned a constant.
    pub input_map: Vec<Option<usize>>,
    /// For each original primary-output position: the constant it
    /// collapsed to, if it did.
    pub const_outputs: Vec<Option<bool>>,
}

/// Specializes `netlist` by fixing the given primary inputs to constants
/// and propagating/simplifying.
///
/// Simplifications applied per gate: full constant folding, identity and
/// dominance rules (`AND(x,0)=0`, `OR(x,1)=1`, `XOR(x,0)=x`, mux select
/// folding, majority/AOI/OAI reductions to 2-input forms), and buffer
/// aliasing. The output port list is preserved (constant outputs are
/// materialized via tie cells).
///
/// # Panics
///
/// Panics if an assigned net is not a primary input.
#[must_use]
pub fn specialize(netlist: &Netlist, assignments: &[(NetId, bool)]) -> Specialized {
    let mut fixed: Vec<Option<bool>> = vec![None; netlist.net_count()];
    for &(net, value) in assignments {
        assert!(
            matches!(netlist.source(net), NetSource::Input),
            "assignment target {net} is not a primary input"
        );
        fixed[net.index()] = Some(value);
    }

    let mut b = NetlistBuilder::new(format!("{}_spec", netlist.name()));
    let mut map: Vec<Option<Mapped>> = vec![None; netlist.net_count()];
    let mut input_map = Vec::with_capacity(netlist.inputs().len());

    for (pos, &input) in netlist.inputs().iter().enumerate() {
        if let Some(v) = fixed[input.index()] {
            map[input.index()] = Some(Mapped::Const(v));
            input_map.push(None);
        } else {
            let new = b.input(format!("i{pos}"));
            map[input.index()] = Some(Mapped::Net(new));
            input_map.push(Some(input_map.iter().filter(|m| m.is_some()).count()));
        }
    }
    // Constants of the original netlist.
    for idx in 0..netlist.net_count() {
        match netlist.source(NetId(idx as u32)) {
            NetSource::Const0 => map[idx] = Some(Mapped::Const(false)),
            NetSource::Const1 => map[idx] = Some(Mapped::Const(true)),
            _ => {}
        }
    }

    for gate in netlist.gates() {
        let get = |n: NetId, map: &Vec<Option<Mapped>>| -> Mapped {
            map[n.index()].expect("topological order guarantees mapped inputs")
        };
        let a = get(gate.inputs[0], &map);
        let bb = get(gate.inputs[1], &map);
        let c = get(gate.inputs[2], &map);
        let out = simplify_gate(&mut b, gate.kind, a, bb, c);
        map[gate.output.index()] = Some(out);
    }

    let mut const_outputs = Vec::with_capacity(netlist.outputs().len());
    for &out in netlist.outputs() {
        match map[out.index()].expect("outputs are mapped") {
            Mapped::Const(v) => {
                const_outputs.push(Some(v));
                let tie = if v { b.const1() } else { b.const0() };
                b.output(tie);
            }
            Mapped::Net(n) => {
                const_outputs.push(None);
                b.output(n);
            }
        }
    }

    Specialized {
        netlist: b.finish(),
        input_map,
        const_outputs,
    }
}

fn simplify_gate(
    b: &mut NetlistBuilder,
    kind: CellKind,
    a: Mapped,
    bb: Mapped,
    c: Mapped,
) -> Mapped {
    use Mapped::{Const, Net};
    // Fully constant inputs: fold.
    if let (Const(av), Const(bv), Const(cv)) = (a, bb, c) {
        return Const(kind.eval(av, bv, cv));
    }
    match kind {
        CellKind::Inv => match a {
            Const(v) => Const(!v),
            Net(n) => Net(b.inv(n)),
        },
        CellKind::Buf => a,
        CellKind::Nand2 => match (a, bb) {
            (Const(false), _) | (_, Const(false)) => Const(true),
            (Const(true), Net(n)) | (Net(n), Const(true)) => Net(b.inv(n)),
            (Net(x), Net(y)) => Net(b.nand2(x, y)),
            _ => unreachable!("covered by constant fold"),
        },
        CellKind::Nor2 => match (a, bb) {
            (Const(true), _) | (_, Const(true)) => Const(false),
            (Const(false), Net(n)) | (Net(n), Const(false)) => Net(b.inv(n)),
            (Net(x), Net(y)) => Net(b.nor2(x, y)),
            _ => unreachable!("covered by constant fold"),
        },
        CellKind::And2 => match (a, bb) {
            (Const(false), _) | (_, Const(false)) => Const(false),
            (Const(true), other) | (other, Const(true)) => other,
            (Net(x), Net(y)) => Net(b.and2(x, y)),
        },
        CellKind::Or2 => match (a, bb) {
            (Const(true), _) | (_, Const(true)) => Const(true),
            (Const(false), other) | (other, Const(false)) => other,
            (Net(x), Net(y)) => Net(b.or2(x, y)),
        },
        CellKind::Xor2 => match (a, bb) {
            (Const(false), other) | (other, Const(false)) => other,
            (Const(true), Net(n)) | (Net(n), Const(true)) => Net(b.inv(n)),
            (Net(x), Net(y)) => Net(b.xor2(x, y)),
            _ => unreachable!("covered by constant fold"),
        },
        CellKind::Xnor2 => match (a, bb) {
            (Const(true), other) | (other, Const(true)) => other,
            (Const(false), Net(n)) | (Net(n), Const(false)) => Net(b.inv(n)),
            (Net(x), Net(y)) => Net(b.xnor2(x, y)),
            _ => unreachable!("covered by constant fold"),
        },
        CellKind::Mux2 => match (a, bb, c) {
            (x, y, Const(sel)) => {
                if sel {
                    y
                } else {
                    x
                }
            }
            (Const(false), Const(true), Net(sel)) => Net(sel),
            (Const(true), Const(false), Net(sel)) => Net(b.inv(sel)),
            (Const(true), Const(true), Net(_)) => Const(true),
            (Const(false), Const(false), Net(_)) => Const(false),
            (Const(false), Net(y), Net(sel)) => Net(b.and2(y, sel)),
            (Const(true), Net(y), Net(sel)) => {
                let nsel = b.inv(sel);
                Net(b.or2(y, nsel))
            }
            (Net(x), Const(false), Net(sel)) => {
                let nsel = b.inv(sel);
                Net(b.and2(x, nsel))
            }
            (Net(x), Const(true), Net(sel)) => Net(b.or2(x, sel)),
            (Net(x), Net(y), Net(sel)) => Net(b.mux2(x, y, sel)),
        },
        CellKind::Aoi21 => match (a, bb, c) {
            // !((a & b) | c)
            (_, _, Const(true)) => Const(false),
            (x, y, Const(false)) => match simplify_gate(b, CellKind::And2, x, y, x) {
                Const(v) => Const(!v),
                Net(n) => Net(b.inv(n)),
            },
            (Const(true), Const(true), Net(n)) => Net(b.inv(n)),
            (Const(false), _, Net(n)) | (_, Const(false), Net(n)) => Net(b.inv(n)),
            (Const(true), Net(y), Net(n)) | (Net(y), Const(true), Net(n)) => Net(b.nor2(y, n)),
            (Net(x), Net(y), Net(n)) => Net(b.gate(CellKind::Aoi21, &[x, y, n])),
        },
        CellKind::Oai21 => match (a, bb, c) {
            // !((a | b) & c)
            (_, _, Const(false)) => Const(true),
            (x, y, Const(true)) => match simplify_gate(b, CellKind::Or2, x, y, x) {
                Const(v) => Const(!v),
                Net(n) => Net(b.inv(n)),
            },
            (Const(false), Const(false), Net(_)) => Const(true),
            (Const(true), _, Net(n)) | (_, Const(true), Net(n)) => Net(b.inv(n)),
            (Const(false), Net(y), Net(n)) | (Net(y), Const(false), Net(n)) => Net(b.nand2(y, n)),
            (Net(x), Net(y), Net(n)) => Net(b.gate(CellKind::Oai21, &[x, y, n])),
        },
        CellKind::Maj3 => match (a, bb, c) {
            (Const(false), y, z) => simplify_gate(b, CellKind::And2, y, z, y),
            (Const(true), y, z) => simplify_gate(b, CellKind::Or2, y, z, y),
            (x, Const(false), z) => simplify_gate(b, CellKind::And2, x, z, x),
            (x, Const(true), z) => simplify_gate(b, CellKind::Or2, x, z, x),
            (x, y, Const(false)) => simplify_gate(b, CellKind::And2, x, y, x),
            (x, y, Const(true)) => simplify_gate(b, CellKind::Or2, x, y, x),
            (Net(x), Net(y), Net(z)) => Net(b.maj3(x, y, z)),
        },
        CellKind::Xor3 => match (a, bb, c) {
            (Const(false), y, z) => simplify_gate(b, CellKind::Xor2, y, z, y),
            (Const(true), y, z) => simplify_gate(b, CellKind::Xnor2, y, z, y),
            (x, Const(false), z) => simplify_gate(b, CellKind::Xor2, x, z, x),
            (x, Const(true), z) => simplify_gate(b, CellKind::Xnor2, x, z, x),
            (x, y, Const(false)) => simplify_gate(b, CellKind::Xor2, x, y, x),
            (x, y, Const(true)) => simplify_gate(b, CellKind::Xnor2, x, y, x),
            (Net(x), Net(y), Net(z)) => Net(b.xor3(x, y, z)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{MacCircuit, MultiplierCircuit};
    use crate::netlist::to_bits;
    use crate::{CellLibrary, Sta};

    /// Functional equivalence: for every assignment of the remaining
    /// inputs, the specialized netlist matches the original with the
    /// fixed bits substituted.
    fn check_equivalent(original: &Netlist, fixed_positions: &[(usize, bool)]) {
        let assignments: Vec<(NetId, bool)> = fixed_positions
            .iter()
            .map(|&(pos, v)| (original.inputs()[pos], v))
            .collect();
        let spec = specialize(original, &assignments);
        let free: Vec<usize> = (0..original.inputs().len())
            .filter(|p| !fixed_positions.iter().any(|&(fp, _)| fp == *p))
            .collect();
        let cases = 1u64 << free.len().min(10);
        for bits in 0..cases {
            let mut full = vec![false; original.inputs().len()];
            for &(pos, v) in fixed_positions {
                full[pos] = v;
            }
            let mut spec_inputs = Vec::new();
            for (i, &pos) in free.iter().enumerate() {
                let v = (bits >> i) & 1 == 1;
                full[pos] = v;
                spec_inputs.push(v);
            }
            assert_eq!(
                original.evaluate_outputs(&full),
                spec.netlist.evaluate_outputs(&spec_inputs),
                "mismatch at case {bits:b}"
            );
        }
    }

    #[test]
    fn specialized_multiplier_is_equivalent() {
        let mult = MultiplierCircuit::new(4, 4);
        for weight in [-8i64, -3, 0, 1, 5, 7] {
            let bits = to_bits(weight, 4);
            let fixed: Vec<(usize, bool)> = bits.iter().enumerate().map(|(i, &v)| (i, v)).collect();
            check_equivalent(mult.netlist(), &fixed);
        }
    }

    #[test]
    fn zero_weight_multiplier_collapses_to_constants() {
        let mult = MultiplierCircuit::new(4, 4);
        let fixed: Vec<(NetId, bool)> = (0..4)
            .map(|i| (mult.netlist().inputs()[i], false))
            .collect();
        let spec = specialize(mult.netlist(), &fixed);
        // 0 × a = 0: every product bit is constant zero.
        assert!(spec.const_outputs.iter().all(|c| *c == Some(false)));
        assert_eq!(spec.netlist.gate_count(), 0, "no logic should remain");
    }

    #[test]
    fn specialization_reduces_gate_count() {
        let mac = MacCircuit::new(4, 4, 12);
        let bits = to_bits(3, 4);
        let fixed: Vec<(NetId, bool)> = bits
            .iter()
            .enumerate()
            .map(|(i, &v)| (mac.netlist().inputs()[i], v))
            .collect();
        let spec = specialize(mac.netlist(), &fixed);
        assert!(
            spec.netlist.gate_count() < mac.netlist().gate_count(),
            "{} !< {}",
            spec.netlist.gate_count(),
            mac.netlist().gate_count()
        );
    }

    #[test]
    fn per_weight_sta_is_between_dta_and_full_sta() {
        // Paper §II: fixing the weight desensitizes paths, so the
        // specialized STA bound can only shrink — and stays above any
        // dynamic delay for that weight.
        let lib = CellLibrary::nangate15_like();
        let mult = MultiplierCircuit::new(4, 4);
        let full_sta = Sta::new(mult.netlist(), &lib).critical_path_ps();
        for weight in [-8i64, -5, 1, 3, 7] {
            let bits = to_bits(weight, 4);
            let fixed: Vec<(NetId, bool)> = bits
                .iter()
                .enumerate()
                .map(|(i, &v)| (mult.netlist().inputs()[i], v))
                .collect();
            let spec = specialize(mult.netlist(), &fixed);
            let spec_sta = Sta::new(&spec.netlist, &lib).critical_path_ps();
            assert!(
                spec_sta <= full_sta + 1e-9,
                "weight {weight}: specialized STA {spec_sta} exceeds full {full_sta}"
            );
            // Dynamic check: sampled transitions never exceed the bound.
            use crate::Simulator;
            let mut sim = Simulator::new(&spec.netlist, &lib);
            let mut x: u64 = 5;
            sim.settle(&vec![false; spec.netlist.inputs().len()]);
            for _ in 0..50 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let inputs: Vec<bool> = (0..spec.netlist.inputs().len())
                    .map(|i| (x >> i) & 1 == 1)
                    .collect();
                let stats = sim.transition(&inputs);
                assert!(stats.delay_ps <= spec_sta + 1e-6);
            }
        }
    }

    #[test]
    fn input_map_tracks_remaining_positions() {
        let mult = MultiplierCircuit::new(4, 4);
        let fixed: Vec<(NetId, bool)> = vec![
            (mult.netlist().inputs()[1], true),
            (mult.netlist().inputs()[3], false),
        ];
        let spec = specialize(mult.netlist(), &fixed);
        assert_eq!(spec.input_map.len(), 8);
        assert_eq!(spec.input_map[0], Some(0));
        assert_eq!(spec.input_map[1], None);
        assert_eq!(spec.input_map[2], Some(1));
        assert_eq!(spec.input_map[3], None);
        assert_eq!(spec.input_map[4], Some(2));
        assert_eq!(spec.netlist.inputs().len(), 6);
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn assigning_internal_net_panics() {
        let mult = MultiplierCircuit::new(4, 4);
        let internal = mult.netlist().gates()[0].output;
        let _ = specialize(mult.netlist(), &[(internal, true)]);
    }
}
