//! Process-wide gate-simulation activity counters.
//!
//! The warm-start cache's contract is "a warmed run performs zero
//! gate-level work". That claim needs an observable: every
//! [`crate::Simulator::transition`] and [`crate::BatchSim::transition`]
//! bumps a global counter, so tests, the `charstore warm` CLI and the
//! characterization bench can assert that a cache-served pipeline run
//! triggered *no* simulation at all — not just that it was fast.
//!
//! The unit is one *stimulus vector* transition, regardless of engine:
//! a [`crate::BitSim::transition`] call that evaluates 64 packed
//! vectors in one pass records 64, so counts stay comparable across
//! the scalar, batched and bit-parallel engines.
//!
//! The counter is monotonic for the life of the process; callers
//! interested in a window take a snapshot before and subtract after.
//! One relaxed atomic add per transition is noise next to the hundreds
//! of gate events each transition propagates.

use std::sync::atomic::{AtomicU64, Ordering};

static SIM_TRANSITIONS: AtomicU64 = AtomicU64::new(0);

/// Total gate-level transitions simulated by this process so far, over
/// both the scalar and the batched engine.
#[must_use]
pub fn sim_transitions() -> u64 {
    SIM_TRANSITIONS.load(Ordering::Relaxed)
}

/// Records one simulated transition (crate-internal).
#[inline]
pub(crate) fn record_transition() {
    SIM_TRANSITIONS.fetch_add(1, Ordering::Relaxed);
}

/// Records `n` simulated transitions at once — the bit-parallel engine
/// counts one per *active lane*, not one per word (crate-internal).
#[inline]
pub(crate) fn record_transitions(n: u64) {
    SIM_TRANSITIONS.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = sim_transitions();
        record_transition();
        record_transition();
        // Other tests in this process may also record; the counter only
        // ever grows.
        assert!(sim_transitions() >= before + 2);
    }

    #[test]
    fn bulk_record_counts_per_vector() {
        let before = sim_transitions();
        record_transitions(64);
        record_transitions(17);
        assert!(sim_transitions() >= before + 81);
    }
}
