//! Process-wide gate-simulation activity counters.
//!
//! The warm-start cache's contract is "a warmed run performs zero
//! gate-level work". That claim needs an observable: every
//! [`crate::Simulator::transition`] and [`crate::BatchSim::transition`]
//! bumps a global counter, so tests, the `charstore warm` CLI and the
//! characterization bench can assert that a cache-served pipeline run
//! triggered *no* simulation at all — not just that it was fast.
//!
//! The unit is one *stimulus vector* transition, regardless of engine:
//! a [`crate::BitSim::transition`] call that evaluates 64 packed
//! vectors in one pass records 64, so counts stay comparable across
//! the scalar, batched and bit-parallel engines.
//!
//! The counter is monotonic for the life of the process; callers
//! interested in a window take a snapshot before and subtract after.
//! One relaxed atomic add per transition is noise next to the hundreds
//! of gate events each transition propagates.
//!
//! Every count is *mirrored* into the process-global [`obs`] metrics
//! registry (`gatesim_*` names) for the daemon's `/metrics` endpoint
//! and the CLI tables. The local atomic stays authoritative on
//! purpose: `sim_transitions()` backs the warm-cache "zero gate-level
//! work" *correctness* assertions, which must keep counting even when
//! the bench harness flips `obs::set_enabled(false)` to measure
//! registry overhead. The per-transition event totals (scheduled vs.
//! push-time-filtered) and the settle-time histogram live only on the
//! registry — they are observability, not contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::LazyLock;

use obs::metrics::{counter, histogram, Counter, Histogram, LATENCY_SECONDS, SETTLE_PS};

static SIM_TRANSITIONS: AtomicU64 = AtomicU64::new(0);

/// Registry mirrors, registered once on first gate-level activity.
struct Registry {
    transitions: Counter,
    events_scheduled: Counter,
    events_filtered: Counter,
    settle_ps: Histogram,
    gates_pruned: Counter,
    prune_plan_seconds: Histogram,
}

static REGISTRY: LazyLock<Registry> = LazyLock::new(|| Registry {
    transitions: counter("gatesim_sim_transitions_total"),
    events_scheduled: counter("gatesim_events_scheduled_total"),
    events_filtered: counter("gatesim_events_filtered_total"),
    settle_ps: histogram("gatesim_settle_time_ps", SETTLE_PS),
    gates_pruned: counter("gatesim_gates_pruned_total"),
    prune_plan_seconds: histogram("gatesim_prune_plan_seconds", LATENCY_SECONDS),
});

/// Forces registration of the `gatesim_*` metrics so they render in
/// Prometheus exposition (at zero) before any simulation has run.
pub fn register_metrics() {
    LazyLock::force(&REGISTRY);
}

/// Total gate-level transitions simulated by this process so far, over
/// both the scalar and the batched engine.
#[must_use]
pub fn sim_transitions() -> u64 {
    SIM_TRANSITIONS.load(Ordering::Relaxed)
}

/// Records one simulated transition (crate-internal).
#[inline]
pub(crate) fn record_transition() {
    SIM_TRANSITIONS.fetch_add(1, Ordering::Relaxed);
    REGISTRY.transitions.inc();
}

/// Records `n` simulated transitions at once — the bit-parallel engine
/// counts one per *active lane*, not one per word (crate-internal).
#[inline]
pub(crate) fn record_transitions(n: u64) {
    SIM_TRANSITIONS.fetch_add(n, Ordering::Relaxed);
    REGISTRY.transitions.add(n);
}

/// Records one transition's event accounting: how many gate events the
/// engine scheduled versus how many re-evaluations push-time filtering
/// suppressed. Called once per `transition()` — the tallies are kept in
/// locals inside the hot loop (crate-internal).
#[inline]
pub(crate) fn record_events(scheduled: u64, filtered: u64) {
    REGISTRY.events_scheduled.add(scheduled);
    REGISTRY.events_filtered.add(filtered);
}

/// Records a transition's settle time (last primary-output toggle) in
/// picoseconds (crate-internal).
#[inline]
pub(crate) fn record_settle_ps(ps: f64) {
    REGISTRY.settle_ps.observe(ps);
}

/// Records one [`crate::PrunePlan`] pass: how many gates it proved
/// silent and how long the proof took (crate-internal).
#[inline]
pub(crate) fn record_prune_plan(pruned: u64, seconds: f64) {
    REGISTRY.gates_pruned.add(pruned);
    REGISTRY.prune_plan_seconds.observe(seconds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic() {
        let before = sim_transitions();
        record_transition();
        record_transition();
        // Other tests in this process may also record; the counter only
        // ever grows.
        assert!(sim_transitions() >= before + 2);
    }

    #[test]
    fn bulk_record_counts_per_vector() {
        let before = sim_transitions();
        record_transitions(64);
        record_transitions(17);
        assert!(sim_transitions() >= before + 81);
    }
}
