//! Standard-cell library model.
//!
//! Each combinational cell kind carries a propagation delay (ps), a
//! switching energy charged per *output* toggle (fJ) and a static leakage
//! power (nW). The default library, [`CellLibrary::nangate15_like`], is
//! calibrated so that the complete 8×8 MAC unit of
//! [`crate::circuits::MacCircuit`] has a critical path close to the
//! ~180 ps the paper reports after synthesis with the NanGate 15 nm
//! library, and per-MAC average power lands in the same hundreds-of-µW
//! range at 5 GHz.

use std::fmt;

/// The kinds of combinational cells supported by the simulator.
///
/// The set intentionally mirrors the workhorse cells of a standard-cell
/// library: inverter/buffer, 2-input NAND/NOR/AND/OR/XOR/XNOR, a 2:1 mux
/// and 3-input AOI/OAI compound gates commonly produced by synthesis for
/// adder carry logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Logic inverter, 1 input.
    Inv,
    /// Non-inverting buffer, 1 input.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `(a, b, sel)`, output `sel ? b : a`.
    Mux2,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
    /// 3-input majority gate (carry logic): `ab | ac | bc`.
    Maj3,
    /// 3-input XOR (sum logic).
    Xor3,
}

impl CellKind {
    /// Number of input pins of this cell kind.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Mux2
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Maj3
            | CellKind::Xor3 => 3,
        }
    }

    /// Evaluates the cell's boolean function.
    ///
    /// Unused trailing inputs are ignored. For example an [`CellKind::Inv`]
    /// only reads `a`.
    #[must_use]
    pub fn eval(self, a: bool, b: bool, c: bool) -> bool {
        match self {
            CellKind::Inv => !a,
            CellKind::Buf => a,
            CellKind::Nand2 => !(a && b),
            CellKind::Nor2 => !(a || b),
            CellKind::And2 => a && b,
            CellKind::Or2 => a || b,
            CellKind::Xor2 => a ^ b,
            CellKind::Xnor2 => !(a ^ b),
            CellKind::Mux2 => {
                if c {
                    b
                } else {
                    a
                }
            }
            CellKind::Aoi21 => !((a && b) || c),
            CellKind::Oai21 => !((a || b) && c),
            CellKind::Maj3 => (a && (b || c)) || (b && c),
            CellKind::Xor3 => a ^ b ^ c,
        }
    }

    /// The cell's boolean function as an 8-entry truth table: bit
    /// `a | b << 1 | c << 2` holds `eval(a, b, c)`.
    ///
    /// This is the representation the simulation engines compile gates
    /// to — [`crate::BatchSim`] indexes it one minterm at a time, while
    /// [`crate::BitSim`] expands it into word-wide boolean formulas.
    #[must_use]
    pub fn truth_table(self) -> u8 {
        let mut tt = 0u8;
        for idx in 0..8u8 {
            if self.eval(idx & 1 != 0, idx & 2 != 0, idx & 4 != 0) {
                tt |= 1 << idx;
            }
        }
        tt
    }

    /// All cell kinds, in a stable order.
    #[must_use]
    pub fn all() -> &'static [CellKind] {
        &[
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Aoi21,
            CellKind::Oai21,
            CellKind::Maj3,
            CellKind::Xor3,
        ]
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Maj3 => "MAJ3",
            CellKind::Xor3 => "XOR3",
        };
        f.write_str(name)
    }
}

/// Electrical parameters of one cell kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Propagation delay from any input to the output, in picoseconds.
    pub delay_ps: f64,
    /// Energy charged per output transition, in femtojoules.
    pub energy_fj: f64,
    /// Static leakage power, in nanowatts.
    pub leakage_nw: f64,
}

/// A complete cell library: parameters for every [`CellKind`].
///
/// # Examples
///
/// ```
/// use gatesim::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::nangate15_like();
/// assert!(lib.params(CellKind::Xor2).delay_ps > lib.params(CellKind::Inv).delay_ps);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    params: [CellParams; 13],
}

/// Largest legal `delay_ps`: the femtosecond representation
/// (`delay_ps * 1000`, rounded) must fit the engines' `u32` delay
/// fields without truncation.
const MAX_DELAY_PS: f64 = u32::MAX as f64 / 1000.0;

/// Panics unless `delay_ps` is finite, non-negative and within the
/// engines' femtosecond range. Every constructor and mutator of
/// [`CellLibrary`] funnels through this, so a library in hand always
/// holds simulatable delays.
fn validate_delay_ps(delay_ps: f64) {
    assert!(
        delay_ps.is_finite() && delay_ps >= 0.0,
        "cell delay must be finite and non-negative, got {delay_ps} ps"
    );
    assert!(
        delay_ps <= MAX_DELAY_PS,
        "cell delay {delay_ps} ps overflows the femtosecond range (max {MAX_DELAY_PS} ps)"
    );
}

impl CellLibrary {
    /// A library with uniform parameters — useful in tests.
    ///
    /// # Panics
    ///
    /// Panics if `delay_ps` is NaN, infinite, negative, or too large
    /// for the engines' femtosecond representation.
    #[must_use]
    pub fn uniform(delay_ps: f64, energy_fj: f64, leakage_nw: f64) -> Self {
        validate_delay_ps(delay_ps);
        CellLibrary {
            params: [CellParams {
                delay_ps,
                energy_fj,
                leakage_nw,
            }; 13],
        }
    }

    /// The default library, loosely calibrated against published NanGate
    /// 15 nm figures so that the 8×8 MAC critical path is ~180 ps and MAC
    /// power at 5 GHz is in the hundreds of µW, matching the magnitudes
    /// of the paper's Figures 2–3.
    #[must_use]
    pub fn nangate15_like() -> Self {
        let mut lib = CellLibrary::uniform(1.0, 0.1, 1.0);
        // Delays are calibrated so the complete 8×8/22-bit MAC unit of
        // `circuits::MacCircuit` synthesizes to a ~180 ps critical path
        // (the paper's post-synthesis value at NanGate 15 nm, 5 GHz);
        // energies so that per-weight MAC power lands in the same
        // 400–1500 µW band as the paper's Fig. 2.
        let entries = [
            (CellKind::Inv, 2.3, 0.09, 0.9),
            (CellKind::Buf, 3.4, 0.13, 1.1),
            (CellKind::Nand2, 3.6, 0.16, 1.3),
            (CellKind::Nor2, 4.1, 0.17, 1.3),
            (CellKind::And2, 4.9, 0.20, 1.6),
            (CellKind::Or2, 4.9, 0.20, 1.6),
            (CellKind::Xor2, 6.1, 0.31, 2.2),
            (CellKind::Xnor2, 6.1, 0.31, 2.2),
            (CellKind::Mux2, 6.6, 0.29, 2.4),
            (CellKind::Aoi21, 4.5, 0.21, 1.8),
            (CellKind::Oai21, 4.5, 0.21, 1.8),
            (CellKind::Maj3, 5.8, 0.28, 2.6),
            (CellKind::Xor3, 8.7, 0.48, 3.4),
        ];
        for (kind, delay_ps, energy_fj, leakage_nw) in entries {
            lib.set(
                kind,
                CellParams {
                    delay_ps,
                    energy_fj,
                    leakage_nw,
                },
            );
        }
        lib
    }

    /// Parameters of a cell kind.
    #[must_use]
    pub fn params(&self, kind: CellKind) -> CellParams {
        self.params[Self::index(kind)]
    }

    /// Overrides the parameters of a cell kind.
    ///
    /// # Panics
    ///
    /// Panics if `params.delay_ps` is NaN, infinite, negative, or too
    /// large for the engines' femtosecond representation.
    pub fn set(&mut self, kind: CellKind, params: CellParams) {
        validate_delay_ps(params.delay_ps);
        self.params[Self::index(kind)] = params;
    }

    /// Returns a copy of this library with every delay scaled by `factor`.
    ///
    /// Used by the voltage-scaling model: lowering VDD slows every cell by
    /// the same first-order factor.
    ///
    /// # Panics
    ///
    /// Panics if any scaled delay leaves the legal range (e.g. a NaN,
    /// negative or overflow-inducing `factor`).
    #[must_use]
    pub fn with_delay_scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        for p in &mut out.params {
            p.delay_ps *= factor;
            validate_delay_ps(p.delay_ps);
        }
        out
    }

    fn index(kind: CellKind) -> usize {
        match kind {
            CellKind::Inv => 0,
            CellKind::Buf => 1,
            CellKind::Nand2 => 2,
            CellKind::Nor2 => 3,
            CellKind::And2 => 4,
            CellKind::Or2 => 5,
            CellKind::Xor2 => 6,
            CellKind::Xnor2 => 7,
            CellKind::Mux2 => 8,
            CellKind::Aoi21 => 9,
            CellKind::Oai21 => 10,
            CellKind::Maj3 => 11,
            CellKind::Xor3 => 12,
        }
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::nangate15_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_usage() {
        for &kind in CellKind::all() {
            assert!((1..=3).contains(&kind.arity()), "{kind} arity out of range");
        }
    }

    #[test]
    fn inv_truth_table() {
        assert!(CellKind::Inv.eval(false, false, false));
        assert!(!CellKind::Inv.eval(true, false, false));
    }

    #[test]
    fn nand_truth_table() {
        assert!(CellKind::Nand2.eval(false, false, false));
        assert!(CellKind::Nand2.eval(true, false, false));
        assert!(CellKind::Nand2.eval(false, true, false));
        assert!(!CellKind::Nand2.eval(true, true, false));
    }

    #[test]
    fn xor3_is_parity() {
        for bits in 0..8u8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(CellKind::Xor3.eval(a, b, c), a ^ b ^ c);
        }
    }

    #[test]
    fn maj3_is_majority() {
        for bits in 0..8u8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let expected = (a as u8 + b as u8 + c as u8) >= 2;
            assert_eq!(CellKind::Maj3.eval(a, b, c), expected);
        }
    }

    #[test]
    fn mux_selects() {
        assert!(!CellKind::Mux2.eval(false, true, false));
        assert!(CellKind::Mux2.eval(false, true, true));
    }

    #[test]
    fn aoi_oai_truth_tables() {
        for bits in 0..8u8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(CellKind::Aoi21.eval(a, b, c), !((a && b) || c));
            assert_eq!(CellKind::Oai21.eval(a, b, c), !((a || b) && c));
        }
    }

    #[test]
    fn truth_table_matches_eval_for_every_kind() {
        for &kind in CellKind::all() {
            let tt = kind.truth_table();
            for idx in 0..8u8 {
                let (a, b, c) = (idx & 1 != 0, idx & 2 != 0, idx & 4 != 0);
                assert_eq!(
                    tt >> idx & 1 == 1,
                    kind.eval(a, b, c),
                    "{kind} minterm {idx}"
                );
            }
        }
    }

    #[test]
    fn default_library_is_nangate_like() {
        assert_eq!(CellLibrary::default(), CellLibrary::nangate15_like());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn uniform_rejects_negative_delay() {
        let _ = CellLibrary::uniform(-1.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn uniform_rejects_nan_delay() {
        let _ = CellLibrary::uniform(f64::NAN, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn set_rejects_infinite_delay() {
        let mut lib = CellLibrary::nangate15_like();
        lib.set(
            CellKind::Inv,
            CellParams {
                delay_ps: f64::INFINITY,
                energy_fj: 0.1,
                leakage_nw: 1.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "overflows the femtosecond range")]
    fn set_rejects_delay_beyond_fs_range() {
        let mut lib = CellLibrary::nangate15_like();
        lib.set(
            CellKind::Inv,
            CellParams {
                delay_ps: 5.0e6, // 5e9 fs > u32::MAX
                energy_fj: 0.1,
                leakage_nw: 1.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "overflows the femtosecond range")]
    fn scaling_rejects_overflowing_factor() {
        let _ = CellLibrary::nangate15_like().with_delay_scaled(1.0e9);
    }

    #[test]
    fn zero_delay_is_legal() {
        let lib = CellLibrary::uniform(0.0, 0.1, 1.0);
        assert_eq!(lib.params(CellKind::Inv).delay_ps, 0.0);
    }

    #[test]
    fn delay_scaling_scales_all_cells() {
        let lib = CellLibrary::nangate15_like();
        let slow = lib.with_delay_scaled(2.0);
        for &kind in CellKind::all() {
            let base = lib.params(kind);
            let scaled = slow.params(kind);
            assert!((scaled.delay_ps - 2.0 * base.delay_ps).abs() < 1e-12);
            assert_eq!(scaled.energy_fj, base.energy_fj);
        }
    }
}
