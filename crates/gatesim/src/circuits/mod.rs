//! Generators for the arithmetic circuits characterized by PowerPruning.
//!
//! * [`adder`] — ripple-carry and group-carry-lookahead adders.
//! * [`multiplier`] — Baugh-Wooley signed array multiplier (also the
//!   signed×unsigned variant used for int8 weights × uint8 activations).
//! * [`booth`] — radix-4 Booth-encoded multiplier, the hardware
//!   ablation for the per-weight power ranking.
//! * [`mac`] — the complete multiply-accumulate unit of a
//!   weight-stationary systolic array: `sum = psum + weight · activation`.

pub mod adder;
pub mod booth;
pub mod mac;
pub mod multiplier;

pub use adder::{AdderCircuit, AdderKind};
pub use booth::BoothMultiplierCircuit;
pub use mac::{MacCircuit, MultiplierKind};
pub use multiplier::MultiplierCircuit;
