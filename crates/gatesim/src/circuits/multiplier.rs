//! Baugh-Wooley signed array multiplier.
//!
//! The partial-product array uses the Baugh-Wooley two's complement
//! formulation: for A (n bits, signed) × B (m bits, signed), product
//! width W = n+m,
//!
//! ```text
//! P =   Σ_{i<n-1, j<m-1} AND(a_i, b_j)  · 2^(i+j)
//!     + Σ_{j<m-1}        NAND(a_{n-1}, b_j) · 2^(j+n-1)
//!     + Σ_{i<n-1}        NAND(a_i, b_{m-1}) · 2^(i+m-1)
//!     + AND(a_{n-1}, b_{m-1}) · 2^(n+m-2)
//!     + 2^(n-1) + 2^(m-1) + 2^(n+m-1)                (mod 2^W)
//! ```
//!
//! The array is reduced with carry-save full/half adder stages and a
//! final ripple stage, the classic array-multiplier structure whose
//! value-dependent glitching is exactly what PowerPruning exploits.
//!
//! The MAC variant multiplies a **signed** weight by an **unsigned**
//! activation (TensorFlow-style int8 weights × uint8 activations); this
//! is realized by zero-extending the activation to m+1 signed bits.

use crate::builder::NetlistBuilder;
use crate::netlist::{from_bits_signed, to_bits_into, NetId, Netlist};

/// Emits the Baugh-Wooley partial-product columns for signed `a` ×
/// signed `b` into `columns[pos]` lists (LSB-first positions).
fn baugh_wooley_columns(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_bits: &[NetId],
) -> Vec<Vec<NetId>> {
    let n = a_bits.len();
    let m = b_bits.len();
    let width = n + m;
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width];
    for (i, &ai) in a_bits.iter().enumerate() {
        for (j, &bj) in b_bits.iter().enumerate() {
            let sign_row = i == n - 1;
            let sign_col = j == m - 1;
            let pp = if sign_row ^ sign_col {
                b.nand2(ai, bj)
            } else {
                b.and2(ai, bj)
            };
            columns[i + j].push(pp);
        }
    }
    // Correction constants: +2^(n-1) + 2^(m-1) + 2^(n+m-1).
    let one = b.const1();
    columns[n - 1].push(one);
    columns[m - 1].push(one);
    columns[width - 1].push(one);
    columns
}

/// Carry-save reduction shared with the Booth multiplier.
pub(crate) fn reduce_columns_public(
    b: &mut NetlistBuilder,
    columns: Vec<Vec<NetId>>,
) -> Vec<NetId> {
    reduce_columns(b, columns)
}

/// Carry-save reduction of arbitrary column populations down to two rows,
/// then a final ripple-carry combine. Result wraps modulo 2^width.
fn reduce_columns(b: &mut NetlistBuilder, mut columns: Vec<Vec<NetId>>) -> Vec<NetId> {
    let width = columns.len();
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
        for pos in 0..width {
            let col = std::mem::take(&mut columns[pos]);
            let mut idx = 0;
            while col.len() - idx >= 3 {
                let (s, c) = b.full_adder(col[idx], col[idx + 1], col[idx + 2]);
                next[pos].push(s);
                if pos + 1 < width {
                    next[pos + 1].push(c);
                }
                idx += 3;
            }
            if col.len() - idx == 2 && col.len() > 2 {
                // Compress stragglers of a tall column with a half adder
                // so progress is guaranteed.
                let (s, c) = b.half_adder(col[idx], col[idx + 1]);
                next[pos].push(s);
                if pos + 1 < width {
                    next[pos + 1].push(c);
                }
            } else {
                for &leftover in &col[idx..] {
                    next[pos].push(leftover);
                }
            }
        }
        columns = next;
    }
    // Final carry-propagate stage over the remaining (≤2)-entry columns.
    let zero = b.const0();
    let mut sums = Vec::with_capacity(width);
    let mut carry = zero;
    for col in columns.iter().take(width) {
        let x = *col.first().unwrap_or(&zero);
        let y = *col.get(1).unwrap_or(&zero);
        let (s, c) = b.full_adder(x, y, carry);
        sums.push(s);
        carry = c;
    }
    sums
}

/// Emits a full signed×signed Baugh-Wooley multiplier; returns the
/// product bus (n+m bits, two's complement).
pub fn signed_multiplier(b: &mut NetlistBuilder, a_bits: &[NetId], b_bits: &[NetId]) -> Vec<NetId> {
    assert!(
        a_bits.len() >= 2 && b_bits.len() >= 2,
        "multiplier operands must be at least 2 bits"
    );
    let columns = baugh_wooley_columns(b, a_bits, b_bits);
    reduce_columns(b, columns)
}

/// Emits a signed×unsigned multiplier (weight × activation) by
/// zero-extending the unsigned operand; returns the product bus
/// (`a.len() + b.len() + 1` bits, two's complement).
pub fn signed_unsigned_multiplier(
    b: &mut NetlistBuilder,
    a_bits: &[NetId],
    b_unsigned: &[NetId],
) -> Vec<NetId> {
    let zero = b.const0();
    let mut b_ext = b_unsigned.to_vec();
    b_ext.push(zero);
    signed_multiplier(b, a_bits, &b_ext)
}

/// A standalone multiplier netlist for a **signed** weight times an
/// **unsigned** activation, the MAC operand types of the paper.
///
/// Input port order is weight bus then activation bus, both LSB first.
///
/// # Examples
///
/// ```
/// use gatesim::circuits::MultiplierCircuit;
///
/// let mult = MultiplierCircuit::new(8, 8);
/// assert_eq!(mult.compute(-105, 213), -105 * 213);
/// assert_eq!(mult.compute(64, 255), 64 * 255);
/// ```
#[derive(Debug, Clone)]
pub struct MultiplierCircuit {
    netlist: Netlist,
    weight_bits: usize,
    act_bits: usize,
}

impl MultiplierCircuit {
    /// Builds a multiplier for `weight_bits`-bit signed weights times
    /// `act_bits`-bit unsigned activations.
    ///
    /// # Panics
    ///
    /// Panics if either width is below 2.
    #[must_use]
    pub fn new(weight_bits: usize, act_bits: usize) -> Self {
        assert!(
            weight_bits >= 2 && act_bits >= 2,
            "operand widths must be >= 2"
        );
        let mut b = NetlistBuilder::new(format!("bw_mult_{weight_bits}x{act_bits}"));
        let w = b.input_bus("w", weight_bits);
        let a = b.input_bus("a", act_bits);
        let product = signed_unsigned_multiplier(&mut b, &w, &a);
        for p in &product {
            b.output(*p);
        }
        MultiplierCircuit {
            netlist: b.finish(),
            weight_bits,
            act_bits,
        }
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Width of the signed weight operand.
    #[must_use]
    pub fn weight_bits(&self) -> usize {
        self.weight_bits
    }

    /// Width of the unsigned activation operand.
    #[must_use]
    pub fn act_bits(&self) -> usize {
        self.act_bits
    }

    /// Width of the product bus.
    #[must_use]
    pub fn product_bits(&self) -> usize {
        self.weight_bits + self.act_bits + 1
    }

    /// Packs `(weight, activation)` into the netlist's input vector.
    #[must_use]
    pub fn encode(&self, weight: i64, act: u64) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.weight_bits + self.act_bits);
        self.encode_into(weight, act, &mut v);
        v
    }

    /// Packs `(weight, activation)` into a reused buffer — the
    /// allocation-free companion of [`MultiplierCircuit::encode`] used
    /// by the batched characterization loops.
    pub fn encode_into(&self, weight: i64, act: u64, out: &mut Vec<bool>) {
        out.clear();
        to_bits_into(weight, self.weight_bits, out);
        to_bits_into(act as i64, self.act_bits, out);
    }

    /// Evaluates the multiplier functionally.
    #[must_use]
    pub fn compute(&self, weight: i64, act: u64) -> i64 {
        let out = self.netlist.evaluate_outputs(&self.encode(weight, act));
        from_bits_signed(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{from_bits_signed, to_bits};

    #[test]
    fn signed_signed_4x4_exhaustive() {
        let mut b = NetlistBuilder::new("bw4x4");
        let x = b.input_bus("x", 4);
        let y = b.input_bus("y", 4);
        let p = signed_multiplier(&mut b, &x, &y);
        for net in &p {
            b.output(*net);
        }
        let nl = b.finish();
        for a in -8i64..8 {
            for c in -8i64..8 {
                let mut inputs = to_bits(a, 4);
                inputs.extend(to_bits(c, 4));
                let out = nl.evaluate_outputs(&inputs);
                assert_eq!(from_bits_signed(&out), a * c, "failed {a}*{c}");
            }
        }
    }

    #[test]
    fn signed_signed_asymmetric_3x5_exhaustive() {
        let mut b = NetlistBuilder::new("bw3x5");
        let x = b.input_bus("x", 3);
        let y = b.input_bus("y", 5);
        let p = signed_multiplier(&mut b, &x, &y);
        for net in &p {
            b.output(*net);
        }
        let nl = b.finish();
        for a in -4i64..4 {
            for c in -16i64..16 {
                let mut inputs = to_bits(a, 3);
                inputs.extend(to_bits(c, 5));
                let out = nl.evaluate_outputs(&inputs);
                assert_eq!(from_bits_signed(&out), a * c, "failed {a}*{c}");
            }
        }
    }

    #[test]
    fn signed_unsigned_4x4_exhaustive() {
        let mult = MultiplierCircuit::new(4, 4);
        for w in -8i64..8 {
            for a in 0u64..16 {
                assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
            }
        }
    }

    #[test]
    fn full_8x8_sampled() {
        let mult = MultiplierCircuit::new(8, 8);
        let mut x: u64 = 0xdeadbeef;
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((x & 0xff) as i64) - 128;
            let a = (x >> 8) & 0xff;
            assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
        }
    }

    #[test]
    fn full_8x8_extremes() {
        let mult = MultiplierCircuit::new(8, 8);
        for w in [-128i64, -127, -105, -2, -1, 0, 1, 2, 64, 127] {
            for a in [0u64, 1, 2, 127, 128, 254, 255] {
                assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
            }
        }
    }

    #[test]
    fn gate_count_is_plausible_for_an_array_multiplier() {
        let mult = MultiplierCircuit::new(8, 8);
        let gates = mult.netlist().gate_count();
        assert!(
            (150..3000).contains(&gates),
            "unexpected gate count {gates}"
        );
    }
}
