//! Adder circuit generators.
//!
//! Two architectures are provided:
//!
//! * [`AdderKind::Ripple`] — a plain ripple-carry chain of full adders.
//! * [`AdderKind::Cla4`] — 4-bit group carry-lookahead with ripple
//!   between groups, the structure synthesis tools commonly emit for
//!   medium-width accumulators.
//!
//! Both are pure combinational netlists with LSB-first buses, wrapping
//! modulo 2^width (no carry-out port), matching the accumulator of the
//! paper's MAC unit.

use crate::builder::NetlistBuilder;
use crate::netlist::{from_bits_unsigned, to_bits, NetId, Netlist};

/// Adder micro-architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdderKind {
    /// Ripple-carry chain.
    Ripple,
    /// 4-bit group carry-lookahead (default).
    #[default]
    Cla4,
}

/// Emits gates computing `a + b + cin` over equal-width LSB-first buses.
///
/// Returns the sum bits (same width; result wraps modulo 2^width).
///
/// # Panics
///
/// Panics if `a` and `b` have different widths or are empty.
pub fn add_buses(
    b: &mut NetlistBuilder,
    kind: AdderKind,
    x: &[NetId],
    y: &[NetId],
    cin: Option<NetId>,
) -> Vec<NetId> {
    assert!(!x.is_empty(), "adder width must be positive");
    assert_eq!(x.len(), y.len(), "adder operand widths must match");
    match kind {
        AdderKind::Ripple => ripple(b, x, y, cin),
        AdderKind::Cla4 => cla4(b, x, y, cin),
    }
}

fn ripple(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId], cin: Option<NetId>) -> Vec<NetId> {
    let mut carry = cin.unwrap_or_else(|| b.const0());
    let mut sums = Vec::with_capacity(x.len());
    for (&xi, &yi) in x.iter().zip(y) {
        let (s, c) = b.full_adder(xi, yi, carry);
        sums.push(s);
        carry = c;
    }
    sums
}

/// 4-bit group CLA: within a group, carries are produced by two-level
/// generate/propagate logic; groups are chained by their group carry.
fn cla4(b: &mut NetlistBuilder, x: &[NetId], y: &[NetId], cin: Option<NetId>) -> Vec<NetId> {
    let width = x.len();
    let mut carry = cin.unwrap_or_else(|| b.const0());
    let mut sums = Vec::with_capacity(width);
    let mut lo = 0;
    while lo < width {
        let hi = (lo + 4).min(width);
        // Per-bit generate/propagate.
        let mut g = Vec::new();
        let mut p = Vec::new();
        for i in lo..hi {
            g.push(b.and2(x[i], y[i]));
            p.push(b.xor2(x[i], y[i]));
        }
        // Carries into each bit of the group, as flattened lookahead
        // product terms so depth does not grow with bit position.
        let mut flat = vec![carry];
        for i in 0..(hi - lo) {
            // c_{i+1} = OR_{k<=i} (g_k & AND_{k<j<=i} p_j) | (AND p_0..p_i & c0)
            let mut terms: Vec<NetId> = Vec::new();
            for k in 0..=i {
                let mut t = g[k];
                for pj in p.iter().take(i + 1).skip(k + 1) {
                    t = b.and2(t, *pj);
                }
                terms.push(t);
            }
            let mut pall = p[0];
            for pj in p.iter().take(i + 1).skip(1) {
                pall = b.and2(pall, *pj);
            }
            let pc0 = b.and2(pall, carry);
            terms.push(pc0);
            let mut acc = terms[0];
            for t in terms.iter().skip(1) {
                acc = b.or2(acc, *t);
            }
            flat.push(acc);
        }
        for i in 0..(hi - lo) {
            sums.push(b.xor2(p[i], flat[i]));
        }
        carry = flat[hi - lo];
        lo = hi;
    }
    sums
}

/// A standalone adder netlist with `a`, `b` input buses and a `sum`
/// output bus (wrapping, no carry out).
///
/// # Examples
///
/// ```
/// use gatesim::circuits::{AdderCircuit, AdderKind};
///
/// let adder = AdderCircuit::new(AdderKind::Cla4, 8);
/// assert_eq!(adder.compute(200, 100), (300 % 256));
/// ```
#[derive(Debug, Clone)]
pub struct AdderCircuit {
    netlist: Netlist,
    width: usize,
    kind: AdderKind,
}

impl AdderCircuit {
    /// Builds an adder of the given kind and width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(kind: AdderKind, width: usize) -> Self {
        assert!(width > 0, "adder width must be positive");
        let mut b = NetlistBuilder::new(format!("adder_{kind:?}_{width}"));
        let x = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let sums = add_buses(&mut b, kind, &x, &y, None);
        for s in &sums {
            b.output(*s);
        }
        AdderCircuit {
            netlist: b.finish(),
            width,
            kind,
        }
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Operand width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The adder architecture.
    #[must_use]
    pub fn kind(&self) -> AdderKind {
        self.kind
    }

    /// Packs two unsigned operands into the netlist's input vector.
    #[must_use]
    pub fn encode(&self, a: u64, b: u64) -> Vec<bool> {
        let mut v = to_bits(a as i64, self.width);
        v.extend(to_bits(b as i64, self.width));
        v
    }

    /// Evaluates the adder functionally: `(a + b) mod 2^width`.
    #[must_use]
    pub fn compute(&self, a: u64, b: u64) -> u64 {
        let out = self.netlist.evaluate_outputs(&self.encode(a, b));
        from_bits_unsigned(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(kind: AdderKind, width: usize) {
        let adder = AdderCircuit::new(kind, width);
        let mask = (1u64 << width) - 1;
        for a in 0..(1u64 << width) {
            for b in 0..(1u64 << width) {
                assert_eq!(
                    adder.compute(a, b),
                    (a + b) & mask,
                    "{kind:?} {width}-bit failed at {a}+{b}"
                );
            }
        }
    }

    #[test]
    fn ripple_4bit_exhaustive() {
        exhaustive_check(AdderKind::Ripple, 4);
    }

    #[test]
    fn cla_4bit_exhaustive() {
        exhaustive_check(AdderKind::Cla4, 4);
    }

    #[test]
    fn cla_6bit_exhaustive_crosses_group_boundary() {
        exhaustive_check(AdderKind::Cla4, 6);
    }

    #[test]
    fn wide_adders_sampled() {
        for kind in [AdderKind::Ripple, AdderKind::Cla4] {
            let adder = AdderCircuit::new(kind, 22);
            let mask = (1u64 << 22) - 1;
            let mut x: u64 = 0x12345;
            for _ in 0..200 {
                // simple LCG-style test pattern
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = x & mask;
                let b = (x >> 22) & mask;
                assert_eq!(adder.compute(a, b), (a + b) & mask);
            }
        }
    }

    #[test]
    fn cla_is_shallower_than_ripple() {
        use crate::cells::CellLibrary;
        use crate::sta::Sta;
        let lib = CellLibrary::nangate15_like();
        let ripple = AdderCircuit::new(AdderKind::Ripple, 22);
        let cla = AdderCircuit::new(AdderKind::Cla4, 22);
        let d_ripple = Sta::new(ripple.netlist(), &lib).critical_path_ps();
        let d_cla = Sta::new(cla.netlist(), &lib).critical_path_ps();
        assert!(
            d_cla < d_ripple,
            "CLA ({d_cla} ps) should beat ripple ({d_ripple} ps)"
        );
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = AdderCircuit::new(AdderKind::Ripple, 0);
    }
}
