//! The multiply-accumulate unit of a weight-stationary systolic array.
//!
//! `sum = psum + weight · activation`, with a signed `weight_bits`-bit
//! weight, an unsigned `act_bits`-bit activation and an `acc_bits`-bit
//! two's complement partial sum (22 bits for the paper's 64×64 array).
//! The product is sign-extended to the accumulator width and added with
//! a carry-lookahead adder.
//!
//! The struct keeps the net ids of the multiplier product bits so the
//! characterization code can compose multiplier DTA with adder STA
//! exactly as in the paper's Fig. 5.

use crate::builder::NetlistBuilder;
use crate::circuits::adder::{add_buses, AdderKind};
use crate::circuits::booth::booth_multiplier;
use crate::circuits::multiplier::signed_unsigned_multiplier;
use crate::netlist::{from_bits_signed, to_bits_into, NetId, Netlist};

/// Multiplier micro-architecture of the MAC unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MultiplierKind {
    /// Baugh-Wooley partial-product array (default).
    #[default]
    BaughWooley,
    /// Radix-4 Booth recoding — halves the partial products and changes
    /// which weight values are cheap, the hardware ablation of
    /// DESIGN.md §7.
    Booth,
}

/// A complete MAC-unit netlist with port metadata.
///
/// # Examples
///
/// ```
/// use gatesim::circuits::MacCircuit;
///
/// let mac = MacCircuit::new(8, 8, 22);
/// assert_eq!(mac.compute(-105, 213, 1000), 1000 - 105 * 213);
/// ```
#[derive(Debug, Clone)]
pub struct MacCircuit {
    netlist: Netlist,
    weight_bits: usize,
    act_bits: usize,
    acc_bits: usize,
    product_nets: Vec<NetId>,
    psum_ports: Vec<NetId>,
}

impl MacCircuit {
    /// Builds a MAC unit with the default carry-lookahead accumulator.
    ///
    /// # Panics
    ///
    /// Panics if widths are too small (operands < 2 bits) or the
    /// accumulator is narrower than the product.
    #[must_use]
    pub fn new(weight_bits: usize, act_bits: usize, acc_bits: usize) -> Self {
        Self::with_adder(weight_bits, act_bits, acc_bits, AdderKind::Cla4)
    }

    /// Builds a MAC unit with an explicit accumulator-adder architecture.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MacCircuit::new`].
    #[must_use]
    pub fn with_adder(
        weight_bits: usize,
        act_bits: usize,
        acc_bits: usize,
        adder: AdderKind,
    ) -> Self {
        Self::with_architecture(
            weight_bits,
            act_bits,
            acc_bits,
            adder,
            MultiplierKind::BaughWooley,
        )
    }

    /// Builds a MAC unit with explicit adder and multiplier
    /// architectures.
    ///
    /// # Panics
    ///
    /// Same conditions as [`MacCircuit::new`].
    #[must_use]
    pub fn with_architecture(
        weight_bits: usize,
        act_bits: usize,
        acc_bits: usize,
        adder: AdderKind,
        multiplier: MultiplierKind,
    ) -> Self {
        assert!(
            weight_bits >= 2 && act_bits >= 2,
            "operand widths must be >= 2"
        );
        let product_bits = weight_bits + act_bits + 1;
        assert!(
            acc_bits >= product_bits,
            "accumulator ({acc_bits}b) must hold the product ({product_bits}b)"
        );
        let mut b = NetlistBuilder::new(format!(
            "mac_{weight_bits}x{act_bits}_acc{acc_bits}{}",
            match multiplier {
                MultiplierKind::BaughWooley => "",
                MultiplierKind::Booth => "_booth",
            }
        ));
        let w = b.input_bus("w", weight_bits);
        let a = b.input_bus("a", act_bits);
        let psum = b.input_bus("p", acc_bits);
        let product = match multiplier {
            MultiplierKind::BaughWooley => signed_unsigned_multiplier(&mut b, &w, &a),
            MultiplierKind::Booth => booth_multiplier(&mut b, &w, &a),
        };
        // Sign-extend the product to the accumulator width.
        let sign = *product.last().expect("product is non-empty");
        let mut addend = product.clone();
        while addend.len() < acc_bits {
            addend.push(sign);
        }
        let sum = add_buses(&mut b, adder, &psum, &addend, None);
        for s in &sum {
            b.output(*s);
        }
        MacCircuit {
            netlist: b.finish(),
            weight_bits,
            act_bits,
            acc_bits,
            product_nets: product,
            psum_ports: psum,
        }
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Width of the signed weight operand.
    #[must_use]
    pub fn weight_bits(&self) -> usize {
        self.weight_bits
    }

    /// Width of the unsigned activation operand.
    #[must_use]
    pub fn act_bits(&self) -> usize {
        self.act_bits
    }

    /// Width of the partial-sum/accumulator bus.
    #[must_use]
    pub fn acc_bits(&self) -> usize {
        self.acc_bits
    }

    /// Net ids of the multiplier product bits (LSB first), the seam at
    /// which multiplier DTA and adder STA are composed.
    #[must_use]
    pub fn product_nets(&self) -> &[NetId] {
        &self.product_nets
    }

    /// Net ids of the partial-sum input ports.
    #[must_use]
    pub fn psum_ports(&self) -> &[NetId] {
        &self.psum_ports
    }

    /// Packs `(weight, activation, partial sum)` into the input vector.
    #[must_use]
    pub fn encode(&self, weight: i64, act: u64, psum: i64) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.weight_bits + self.act_bits + self.acc_bits);
        self.encode_into(weight, act, psum, &mut v);
        v
    }

    /// Packs `(weight, activation, partial sum)` into a reused buffer —
    /// the allocation-free companion of [`MacCircuit::encode`] used by
    /// the batched characterization loops.
    pub fn encode_into(&self, weight: i64, act: u64, psum: i64, out: &mut Vec<bool>) {
        out.clear();
        to_bits_into(weight, self.weight_bits, out);
        to_bits_into(act as i64, self.act_bits, out);
        to_bits_into(psum, self.acc_bits, out);
    }

    /// Evaluates the MAC functionally: `psum + weight·act`, wrapping in
    /// `acc_bits`-bit two's complement.
    #[must_use]
    pub fn compute(&self, weight: i64, act: u64, psum: i64) -> i64 {
        let out = self
            .netlist
            .evaluate_outputs(&self.encode(weight, act, psum));
        from_bits_signed(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mac_exhaustive() {
        let mac = MacCircuit::new(3, 3, 8);
        for w in -4i64..4 {
            for a in 0u64..8 {
                for p in [-128i64, -77, -1, 0, 1, 55, 127] {
                    let expected = {
                        let raw = p + w * a as i64;
                        // wrap to 8-bit two's complement
                        let wrapped = ((raw % 256) + 256) % 256;
                        if wrapped >= 128 {
                            wrapped - 256
                        } else {
                            wrapped
                        }
                    };
                    assert_eq!(mac.compute(w, a, p), expected, "failed {p} + {w}*{a}");
                }
            }
        }
    }

    #[test]
    fn paper_sized_mac_sampled() {
        let mac = MacCircuit::new(8, 8, 22);
        let mut x: u64 = 42;
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((x & 0xff) as i64) - 128;
            let a = (x >> 8) & 0xff;
            let p = (((x >> 16) & 0xfffff) as i64) - (1 << 19); // fits comfortably in 22b
            assert_eq!(mac.compute(w, a, p), p + w * a as i64, "failed {p}+{w}*{a}");
        }
    }

    #[test]
    fn ripple_variant_matches_cla_variant() {
        let cla = MacCircuit::with_adder(4, 4, 10, AdderKind::Cla4);
        let ripple = MacCircuit::with_adder(4, 4, 10, AdderKind::Ripple);
        for w in [-8i64, -3, 0, 5, 7] {
            for a in [0u64, 3, 9, 15] {
                for p in [-512i64, -100, 0, 200, 511] {
                    assert_eq!(cla.compute(w, a, p), ripple.compute(w, a, p));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must hold the product")]
    fn narrow_accumulator_rejected() {
        let _ = MacCircuit::new(8, 8, 10);
    }

    #[test]
    fn product_nets_are_within_netlist() {
        let mac = MacCircuit::new(8, 8, 22);
        for &net in mac.product_nets() {
            assert!(net.index() < mac.netlist().net_count());
        }
        assert_eq!(mac.product_nets().len(), 17);
    }

    #[test]
    fn booth_mac_matches_baugh_wooley_mac() {
        let bw = MacCircuit::new(4, 4, 10);
        let booth = MacCircuit::with_architecture(4, 4, 10, AdderKind::Cla4, MultiplierKind::Booth);
        for w in -8i64..8 {
            for a in [0u64, 3, 7, 12, 15] {
                for p in [-512i64, -31, 0, 100, 511] {
                    assert_eq!(bw.compute(w, a, p), booth.compute(w, a, p), "{p}+{w}*{a}");
                }
            }
        }
    }

    #[test]
    fn booth_mac_paper_size_sampled() {
        let mac = MacCircuit::with_architecture(8, 8, 22, AdderKind::Cla4, MultiplierKind::Booth);
        let mut x: u64 = 99;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((x & 0xff) as i64) - 128;
            let a = (x >> 8) & 0xff;
            let p = (((x >> 16) & 0xfffff) as i64) - (1 << 19);
            assert_eq!(mac.compute(w, a, p), p + w * a as i64);
        }
    }
}
