//! Radix-4 Booth-encoded signed multiplier.
//!
//! An alternative multiplier micro-architecture to the Baugh-Wooley
//! array of [`crate::circuits::multiplier`]: the weight operand is
//! Booth-encoded into ⌈(n+1)/2⌉ digits in {−2,−1,0,+1,+2}, halving the
//! partial-product count. Because the recoding changes *which* weight
//! values cause switching (e.g. runs of ones become cheap), it is the
//! natural hardware ablation for PowerPruning: the per-weight power
//! ranking is architecture-dependent, and the method re-derives it from
//! characterization instead of assuming it.
//!
//! The generated netlist computes signed(weight) × unsigned(activation)
//! like [`crate::circuits::MultiplierCircuit`], with the same port
//! order, so the two are drop-in interchangeable.

use crate::builder::NetlistBuilder;
use crate::netlist::{from_bits_signed, to_bits_into, NetId, Netlist};

/// Emits one Booth partial product row for digit `i` (weight bits
/// `w[2i-1], w[2i], w[2i+1]`), returning the row bits (LSB first, width
/// `m + 2`) *before* shifting, plus the "negate" signal used for the
/// two's complement correction (+1 at the row's LSB position).
fn booth_row(
    b: &mut NetlistBuilder,
    w_minus: NetId, // w[2i-1] (const0 for i = 0)
    w_mid: NetId,   // w[2i]
    w_plus: NetId,  // w[2i+1] (sign-extended for the top digit)
    act: &[NetId],  // multiplicand, zero-extended unsigned
) -> (Vec<NetId>, NetId) {
    let m = act.len();
    // Digit decoding:
    //   single = w_minus XOR w_mid        (digit is ±1)
    //   double = (w_minus == w_mid) AND (w_plus != w_mid) (digit is ±2)
    //   neg    = w_plus                   (digit sign)
    let single = b.xor2(w_minus, w_mid);
    let eq_lo = b.xnor2(w_minus, w_mid);
    let ne_hi = b.xor2(w_plus, w_mid);
    let double = b.and2(eq_lo, ne_hi);
    let neg = w_plus;

    // Row value before negation: single ? A : (double ? 2A : 0), built
    // bitwise: bit j = (single & a_j) | (double & a_{j-1}).
    let zero = b.const0();
    let mut row = Vec::with_capacity(m + 2);
    for j in 0..m + 2 {
        let a_j = if j < m { act[j] } else { zero };
        let a_jm1 = if j >= 1 && j - 1 < m {
            act[j - 1]
        } else {
            zero
        };
        let s_term = b.and2(single, a_j);
        let d_term = b.and2(double, a_jm1);
        let val = b.or2(s_term, d_term);
        // Conditional inversion for negative digits (two's complement
        // completed by adding `neg` at the row LSB).
        let bit = b.xor2(val, neg);
        row.push(bit);
    }
    (row, neg)
}

/// Emits a radix-4 Booth multiplier for signed `w_bits` × unsigned
/// `a_bits`; returns the product bus (`w_bits + a_bits + 1` bits, two's
/// complement).
///
/// # Panics
///
/// Panics if either operand is narrower than 2 bits.
pub fn booth_multiplier(
    b: &mut NetlistBuilder,
    w_bits: &[NetId],
    a_unsigned: &[NetId],
) -> Vec<NetId> {
    assert!(
        w_bits.len() >= 2 && a_unsigned.len() >= 2,
        "operands must be >= 2 bits"
    );
    let n = w_bits.len();
    let m = a_unsigned.len();
    let width = n + m + 1;
    let zero = b.const0();
    let sign = *w_bits.last().expect("non-empty weight");

    let digits = n.div_ceil(2);
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); width];

    for i in 0..digits {
        let idx = |k: isize| -> NetId {
            if k < 0 {
                zero
            } else if (k as usize) < n {
                w_bits[k as usize]
            } else {
                sign // sign extension of the weight
            }
        };
        let w_minus = idx(2 * i as isize - 1);
        let w_mid = idx(2 * i as isize);
        let w_plus = idx(2 * i as isize + 1);
        let (row, neg) = booth_row(b, w_minus, w_mid, w_plus, a_unsigned);
        let shift = 2 * i;
        // Row bits (sign-extended to the top of the product).
        let row_sign = *row.last().expect("non-empty row");
        for pos in shift..width {
            let j = pos - shift;
            let bit = if j < row.len() { row[j] } else { row_sign };
            columns[pos].push(bit);
        }
        // +1 correction at the row LSB for negative digits.
        if shift < width {
            columns[shift].push(neg);
        }
    }

    super::multiplier::reduce_columns_public(b, columns)
}

/// A standalone Booth multiplier netlist, drop-in compatible with
/// [`crate::circuits::MultiplierCircuit`].
///
/// # Examples
///
/// ```
/// use gatesim::circuits::booth::BoothMultiplierCircuit;
///
/// let mult = BoothMultiplierCircuit::new(8, 8);
/// assert_eq!(mult.compute(-105, 213), -105 * 213);
/// ```
#[derive(Debug, Clone)]
pub struct BoothMultiplierCircuit {
    netlist: Netlist,
    weight_bits: usize,
    act_bits: usize,
}

impl BoothMultiplierCircuit {
    /// Builds a Booth multiplier for `weight_bits`-bit signed weights ×
    /// `act_bits`-bit unsigned activations.
    ///
    /// # Panics
    ///
    /// Panics if either width is below 2.
    #[must_use]
    pub fn new(weight_bits: usize, act_bits: usize) -> Self {
        assert!(
            weight_bits >= 2 && act_bits >= 2,
            "operand widths must be >= 2"
        );
        let mut b = NetlistBuilder::new(format!("booth_mult_{weight_bits}x{act_bits}"));
        let w = b.input_bus("w", weight_bits);
        let a = b.input_bus("a", act_bits);
        let product = booth_multiplier(&mut b, &w, &a);
        for p in &product {
            b.output(*p);
        }
        BoothMultiplierCircuit {
            netlist: b.finish(),
            weight_bits,
            act_bits,
        }
    }

    /// The underlying netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Width of the signed weight operand.
    #[must_use]
    pub fn weight_bits(&self) -> usize {
        self.weight_bits
    }

    /// Width of the unsigned activation operand.
    #[must_use]
    pub fn act_bits(&self) -> usize {
        self.act_bits
    }

    /// Packs `(weight, activation)` into the input vector.
    #[must_use]
    pub fn encode(&self, weight: i64, act: u64) -> Vec<bool> {
        let mut v = Vec::with_capacity(self.weight_bits + self.act_bits);
        self.encode_into(weight, act, &mut v);
        v
    }

    /// Packs `(weight, activation)` into a reused buffer — the
    /// allocation-free companion of [`BoothMultiplierCircuit::encode`] used
    /// by the batched characterization loops.
    pub fn encode_into(&self, weight: i64, act: u64, out: &mut Vec<bool>) {
        out.clear();
        to_bits_into(weight, self.weight_bits, out);
        to_bits_into(act as i64, self.act_bits, out);
    }

    /// Evaluates the multiplier functionally.
    #[must_use]
    pub fn compute(&self, weight: i64, act: u64) -> i64 {
        let out = self.netlist.evaluate_outputs(&self.encode(weight, act));
        from_bits_signed(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booth_4x4_exhaustive() {
        let mult = BoothMultiplierCircuit::new(4, 4);
        for w in -8i64..8 {
            for a in 0u64..16 {
                assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
            }
        }
    }

    #[test]
    fn booth_5x3_exhaustive_odd_widths() {
        let mult = BoothMultiplierCircuit::new(5, 3);
        for w in -16i64..16 {
            for a in 0u64..8 {
                assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
            }
        }
    }

    #[test]
    fn booth_8x8_sampled() {
        let mult = BoothMultiplierCircuit::new(8, 8);
        let mut x: u64 = 0xabcdef;
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let w = ((x & 0xff) as i64) - 128;
            let a = (x >> 8) & 0xff;
            assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
        }
    }

    #[test]
    fn booth_8x8_extremes() {
        let mult = BoothMultiplierCircuit::new(8, 8);
        for w in [-128i64, -127, -105, -1, 0, 1, 64, 127] {
            for a in [0u64, 1, 127, 128, 255] {
                assert_eq!(mult.compute(w, a), w * a as i64, "failed {w}*{a}");
            }
        }
    }

    #[test]
    fn booth_has_fewer_partial_product_rows_than_array() {
        use crate::circuits::MultiplierCircuit;
        let booth = BoothMultiplierCircuit::new(8, 8);
        let array = MultiplierCircuit::new(8, 8);
        // Booth halves the rows; with the row-select logic the total
        // gate count should still come out smaller or comparable.
        assert!(
            booth.netlist().gate_count() < array.netlist().gate_count() * 3 / 2,
            "booth {} vs array {}",
            booth.netlist().gate_count(),
            array.netlist().gate_count()
        );
    }
}
