//! Classification metrics beyond plain top-1 accuracy.

use crate::tensor::Tensor;

/// A confusion matrix over `classes` labels.
///
/// # Examples
///
/// ```
/// use nn::metrics::ConfusionMatrix;
/// use nn::Tensor;
///
/// let logits = Tensor::from_vec(&[2, 2], vec![2.0, 0.0, 0.0, 2.0]);
/// let mut cm = ConfusionMatrix::new(2);
/// cm.update(&logits, &[0, 0]);
/// assert_eq!(cm.count(0, 0), 1); // one correct
/// assert_eq!(cm.count(0, 1), 1); // one confused 0 -> 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    /// counts[truth * classes + predicted]
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix for `classes` labels.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "need at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Accumulates a batch of logits against true labels.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or out-of-range labels.
    pub fn update(&mut self, logits: &Tensor, labels: &[usize]) {
        let [b, c]: [usize; 2] = logits.shape()[..].try_into().expect("[B, C] logits");
        assert_eq!(c, self.classes, "class count mismatch");
        assert_eq!(labels.len(), b);
        for (bi, &truth) in labels.iter().enumerate() {
            assert!(truth < self.classes, "label out of range");
            let row = &logits.data()[bi * c..(bi + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.counts[truth * self.classes + pred] += 1;
        }
    }

    /// Number of samples with true label `truth` predicted as `pred`.
    #[must_use]
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.classes + pred]
    }

    /// Total samples accumulated.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        if self.total() == 0 {
            0.0
        } else {
            correct as f64 / self.total() as f64
        }
    }

    /// Per-class recall (correct / occurrences of the class); `None` for
    /// classes never seen.
    #[must_use]
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Per-class precision (correct / predictions of the class); `None`
    /// for classes never predicted.
    #[must_use]
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|t| self.count(t, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }
}

/// Top-k accuracy: fraction of rows whose true label is among the k
/// highest logits.
///
/// # Panics
///
/// Panics on shape mismatch or `k == 0`.
#[must_use]
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let [b, c]: [usize; 2] = logits.shape()[..].try_into().expect("[B, C] logits");
    assert_eq!(labels.len(), b);
    let k = k.min(c);
    let mut hits = 0usize;
    for (bi, &truth) in labels.iter().enumerate() {
        let row = &logits.data()[bi * c..(bi + 1) * c];
        let mut idx: Vec<usize> = (0..c).collect();
        idx.sort_by(|&i, &j| row[j].partial_cmp(&row[i]).expect("finite logits"));
        if idx[..k].contains(&truth) {
            hits += 1;
        }
    }
    hits as f64 / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Tensor {
        // 3 samples, 3 classes
        Tensor::from_vec(
            &[3, 3],
            vec![
                3.0, 2.0, 1.0, // pred 0
                1.0, 3.0, 2.0, // pred 1
                1.0, 2.0, 3.0, // pred 2
            ],
        )
    }

    #[test]
    fn confusion_counts_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.update(&logits(), &[0, 1, 1]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 2), 1);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_and_precision() {
        let mut cm = ConfusionMatrix::new(3);
        cm.update(&logits(), &[0, 1, 1]);
        assert_eq!(cm.recall(0), Some(1.0));
        assert_eq!(cm.recall(1), Some(0.5));
        assert_eq!(cm.recall(2), None);
        assert_eq!(cm.precision(2), Some(0.0));
    }

    #[test]
    fn top_k_widens_with_k() {
        let l = logits();
        let labels = [1usize, 0, 0];
        let t1 = top_k_accuracy(&l, &labels, 1);
        let t2 = top_k_accuracy(&l, &labels, 2);
        let t3 = top_k_accuracy(&l, &labels, 3);
        assert!(t1 <= t2 && t2 <= t3);
        assert_eq!(t3, 1.0);
    }
}
