//! From-scratch quantization-aware neural network substrate.
//!
//! This crate replaces the TensorFlow + GPU training flow of the
//! PowerPruning paper (see DESIGN.md §2) with a small, explicit
//! framework purpose-built for the paper's needs:
//!
//! * [`tensor`] / [`linalg`] — dense `f32` tensors and GEMM kernels.
//! * [`layers`] — Conv2d (grouped/depthwise), Dense, BatchNorm2d,
//!   pooling and clipped-ReLU layers with explicit backward passes.
//! * [`quant`] — int8 weight (255 codes) and uint8 activation (256
//!   codes) fake quantization, plus [`quant::ValueSet`] restriction with
//!   straight-through-estimator training, the core hook PowerPruning
//!   needs.
//! * [`model`] — sequential/residual composition and the [`Network`]
//!   wrapper exposing restriction and capture APIs.
//! * [`train`] / [`optim`] / [`loss`] — SGD training loop.
//! * [`data`] — synthetic datasets standing in for CIFAR/ImageNet.
//! * [`models`] — LeNet-5, ResNet-20, ResNet-50-mini and
//!   EfficientNet-Lite-mini builders.
//!
//! # Examples
//!
//! Train a tiny CNN on a synthetic dataset, then restrict its weights to
//! a handful of codes and keep training:
//!
//! ```
//! use nn::data::SyntheticSpec;
//! use nn::quant::ValueSet;
//! use nn::train::{train, TrainConfig};
//! use nn::models;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let data = SyntheticSpec { classes: 2, size: 8, channels: 1, samples: 32, noise: 0.05, seed: 1 }
//!     .generate();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = models::tiny_cnn("demo", 1, 8, 2, &mut rng);
//! net.quantize = true;
//! net.set_weight_restriction(Some(ValueSet::new([-64, -16, 0, 16, 64])));
//! let config = TrainConfig { epochs: 1, batch_size: 8, ..TrainConfig::default() };
//! let history = train(&mut net, &data, &config, &mut rng);
//! assert_eq!(history.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod layers;
pub mod linalg;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optim;
pub mod quant;
pub mod serialize;
pub mod tensor;
pub mod train;

pub use model::Network;
pub use quant::ValueSet;
pub use tensor::Tensor;
