//! Int8 quantization with restricted value sets.
//!
//! Matches the paper's setup: weights are quantized symmetrically to
//! **255** codes (−127..=127, keeping the distribution symmetric as
//! TensorFlow does), activations asymmetrically to **256** codes
//! (0..=255). PowerPruning then *restricts* which codes a network may
//! use: [`ValueSet`] holds the allowed codes and projection onto the
//! nearest allowed code happens in the forward pass, with the
//! straight-through estimator in the backward pass (the projection is
//! simply ignored when propagating gradients).

use crate::tensor::Tensor;
use std::fmt;

/// A sorted set of allowed quantized codes.
///
/// # Examples
///
/// ```
/// use nn::quant::ValueSet;
///
/// let set = ValueSet::new([0, -2, 4, 4]);
/// assert_eq!(set.codes(), &[-2, 0, 4]);
/// assert_eq!(set.project(3), 4);
/// assert_eq!(set.project(-100), -2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueSet {
    codes: Vec<i32>,
}

impl ValueSet {
    /// Builds a set from arbitrary codes (sorted and deduplicated).
    #[must_use]
    pub fn new(codes: impl IntoIterator<Item = i32>) -> Self {
        let mut codes: Vec<i32> = codes.into_iter().collect();
        codes.sort_unstable();
        codes.dedup();
        ValueSet { codes }
    }

    /// All 255 symmetric int8 weight codes (−127..=127).
    #[must_use]
    pub fn all_weight_codes() -> Self {
        ValueSet::new(-127..=127)
    }

    /// All 256 uint8 activation codes (0..=255).
    #[must_use]
    pub fn all_activation_codes() -> Self {
        ValueSet::new(0..=255)
    }

    /// The sorted allowed codes.
    #[must_use]
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// Number of allowed codes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Whether `code` is allowed.
    #[must_use]
    pub fn contains(&self, code: i32) -> bool {
        self.codes.binary_search(&code).is_ok()
    }

    /// Nearest allowed code (ties resolve toward the smaller code).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    #[must_use]
    pub fn project(&self, code: i32) -> i32 {
        assert!(
            !self.codes.is_empty(),
            "cannot project onto an empty ValueSet"
        );
        match self.codes.binary_search(&code) {
            Ok(_) => code,
            Err(pos) => {
                if pos == 0 {
                    self.codes[0]
                } else if pos == self.codes.len() {
                    self.codes[pos - 1]
                } else {
                    let lo = self.codes[pos - 1];
                    let hi = self.codes[pos];
                    if (code - lo) <= (hi - code) {
                        lo
                    } else {
                        hi
                    }
                }
            }
        }
    }

    /// Removes a code, returning whether it was present.
    pub fn remove(&mut self, code: i32) -> bool {
        match self.codes.binary_search(&code) {
            Ok(pos) => {
                self.codes.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Keeps only codes satisfying the predicate.
    pub fn retain(&mut self, f: impl FnMut(&i32) -> bool) {
        self.codes.retain(f);
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ValueSet({} codes)", self.codes.len())
    }
}

impl FromIterator<i32> for ValueSet {
    fn from_iter<T: IntoIterator<Item = i32>>(iter: T) -> Self {
        ValueSet::new(iter)
    }
}

/// Symmetric per-tensor int8 weight quantizer with an optional
/// restriction set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WeightQuantizer {
    /// When set, quantized codes are projected onto this set.
    pub allowed: Option<ValueSet>,
}

/// Result of quantizing a weight tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    /// Scale such that `value ≈ code · scale`.
    pub scale: f32,
    /// Integer codes, one per weight (−127..=127).
    pub codes: Vec<i8>,
    /// Dequantized (fake-quantized) weights used in the forward pass.
    pub dequant: Tensor,
}

impl WeightQuantizer {
    /// An unrestricted quantizer.
    #[must_use]
    pub fn new() -> Self {
        WeightQuantizer::default()
    }

    /// Quantizes `w` symmetrically: `scale = max|w| / 127`,
    /// `code = clamp(round(w / scale), −127, 127)`, projected onto the
    /// allowed set when one is configured.
    #[must_use]
    pub fn quantize(&self, w: &Tensor) -> QuantizedWeights {
        let scale = (w.max_abs() / 127.0).max(1e-8);
        let mut codes = Vec::with_capacity(w.len());
        let mut dequant = Vec::with_capacity(w.len());
        for &v in w.data() {
            let mut code = (v / scale).round().clamp(-127.0, 127.0) as i32;
            if let Some(set) = &self.allowed {
                code = set.project(code);
            }
            codes.push(code as i8);
            dequant.push(code as f32 * scale);
        }
        QuantizedWeights {
            scale,
            codes,
            dequant: Tensor::from_vec(w.shape(), dequant),
        }
    }
}

/// Asymmetric uint8 activation quantizer over a fixed clipping range
/// `[0, range]` (ReLU-style), with an optional restriction set.
#[derive(Debug, Clone, PartialEq)]
pub struct ActQuantizer {
    /// Upper clipping bound of the representable range.
    pub range: f32,
    /// When set, quantized codes are projected onto this set.
    pub allowed: Option<ValueSet>,
}

/// Result of quantizing an activation tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedActs {
    /// Scale such that `value ≈ code · scale`.
    pub scale: f32,
    /// Integer codes, one per activation (0..=255).
    pub codes: Vec<u8>,
    /// Dequantized (fake-quantized) activations.
    pub dequant: Tensor,
}

impl ActQuantizer {
    /// A quantizer for the `[0, range]` interval with all 256 codes.
    #[must_use]
    pub fn new(range: f32) -> Self {
        ActQuantizer {
            range,
            allowed: None,
        }
    }

    /// Quantizes `x`: `scale = range / 255`,
    /// `code = clamp(round(x / scale), 0, 255)`, projected onto the
    /// allowed set when one is configured.
    #[must_use]
    pub fn quantize(&self, x: &Tensor) -> QuantizedActs {
        let scale = (self.range / 255.0).max(1e-8);
        let mut codes = Vec::with_capacity(x.len());
        let mut dequant = Vec::with_capacity(x.len());
        for &v in x.data() {
            let mut code = (v / scale).round().clamp(0.0, 255.0) as i32;
            if let Some(set) = &self.allowed {
                code = set.project(code);
            }
            codes.push(code as u8);
            dequant.push(code as f32 * scale);
        }
        QuantizedActs {
            scale,
            codes,
            dequant: Tensor::from_vec(x.shape(), dequant),
        }
    }
}

impl Default for ActQuantizer {
    fn default() -> Self {
        ActQuantizer::new(6.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_set_sorts_and_dedups() {
        let s = ValueSet::new([5, -3, 5, 0]);
        assert_eq!(s.codes(), &[-3, 0, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn projection_is_nearest_with_tie_to_smaller() {
        let s = ValueSet::new([-4, 0, 4]);
        assert_eq!(s.project(-4), -4);
        assert_eq!(s.project(1), 0);
        assert_eq!(s.project(2), 0); // tie: 0 and 4 both distance 2
        assert_eq!(s.project(3), 4);
        assert_eq!(s.project(100), 4);
        assert_eq!(s.project(-100), -4);
    }

    #[test]
    fn projection_is_idempotent() {
        let s = ValueSet::new([-7, -1, 3, 9]);
        for code in -20..20 {
            let p = s.project(code);
            assert_eq!(s.project(p), p);
            assert!(s.contains(p));
        }
    }

    #[test]
    fn full_code_sets_have_paper_cardinalities() {
        assert_eq!(ValueSet::all_weight_codes().len(), 255);
        assert_eq!(ValueSet::all_activation_codes().len(), 256);
    }

    #[test]
    fn weight_quantization_round_trips_within_half_step() {
        let w = Tensor::from_vec(&[5], vec![-1.0, -0.5, 0.0, 0.3, 1.0]);
        let q = WeightQuantizer::new().quantize(&w);
        for (orig, deq) in w.data().iter().zip(q.dequant.data()) {
            assert!((orig - deq).abs() <= q.scale * 0.5 + 1e-6);
        }
        assert_eq!(q.codes[2], 0);
        assert_eq!(q.codes[4], 127);
        assert_eq!(q.codes[0], -127);
    }

    #[test]
    fn restricted_weight_quantization_uses_only_allowed_codes() {
        let allowed = ValueSet::new([-64, -16, 0, 16, 64]);
        let quant = WeightQuantizer {
            allowed: Some(allowed.clone()),
        };
        let w = Tensor::from_vec(&[6], vec![-1.0, -0.2, -0.05, 0.1, 0.4, 1.0]);
        let q = quant.quantize(&w);
        for &code in &q.codes {
            assert!(allowed.contains(code as i32), "code {code} not allowed");
        }
    }

    #[test]
    fn act_quantization_clamps_to_range() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 3.0, 10.0]);
        let q = ActQuantizer::new(6.0).quantize(&x);
        assert_eq!(q.codes[0], 0);
        assert_eq!(q.codes[1], 0);
        assert_eq!(q.codes[3], 255);
        assert!((q.dequant.data()[2] - 3.0).abs() < q.scale);
    }

    #[test]
    fn restricted_act_quantization_projects() {
        let allowed = ValueSet::new([0, 100, 200]);
        let quant = ActQuantizer {
            range: 6.0,
            allowed: Some(allowed.clone()),
        };
        let x = Tensor::from_vec(&[3], vec![0.1, 2.5, 5.9]);
        let q = quant.quantize(&x);
        for &code in &q.codes {
            assert!(allowed.contains(code as i32));
        }
    }

    #[test]
    fn remove_and_retain() {
        let mut s = ValueSet::new(0..10);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        s.retain(|&c| c % 2 == 0);
        assert_eq!(s.codes(), &[0, 2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "empty ValueSet")]
    fn projecting_on_empty_set_panics() {
        let s = ValueSet::new([]);
        let _ = s.project(0);
    }
}
