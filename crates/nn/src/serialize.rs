//! Network weight persistence.
//!
//! A deliberately simple binary container (magic, version, per-tensor
//! shape + little-endian `f32` payloads) so trained baselines can be
//! reused across experiment runs without re-training. Works through any
//! `Read`/`Write`, so callers can target files, buffers or pipes; note
//! that a `&mut` reference to a reader/writer also implements the trait
//! and can be passed here.

use crate::model::Network;
use crate::tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"PPNNWTS1";

/// Writes every trainable parameter of `net` to `w`.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn save_weights<W: Write>(net: &mut Network, mut w: W) -> io::Result<()> {
    let mut tensors: Vec<(Vec<usize>, Vec<f32>)> = Vec::new();
    net.visit_params(&mut |p| {
        tensors.push((p.value.shape().to_vec(), p.value.data().to_vec()));
    });
    w.write_all(MAGIC)?;
    w.write_all(&(tensors.len() as u64).to_le_bytes())?;
    for (shape, data) in &tensors {
        w.write_all(&(shape.len() as u64).to_le_bytes())?;
        for &dim in shape {
            w.write_all(&(dim as u64).to_le_bytes())?;
        }
        for &v in data {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameters written by [`save_weights`] into `net`, which must
/// have the identical structure.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, or structure mismatch.
pub fn load_weights<R: Read>(net: &mut Network, mut r: R) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a PowerPruning weight file",
        ));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf) as usize;

    let mut tensors: Vec<Tensor> = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut u64buf)?;
        let rank = u64::from_le_bytes(u64buf) as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64buf)?;
            shape.push(u64::from_le_bytes(u64buf) as usize);
        }
        let len: usize = shape.iter().product();
        let mut data = vec![0f32; len];
        let mut f32buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut f32buf)?;
            *v = f32::from_le_bytes(f32buf);
        }
        tensors.push(Tensor::from_vec(&shape, data));
    }

    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    net.visit_params(&mut |p| {
        if mismatch.is_some() {
            return;
        }
        match tensors.get(idx) {
            Some(t) if t.shape() == p.value.shape() => {
                p.value = t.clone();
            }
            Some(t) => {
                mismatch = Some(format!(
                    "parameter {idx} shape {:?} != file shape {:?}",
                    p.value.shape(),
                    t.shape()
                ));
            }
            None => mismatch = Some(format!("file has only {count} tensors")),
        }
        idx += 1;
    });
    if let Some(msg) = mismatch {
        return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
    }
    if idx != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file has {count} tensors, network has {idx} parameters"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_round_trips() {
        let mut net = models::tiny_cnn("s", 1, 8, 3, &mut StdRng::seed_from_u64(4));
        let x = Tensor::full(&[1, 1, 8, 8], 0.3);
        let before = net.predict(&x);

        let mut buf = Vec::new();
        save_weights(&mut net, &mut buf).expect("save");

        let mut other = models::tiny_cnn("s", 1, 8, 3, &mut StdRng::seed_from_u64(99));
        assert_ne!(other.predict(&x).data(), before.data());
        load_weights(&mut other, buf.as_slice()).expect("load");
        assert_eq!(other.predict(&x).data(), before.data());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut net = models::tiny_cnn("s", 1, 8, 3, &mut StdRng::seed_from_u64(4));
        let err = load_weights(&mut net, &b"NOTMAGIC"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn structure_mismatch_is_rejected() {
        let mut a = models::tiny_cnn("a", 1, 8, 3, &mut StdRng::seed_from_u64(4));
        let mut buf = Vec::new();
        save_weights(&mut a, &mut buf).expect("save");
        let mut b = models::tiny_cnn("b", 1, 8, 5, &mut StdRng::seed_from_u64(4));
        assert!(load_weights(&mut b, buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut a = models::tiny_cnn("a", 1, 8, 3, &mut StdRng::seed_from_u64(4));
        let mut buf = Vec::new();
        save_weights(&mut a, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        assert!(load_weights(&mut a, buf.as_slice()).is_err());
    }
}
